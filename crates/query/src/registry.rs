//! The continuous-query registry: live queries, stream views, and the
//! per-stream precision requirements they induce.

use std::collections::HashMap;

use kalstream_core::StreamDemand;

use crate::{
    answer_aggregate, answer_point, split_budget, split_budget_uniform, AggregateQuery, Answer,
    PointQuery, QueryError, StreamId,
};

/// The server's current picture of one stream: served value, precision
/// bound in force, and staleness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamView {
    /// Served (predicted) value.
    pub value: f64,
    /// Precision bound in force for this stream.
    pub delta: f64,
    /// Ticks since the last sync from the source.
    pub staleness: u64,
}

/// Holds registered queries and the latest stream views; computes the
/// per-stream bounds the query workload requires and answers all queries.
///
/// The flow each tick (driven by the experiment harness or application):
///
/// 1. push fresh [`StreamView`]s via [`QueryRegistry::update_view`];
/// 2. read answers via [`QueryRegistry::answer_point_queries`] /
///    [`QueryRegistry::answer_aggregates`];
/// 3. when the workload changes, recompute per-stream requirements via
///    [`QueryRegistry::required_deltas`] and push them to the sources
///    (`SourceEndpoint::set_delta`).
#[derive(Debug, Default)]
pub struct QueryRegistry {
    points: Vec<PointQuery>,
    aggregates: Vec<AggregateQuery>,
    views: HashMap<StreamId, StreamView>,
}

impl QueryRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        QueryRegistry::default()
    }

    /// Registers a point query.
    pub fn add_point(&mut self, q: PointQuery) {
        self.points.push(q);
    }

    /// Registers an aggregate query.
    pub fn add_aggregate(&mut self, q: AggregateQuery) {
        self.aggregates.push(q);
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.points.len() + self.aggregates.len()
    }

    /// `true` when no query is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes the latest view of a stream.
    pub fn update_view(&mut self, id: StreamId, view: StreamView) {
        self.views.insert(id, view);
    }

    /// Every stream any query references.
    pub fn referenced_streams(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self
            .points
            .iter()
            .map(|p| p.stream)
            .chain(
                self.aggregates
                    .iter()
                    .flat_map(|a| a.streams.iter().copied()),
            )
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Computes the per-stream precision bound required to satisfy *every*
    /// registered query: the minimum over (a) point-query deltas and
    /// (b) each aggregate's budget split.
    ///
    /// `demands` optionally supplies measured rate curves per stream; when
    /// present, aggregate budgets are split cost-optimally
    /// ([`split_budget`]), otherwise uniformly.
    pub fn required_deltas(
        &self,
        demands: &HashMap<StreamId, StreamDemand>,
    ) -> HashMap<StreamId, f64> {
        let mut required: HashMap<StreamId, f64> = HashMap::new();
        let mut tighten = |id: StreamId, delta: f64| {
            required
                .entry(id)
                .and_modify(|d| *d = d.min(delta))
                .or_insert(delta);
        };
        for p in &self.points {
            tighten(p.stream, p.delta);
        }
        for a in &self.aggregates {
            let budget = a.imprecision_budget();
            let cap = a.per_stream_cap();
            let member_demands: Option<Vec<StreamDemand>> = a
                .streams
                .iter()
                .map(|id| demands.get(id).cloned())
                .collect();
            let split = match member_demands {
                Some(d) if !d.is_empty() => split_budget(&d, budget, cap),
                _ => split_budget_uniform(a.streams.len(), budget, cap),
            };
            for (id, delta) in a.streams.iter().zip(split.iter()) {
                tighten(*id, *delta);
            }
        }
        required
    }

    /// Answers all point queries, in registration order.
    ///
    /// # Errors
    /// [`QueryError::UnknownStream`] when a queried stream has no view yet.
    pub fn answer_point_queries(&self) -> Result<Vec<Answer>, QueryError> {
        self.points
            .iter()
            .map(|p| {
                self.views
                    .get(&p.stream)
                    .map(answer_point)
                    .ok_or(QueryError::UnknownStream(p.stream))
            })
            .collect()
    }

    /// Answers all aggregate queries, in registration order.
    ///
    /// # Errors
    /// [`QueryError::UnknownStream`] when a member stream has no view yet.
    pub fn answer_aggregates(&self) -> Result<Vec<Answer>, QueryError> {
        self.aggregates
            .iter()
            .map(|a| {
                let views: Result<Vec<_>, _> = a
                    .streams
                    .iter()
                    .map(|id| {
                        self.views
                            .get(id)
                            .copied()
                            .ok_or(QueryError::UnknownStream(*id))
                    })
                    .collect();
                answer_aggregate(a, &views?)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggKind;

    fn registry_with_queries() -> QueryRegistry {
        let mut r = QueryRegistry::new();
        r.add_point(PointQuery {
            stream: StreamId(0),
            delta: 0.5,
        });
        r.add_point(PointQuery {
            stream: StreamId(0),
            delta: 0.2,
        });
        r.add_aggregate(
            AggregateQuery::new(AggKind::Avg, vec![StreamId(0), StreamId(1)], 1.0).unwrap(),
        );
        r
    }

    #[test]
    fn referenced_streams_deduplicated() {
        let r = registry_with_queries();
        assert_eq!(r.referenced_streams(), vec![StreamId(0), StreamId(1)]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn required_deltas_take_tightest() {
        let r = registry_with_queries();
        let req = r.required_deltas(&HashMap::new());
        // Stream 0: min(0.5, 0.2, avg-split 1.0) = 0.2.
        assert_eq!(req[&StreamId(0)], 0.2);
        // Stream 1: only the avg split (uniform: budget 2.0 / 2 = 1.0).
        assert_eq!(req[&StreamId(1)], 1.0);
    }

    #[test]
    fn required_deltas_use_demand_curves_when_available() {
        let mut r = QueryRegistry::new();
        r.add_aggregate(
            AggregateQuery::new(AggKind::Avg, vec![StreamId(0), StreamId(1)], 1.0).unwrap(),
        );
        let mut demands = HashMap::new();
        // Stream 0 calm (tiny errors), stream 1 wild.
        demands.insert(
            StreamId(0),
            StreamDemand::new((1..=20).map(|i| 0.001 * i as f64).collect(), 1.0).unwrap(),
        );
        demands.insert(
            StreamId(1),
            StreamDemand::new((1..=20).map(|i| 0.4 * i as f64).collect(), 1.0).unwrap(),
        );
        let req = r.required_deltas(&demands);
        assert!(
            req[&StreamId(1)] > req[&StreamId(0)],
            "wild stream should get the looser bound: {req:?}"
        );
        // Budget respected.
        assert!(req[&StreamId(0)] + req[&StreamId(1)] <= 2.0 + 1e-9);
    }

    #[test]
    fn answers_require_views() {
        let mut r = registry_with_queries();
        assert!(matches!(
            r.answer_point_queries(),
            Err(QueryError::UnknownStream(StreamId(0)))
        ));
        r.update_view(
            StreamId(0),
            StreamView {
                value: 1.0,
                delta: 0.2,
                staleness: 0,
            },
        );
        r.update_view(
            StreamId(1),
            StreamView {
                value: 3.0,
                delta: 1.0,
                staleness: 4,
            },
        );
        let points = r.answer_point_queries().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].value, 1.0);
        let aggs = r.answer_aggregates().unwrap();
        assert_eq!(aggs.len(), 1);
        assert!((aggs[0].value - 2.0).abs() < 1e-12);
        assert_eq!(aggs[0].max_staleness, 4);
    }

    #[test]
    fn min_cap_tightens_members() {
        let mut r = QueryRegistry::new();
        r.add_aggregate(
            AggregateQuery::new(AggKind::Min, vec![StreamId(0), StreamId(1)], 0.3).unwrap(),
        );
        let req = r.required_deltas(&HashMap::new());
        assert!(req[&StreamId(0)] <= 0.3);
        assert!(req[&StreamId(1)] <= 0.3);
    }
}
