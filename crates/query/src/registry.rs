//! The continuous-query registry: live queries, stream views, and the
//! per-stream precision requirements they induce.

use std::collections::HashMap;

use kalstream_core::StreamDemand;

use crate::{
    answer_aggregate, answer_point, split_budget, split_budget_uniform, AggregateQuery, Answer,
    PointQuery, QueryError, StreamId,
};

/// The server's current picture of one stream: served value, precision
/// bound in force, and staleness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamView {
    /// Served (predicted) value.
    pub value: f64,
    /// Precision bound in force for this stream.
    pub delta: f64,
    /// Ticks since the last sync from the source.
    pub staleness: u64,
}

/// Holds registered queries and the latest stream views; computes the
/// per-stream bounds the query workload requires and answers all queries.
///
/// The flow each tick (driven by the experiment harness or application):
///
/// 1. push fresh [`StreamView`]s via [`QueryRegistry::update_view`];
/// 2. read answers via [`QueryRegistry::answer_point_queries`] /
///    [`QueryRegistry::answer_aggregates`];
/// 3. when the workload changes, recompute per-stream requirements via
///    [`QueryRegistry::required_deltas`] and push them to the sources
///    (`SourceEndpoint::set_delta`).
#[derive(Debug, Default)]
pub struct QueryRegistry {
    points: Vec<(String, PointQuery)>,
    aggregates: Vec<(String, AggregateQuery)>,
    views: HashMap<StreamId, StreamView>,
    /// Registered ids across both query kinds — the uniqueness invariant.
    ids: std::collections::HashSet<String>,
    /// Monotone counter behind the auto-generated `__anon<N>` ids.
    next_anon: usize,
}

impl QueryRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        QueryRegistry::default()
    }

    /// Claims `id`, rejecting collisions. Pre-fix the registry had no id
    /// concept at all: duplicate registrations were silently accepted and
    /// lifecycle operations on "the" query under an id were ambiguous.
    fn claim_id(&mut self, id: &str) -> Result<(), QueryError> {
        if !self.ids.insert(id.to_string()) {
            return Err(QueryError::DuplicateId { id: id.to_string() });
        }
        Ok(())
    }

    /// Next free auto-generated id (used by the id-less `add_*` veneers).
    fn anon_id(&mut self) -> String {
        loop {
            let id = format!("__anon{}", self.next_anon);
            self.next_anon += 1;
            if !self.ids.contains(&id) {
                return id;
            }
        }
    }

    /// Registers a point query under a caller-chosen id.
    ///
    /// # Errors
    /// [`QueryError::DuplicateId`] when a query with this id already exists.
    pub fn register_point(&mut self, id: &str, q: PointQuery) -> Result<(), QueryError> {
        self.claim_id(id)?;
        self.points.push((id.to_string(), q));
        Ok(())
    }

    /// Registers an aggregate query under a caller-chosen id.
    ///
    /// # Errors
    /// [`QueryError::DuplicateId`] when a query with this id already exists.
    pub fn register_aggregate(&mut self, id: &str, q: AggregateQuery) -> Result<(), QueryError> {
        self.claim_id(id)?;
        self.aggregates.push((id.to_string(), q));
        Ok(())
    }

    /// Registers a point query under a fresh auto-generated id.
    pub fn add_point(&mut self, q: PointQuery) {
        let id = self.anon_id();
        self.register_point(&id, q).expect("anon id is fresh");
    }

    /// Registers an aggregate query under a fresh auto-generated id.
    pub fn add_aggregate(&mut self, q: AggregateQuery) {
        let id = self.anon_id();
        self.register_aggregate(&id, q).expect("anon id is fresh");
    }

    /// Unregisters the query with this id; returns whether one existed.
    pub fn remove(&mut self, id: &str) -> bool {
        if !self.ids.remove(id) {
            return false;
        }
        self.points.retain(|(qid, _)| qid != id);
        self.aggregates.retain(|(qid, _)| qid != id);
        true
    }

    /// `true` when a query with this id is registered.
    pub fn contains(&self, id: &str) -> bool {
        self.ids.contains(id)
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.points.len() + self.aggregates.len()
    }

    /// `true` when no query is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes the latest view of a stream.
    pub fn update_view(&mut self, id: StreamId, view: StreamView) {
        self.views.insert(id, view);
    }

    /// Every stream any query references.
    pub fn referenced_streams(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self
            .points
            .iter()
            .map(|(_, p)| p.stream)
            .chain(
                self.aggregates
                    .iter()
                    .flat_map(|(_, a)| a.streams.iter().copied()),
            )
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Computes the per-stream precision bound required to satisfy *every*
    /// registered query: the minimum over (a) point-query deltas and
    /// (b) each aggregate's budget split.
    ///
    /// `demands` optionally supplies measured rate curves per stream; when
    /// present, aggregate budgets are split cost-optimally
    /// ([`split_budget`]), otherwise uniformly.
    pub fn required_deltas(
        &self,
        demands: &HashMap<StreamId, StreamDemand>,
    ) -> HashMap<StreamId, f64> {
        let mut required: HashMap<StreamId, f64> = HashMap::new();
        let mut tighten = |id: StreamId, delta: f64| {
            required
                .entry(id)
                .and_modify(|d| *d = d.min(delta))
                .or_insert(delta);
        };
        for (_, p) in &self.points {
            tighten(p.stream, p.delta);
        }
        for (_, a) in &self.aggregates {
            let budget = a.imprecision_budget();
            let cap = a.per_stream_cap();
            let member_demands: Option<Vec<StreamDemand>> = a
                .streams
                .iter()
                .map(|id| demands.get(id).cloned())
                .collect();
            let split = match member_demands {
                Some(d) if !d.is_empty() => split_budget(&d, budget, cap),
                _ => split_budget_uniform(a.streams.len(), budget, cap),
            };
            for (id, delta) in a.streams.iter().zip(split.iter()) {
                tighten(*id, *delta);
            }
        }
        required
    }

    /// Answers all point queries, in registration order.
    ///
    /// # Errors
    /// [`QueryError::UnknownStream`] when a queried stream has no view yet.
    pub fn answer_point_queries(&self) -> Result<Vec<Answer>, QueryError> {
        self.points
            .iter()
            .map(|(_, p)| {
                self.views
                    .get(&p.stream)
                    .map(answer_point)
                    .ok_or(QueryError::UnknownStream(p.stream))
            })
            .collect()
    }

    /// Answers all aggregate queries, in registration order.
    ///
    /// # Errors
    /// [`QueryError::UnknownStream`] when a member stream has no view yet.
    pub fn answer_aggregates(&self) -> Result<Vec<Answer>, QueryError> {
        self.aggregates
            .iter()
            .map(|(_, a)| {
                let views: Result<Vec<_>, _> = a
                    .streams
                    .iter()
                    .map(|id| {
                        self.views
                            .get(id)
                            .copied()
                            .ok_or(QueryError::UnknownStream(*id))
                    })
                    .collect();
                answer_aggregate(a, &views?)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggKind;

    fn registry_with_queries() -> QueryRegistry {
        let mut r = QueryRegistry::new();
        r.add_point(PointQuery {
            stream: StreamId(0),
            delta: 0.5,
        });
        r.add_point(PointQuery {
            stream: StreamId(0),
            delta: 0.2,
        });
        r.add_aggregate(
            AggregateQuery::new(AggKind::Avg, vec![StreamId(0), StreamId(1)], 1.0).unwrap(),
        );
        r
    }

    #[test]
    fn referenced_streams_deduplicated() {
        let r = registry_with_queries();
        assert_eq!(r.referenced_streams(), vec![StreamId(0), StreamId(1)]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn required_deltas_take_tightest() {
        let r = registry_with_queries();
        let req = r.required_deltas(&HashMap::new());
        // Stream 0: min(0.5, 0.2, avg-split 1.0) = 0.2.
        assert_eq!(req[&StreamId(0)], 0.2);
        // Stream 1: only the avg split (uniform: budget 2.0 / 2 = 1.0).
        assert_eq!(req[&StreamId(1)], 1.0);
    }

    #[test]
    fn required_deltas_use_demand_curves_when_available() {
        let mut r = QueryRegistry::new();
        r.add_aggregate(
            AggregateQuery::new(AggKind::Avg, vec![StreamId(0), StreamId(1)], 1.0).unwrap(),
        );
        let mut demands = HashMap::new();
        // Stream 0 calm (tiny errors), stream 1 wild.
        demands.insert(
            StreamId(0),
            StreamDemand::new((1..=20).map(|i| 0.001 * i as f64).collect(), 1.0).unwrap(),
        );
        demands.insert(
            StreamId(1),
            StreamDemand::new((1..=20).map(|i| 0.4 * i as f64).collect(), 1.0).unwrap(),
        );
        let req = r.required_deltas(&demands);
        assert!(
            req[&StreamId(1)] > req[&StreamId(0)],
            "wild stream should get the looser bound: {req:?}"
        );
        // Budget respected.
        assert!(req[&StreamId(0)] + req[&StreamId(1)] <= 2.0 + 1e-9);
    }

    #[test]
    fn answers_require_views() {
        let mut r = registry_with_queries();
        assert!(matches!(
            r.answer_point_queries(),
            Err(QueryError::UnknownStream(StreamId(0)))
        ));
        r.update_view(
            StreamId(0),
            StreamView {
                value: 1.0,
                delta: 0.2,
                staleness: 0,
            },
        );
        r.update_view(
            StreamId(1),
            StreamView {
                value: 3.0,
                delta: 1.0,
                staleness: 4,
            },
        );
        let points = r.answer_point_queries().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].value, 1.0);
        let aggs = r.answer_aggregates().unwrap();
        assert_eq!(aggs.len(), 1);
        assert!((aggs[0].value - 2.0).abs() < 1e-12);
        assert_eq!(aggs[0].max_staleness, 4);
    }

    #[test]
    fn duplicate_ids_are_rejected_with_typed_error() {
        // Pre-fix regression: the registry silently accepted duplicate
        // query ids, leaving removal and per-id answering ambiguous.
        let mut r = QueryRegistry::new();
        let q = PointQuery {
            stream: StreamId(0),
            delta: 0.5,
        };
        r.register_point("q1", q.clone()).unwrap();
        assert_eq!(
            r.register_point("q1", q.clone()),
            Err(QueryError::DuplicateId { id: "q1".into() })
        );
        // Collisions are rejected across query kinds, too.
        assert_eq!(
            r.register_aggregate(
                "q1",
                AggregateQuery::new(AggKind::Avg, vec![StreamId(0)], 1.0).unwrap()
            ),
            Err(QueryError::DuplicateId { id: "q1".into() })
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_frees_the_id_for_reuse() {
        let mut r = QueryRegistry::new();
        let q = PointQuery {
            stream: StreamId(0),
            delta: 0.5,
        };
        r.register_point("q1", q.clone()).unwrap();
        assert!(r.contains("q1"));
        assert!(r.remove("q1"));
        assert!(!r.contains("q1"));
        assert!(!r.remove("q1"), "second remove is a no-op");
        assert!(r.is_empty());
        r.register_point("q1", q).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn anon_ids_skip_explicitly_claimed_names() {
        let mut r = QueryRegistry::new();
        r.register_point(
            "__anon0",
            PointQuery {
                stream: StreamId(0),
                delta: 0.5,
            },
        )
        .unwrap();
        // The id-less veneer must not collide with the claimed name.
        r.add_point(PointQuery {
            stream: StreamId(1),
            delta: 0.5,
        });
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn min_cap_tightens_members() {
        let mut r = QueryRegistry::new();
        r.add_aggregate(
            AggregateQuery::new(AggKind::Min, vec![StreamId(0), StreamId(1)], 0.3).unwrap(),
        );
        let req = r.required_deltas(&HashMap::new());
        assert!(req[&StreamId(0)] <= 0.3);
        assert!(req[&StreamId(1)] <= 0.3);
    }
}
