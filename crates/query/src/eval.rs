//! Answer computation with interval-arithmetic guarantees.

use crate::{AggKind, AggregateQuery, QueryError, StreamView};

/// A query answer with its precision guarantee: the true (observed) value is
/// within `bound` of `value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The served value.
    pub value: f64,
    /// Guaranteed half-width: `|true − value| ≤ bound`.
    pub bound: f64,
    /// Maximum staleness (ticks since last sync) among contributing streams
    /// — a freshness indicator, not part of the guarantee.
    pub max_staleness: u64,
}

/// Answers a point query from one stream view.
pub fn answer_point(view: &StreamView) -> Answer {
    Answer {
        value: view.value,
        bound: view.delta,
        max_staleness: view.staleness,
    }
}

/// Answers an aggregate query from its member views (in member order).
///
/// The guarantee derives from interval arithmetic over per-stream bounds:
///
/// * AVG: bound = mean of member bounds.
/// * SUM: bound = sum of member bounds.
/// * MIN/MAX: bound = max of member bounds.
///
/// # Errors
/// [`QueryError::Invalid`] when `views` is empty or its length disagrees
/// with the query's member list.
pub fn answer_aggregate(
    query: &AggregateQuery,
    views: &[StreamView],
) -> Result<Answer, QueryError> {
    if views.len() != query.streams.len() || views.is_empty() {
        return Err(QueryError::Invalid {
            reason: format!(
                "expected {} member views, got {}",
                query.streams.len(),
                views.len()
            ),
        });
    }
    let max_staleness = views.iter().map(|v| v.staleness).max().unwrap_or(0);
    let k = views.len() as f64;
    let (value, bound) = match query.kind {
        AggKind::Avg => (
            views.iter().map(|v| v.value).sum::<f64>() / k,
            views.iter().map(|v| v.delta).sum::<f64>() / k,
        ),
        AggKind::Sum => (
            views.iter().map(|v| v.value).sum::<f64>(),
            views.iter().map(|v| v.delta).sum::<f64>(),
        ),
        AggKind::Min => (
            views.iter().map(|v| v.value).fold(f64::INFINITY, f64::min),
            views.iter().map(|v| v.delta).fold(0.0, f64::max),
        ),
        AggKind::Max => (
            views
                .iter()
                .map(|v| v.value)
                .fold(f64::NEG_INFINITY, f64::max),
            views.iter().map(|v| v.delta).fold(0.0, f64::max),
        ),
    };
    Ok(Answer {
        value,
        bound,
        max_staleness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamId;

    fn view(value: f64, delta: f64, staleness: u64) -> StreamView {
        StreamView {
            value,
            delta,
            staleness,
        }
    }

    fn agg(kind: AggKind, n: usize, bound: f64) -> AggregateQuery {
        AggregateQuery::new(kind, (0..n).map(StreamId).collect(), bound).unwrap()
    }

    #[test]
    fn point_answer_carries_stream_bound() {
        let a = answer_point(&view(3.0, 0.25, 7));
        assert_eq!(
            a,
            Answer {
                value: 3.0,
                bound: 0.25,
                max_staleness: 7
            }
        );
    }

    #[test]
    fn avg_answer() {
        let q = agg(AggKind::Avg, 3, 1.0);
        let a = answer_aggregate(
            &q,
            &[view(1.0, 0.1, 0), view(2.0, 0.2, 5), view(3.0, 0.3, 2)],
        )
        .unwrap();
        assert!((a.value - 2.0).abs() < 1e-12);
        assert!((a.bound - 0.2).abs() < 1e-12);
        assert_eq!(a.max_staleness, 5);
    }

    #[test]
    fn sum_answer_adds_bounds() {
        let q = agg(AggKind::Sum, 2, 1.0);
        let a = answer_aggregate(&q, &[view(1.0, 0.1, 0), view(2.0, 0.2, 0)]).unwrap();
        assert!((a.value - 3.0).abs() < 1e-12);
        assert!((a.bound - 0.3).abs() < 1e-12);
    }

    #[test]
    fn min_max_take_extremes_with_max_bound() {
        let q = agg(AggKind::Min, 2, 1.0);
        let a = answer_aggregate(&q, &[view(1.0, 0.5, 0), view(2.0, 0.1, 0)]).unwrap();
        assert_eq!(a.value, 1.0);
        assert_eq!(a.bound, 0.5);
        let q = agg(AggKind::Max, 2, 1.0);
        let a = answer_aggregate(&q, &[view(1.0, 0.5, 0), view(2.0, 0.1, 0)]).unwrap();
        assert_eq!(a.value, 2.0);
    }

    #[test]
    fn guarantee_is_sound_for_avg() {
        // Construct true values deviating by exactly each stream's bound;
        // the aggregate error must not exceed the derived bound.
        let views = [view(1.0, 0.1, 0), view(2.0, 0.2, 0), view(3.0, 0.3, 0)];
        let truths = [1.1, 1.8, 3.3];
        let q = agg(AggKind::Avg, 3, 1.0);
        let a = answer_aggregate(&q, &views).unwrap();
        let true_avg = truths.iter().sum::<f64>() / 3.0;
        assert!((a.value - true_avg).abs() <= a.bound + 1e-12);
    }

    #[test]
    fn mismatched_views_rejected() {
        let q = agg(AggKind::Avg, 2, 1.0);
        assert!(answer_aggregate(&q, &[view(1.0, 0.1, 0)]).is_err());
    }
}
