//! Answer computation with interval-arithmetic guarantees.

use crate::{AggKind, AggregateQuery, QueryError, StreamView};

/// A query answer with its precision guarantee: the true (observed) value is
/// within `bound` of `value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The served value.
    pub value: f64,
    /// Guaranteed half-width: `|true − value| ≤ bound`.
    pub bound: f64,
    /// Maximum staleness (ticks since last sync) among contributing streams
    /// — a freshness indicator, not part of the guarantee.
    pub max_staleness: u64,
}

/// Answers a point query from one stream view.
pub fn answer_point(view: &StreamView) -> Answer {
    Answer {
        value: view.value,
        bound: view.delta,
        max_staleness: view.staleness,
    }
}

/// Answers an aggregate query from its member views (in member order).
///
/// The guarantee derives from interval arithmetic over per-stream bounds:
///
/// * AVG: bound = mean of member bounds.
/// * SUM: bound = sum of member bounds.
/// * MIN/MAX: bound = max of member bounds.
///
/// # Errors
/// [`QueryError::Invalid`] when `views` is empty or its length disagrees
/// with the query's member list.
pub fn answer_aggregate(
    query: &AggregateQuery,
    views: &[StreamView],
) -> Result<Answer, QueryError> {
    if views.len() != query.streams.len() || views.is_empty() {
        return Err(QueryError::Invalid {
            reason: format!(
                "expected {} member views, got {}",
                query.streams.len(),
                views.len()
            ),
        });
    }
    let max_staleness = views.iter().map(|v| v.staleness).max().unwrap_or(0);
    let k = views.len() as f64;
    let (value, bound) = match query.kind {
        AggKind::Avg => (
            views.iter().map(|v| v.value).sum::<f64>() / k,
            views.iter().map(|v| v.delta).sum::<f64>() / k,
        ),
        AggKind::Sum => (
            views.iter().map(|v| v.value).sum::<f64>(),
            views.iter().map(|v| v.delta).sum::<f64>(),
        ),
        AggKind::Min => (
            views.iter().map(|v| v.value).fold(f64::INFINITY, f64::min),
            views.iter().map(|v| v.delta).fold(0.0, f64::max),
        ),
        AggKind::Max => (
            views
                .iter()
                .map(|v| v.value)
                .fold(f64::NEG_INFINITY, f64::max),
            views.iter().map(|v| v.delta).fold(0.0, f64::max),
        ),
    };
    Ok(Answer {
        value,
        bound,
        max_staleness,
    })
}

/// Tri-state result of a threshold alert over a precision-bounded answer.
///
/// A bounded answer `value ± bound` supports three honest verdicts against a
/// threshold `τ`: the guaranteed interval is entirely above (`Firing`),
/// entirely at-or-below (`Quiet`), or straddles the threshold
/// (`Uncertain`). `Uncertain` is the precision/resource tradeoff made
/// visible: tightening the stream's bound shrinks the interval and resolves
/// the verdict, at message cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The true value is guaranteed above the threshold.
    Firing,
    /// The true value is guaranteed at or below the threshold.
    Quiet,
    /// The precision interval straddles the threshold; no sound verdict.
    Uncertain,
}

/// Evaluates a threshold alert against a bounded answer: fires when the
/// guarantee interval `[value − bound, value + bound]` lies entirely above
/// `threshold`, is quiet when it lies entirely at-or-below, and is
/// [`AlertState::Uncertain`] otherwise.
pub fn evaluate_threshold(answer: &Answer, threshold: f64) -> AlertState {
    if answer.value - answer.bound > threshold {
        AlertState::Firing
    } else if answer.value + answer.bound <= threshold {
        AlertState::Quiet
    } else {
        AlertState::Uncertain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamId;

    fn view(value: f64, delta: f64, staleness: u64) -> StreamView {
        StreamView {
            value,
            delta,
            staleness,
        }
    }

    fn agg(kind: AggKind, n: usize, bound: f64) -> AggregateQuery {
        AggregateQuery::new(kind, (0..n).map(StreamId).collect(), bound).unwrap()
    }

    #[test]
    fn point_answer_carries_stream_bound() {
        let a = answer_point(&view(3.0, 0.25, 7));
        assert_eq!(
            a,
            Answer {
                value: 3.0,
                bound: 0.25,
                max_staleness: 7
            }
        );
    }

    #[test]
    fn avg_answer() {
        let q = agg(AggKind::Avg, 3, 1.0);
        let a = answer_aggregate(
            &q,
            &[view(1.0, 0.1, 0), view(2.0, 0.2, 5), view(3.0, 0.3, 2)],
        )
        .unwrap();
        assert!((a.value - 2.0).abs() < 1e-12);
        assert!((a.bound - 0.2).abs() < 1e-12);
        assert_eq!(a.max_staleness, 5);
    }

    #[test]
    fn sum_answer_adds_bounds() {
        let q = agg(AggKind::Sum, 2, 1.0);
        let a = answer_aggregate(&q, &[view(1.0, 0.1, 0), view(2.0, 0.2, 0)]).unwrap();
        assert!((a.value - 3.0).abs() < 1e-12);
        assert!((a.bound - 0.3).abs() < 1e-12);
    }

    #[test]
    fn min_max_take_extremes_with_max_bound() {
        let q = agg(AggKind::Min, 2, 1.0);
        let a = answer_aggregate(&q, &[view(1.0, 0.5, 0), view(2.0, 0.1, 0)]).unwrap();
        assert_eq!(a.value, 1.0);
        assert_eq!(a.bound, 0.5);
        let q = agg(AggKind::Max, 2, 1.0);
        let a = answer_aggregate(&q, &[view(1.0, 0.5, 0), view(2.0, 0.1, 0)]).unwrap();
        assert_eq!(a.value, 2.0);
    }

    #[test]
    fn guarantee_is_sound_for_avg() {
        // Construct true values deviating by exactly each stream's bound;
        // the aggregate error must not exceed the derived bound.
        let views = [view(1.0, 0.1, 0), view(2.0, 0.2, 0), view(3.0, 0.3, 0)];
        let truths = [1.1, 1.8, 3.3];
        let q = agg(AggKind::Avg, 3, 1.0);
        let a = answer_aggregate(&q, &views).unwrap();
        let true_avg = truths.iter().sum::<f64>() / 3.0;
        assert!((a.value - true_avg).abs() <= a.bound + 1e-12);
    }

    #[test]
    fn mismatched_views_rejected() {
        let q = agg(AggKind::Avg, 2, 1.0);
        assert!(answer_aggregate(&q, &[view(1.0, 0.1, 0)]).is_err());
    }

    #[test]
    fn threshold_alert_tristate() {
        let ans = |value: f64, bound: f64| Answer {
            value,
            bound,
            max_staleness: 0,
        };
        assert_eq!(evaluate_threshold(&ans(5.0, 1.0), 3.0), AlertState::Firing);
        assert_eq!(evaluate_threshold(&ans(1.0, 1.0), 3.0), AlertState::Quiet);
        assert_eq!(
            evaluate_threshold(&ans(3.2, 1.0), 3.0),
            AlertState::Uncertain
        );
        // Boundary: interval upper end exactly on the threshold is Quiet
        // (the alert condition is strictly "above").
        assert_eq!(evaluate_threshold(&ans(2.0, 1.0), 3.0), AlertState::Quiet);
    }

    #[test]
    fn alert_verdicts_are_sound_for_any_truth_in_the_interval() {
        // For every truth inside value ± bound, Firing ⇒ truth > τ and
        // Quiet ⇒ truth ≤ τ.
        let threshold = 1.0;
        for value in [-2.0, 0.0, 0.9, 1.0, 1.1, 3.0] {
            for bound in [0.0, 0.05, 0.5, 2.0] {
                let a = Answer {
                    value,
                    bound,
                    max_staleness: 0,
                };
                let state = evaluate_threshold(&a, threshold);
                for frac in [-1.0, -0.3, 0.0, 0.7, 1.0] {
                    let truth = value + bound * frac;
                    match state {
                        AlertState::Firing => assert!(truth > threshold),
                        AlertState::Quiet => assert!(truth <= threshold),
                        AlertState::Uncertain => {}
                    }
                }
            }
        }
    }
}
