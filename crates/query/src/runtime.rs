//! The continuous query runtime: standing queries that *drive* resource
//! allocation.
//!
//! The rest of this crate evaluates queries passively over already-synced
//! estimates. [`QueryRuntime`] closes the loop — the paper's core
//! precision/resource tradeoff made operational:
//!
//! 1. **Registration.** Applications register standing queries — point
//!    lookups, AVG/SUM/MIN/MAX aggregates (optionally weighted), sliding
//!    windows (AVG/MIN/MAX/COUNT-above) and threshold alerts — each under a
//!    unique id with its own precision bound.
//! 2. **Precision propagation.** [`QueryRuntime::required_deltas`] pushes
//!    every query's bound *down* to per-stream suppression bounds by
//!    interval arithmetic: an AVG over `k` streams with bound `ε` grants
//!    its members a total imprecision budget `ε·k` (split uniformly,
//!    cost-optimally against measured demand curves, or by stream weight);
//!    a windowed bound `ε` requires member per-tick deltas `≤ ε`; an alert
//!    with margin `m` requires `δ ≤ m`, which guarantees a resolved verdict
//!    whenever the truth sits further than `2m` from the threshold.
//! 3. **Budget re-allocation.** With [`QueryRuntime::with_budget`], an
//!    epoch allocator periodically redistributes the fleet message budget
//!    across streams from their observed error contribution
//!    ([`kalstream_core::FleetController::tick_demands`]), *clamped* by the
//!    propagated query bounds — budget moves to volatile streams, but never
//!    at the cost of a query guarantee. The resulting bounds are returned
//!    as directives for delivery to producers over the feedback link
//!    ([`kalstream_core::ServerEndpoint::push_bound_directive`] →
//!    [`kalstream_core::WireMessage::Bound`]).
//! 4. **Verification.** Fed ground truth ([`QueryRuntime::verify_tick`]),
//!    the runtime checks every answer against its guarantee and counts
//!    violations per query — the counters the Q1/Q2 experiments gate on.

use std::collections::{HashMap, HashSet};

use kalstream_core::{FleetController, StreamDemand};
use kalstream_obs::{Instrument, Scope};

use crate::window::{SlidingAvg, SlidingCountAbove, SlidingExtremum};
use crate::{
    answer_aggregate, evaluate_threshold, split_budget_weighted, AggKind, AggregateQuery,
    AlertState, Answer, PointQuery, QueryError, QueryRegistry, StreamId, StreamView,
};

/// Slack applied when checking an answer against its bound: guards against
/// accumulated floating-point error in sums/averages, not against real
/// violations (relative 1e-9 + absolute 1e-12, matching the experiment
/// harness convention).
fn violates(err: f64, bound: f64) -> bool {
    err > bound * (1.0 + 1e-9) + 1e-12
}

/// Shape of a sliding-window standing query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSpec {
    /// Sliding average over `window` ticks.
    Avg {
        /// Window length in ticks.
        window: usize,
    },
    /// Sliding minimum over `window` ticks.
    Min {
        /// Window length in ticks.
        window: usize,
    },
    /// Sliding maximum over `window` ticks.
    Max {
        /// Window length in ticks.
        window: usize,
    },
    /// Sliding count of ticks above `threshold` over `window` ticks,
    /// answered as a guaranteed interval.
    CountAbove {
        /// Window length in ticks.
        window: usize,
        /// The count's threshold.
        threshold: f64,
    },
}

/// Answer of a windowed standing query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowAnswer {
    /// A value-shaped window aggregate with its guaranteed half-width.
    Value {
        /// The aggregate of served values.
        value: f64,
        /// Guaranteed bound: the true aggregate is within `value ± bound`.
        bound: f64,
    },
    /// A COUNT interval: the true count lies in `[lo, hi]`.
    Count {
        /// Certain lower end.
        lo: u64,
        /// Certain upper end.
        hi: u64,
    },
}

/// The live aggregator behind one windowed query (served side or truth
/// mirror).
#[derive(Debug, Clone)]
enum WindowAgg {
    Avg(SlidingAvg),
    Min(SlidingExtremum),
    Max(SlidingExtremum),
    Count(SlidingCountAbove),
}

impl WindowAgg {
    fn build(spec: WindowSpec) -> Self {
        match spec {
            WindowSpec::Avg { window } => WindowAgg::Avg(SlidingAvg::new(window)),
            WindowSpec::Min { window } => WindowAgg::Min(SlidingExtremum::min(window)),
            WindowSpec::Max { window } => WindowAgg::Max(SlidingExtremum::max(window)),
            WindowSpec::CountAbove { window, threshold } => {
                WindowAgg::Count(SlidingCountAbove::new(window, threshold))
            }
        }
    }

    fn push(&mut self, value: f64, bound: f64) {
        match self {
            WindowAgg::Avg(w) => w.push(value, bound),
            WindowAgg::Min(w) | WindowAgg::Max(w) => w.push(value, bound),
            WindowAgg::Count(w) => w.push(value, bound),
        }
    }

    fn answer(&self) -> Option<WindowAnswer> {
        match self {
            WindowAgg::Avg(w) => w
                .answer()
                .map(|(value, bound)| WindowAnswer::Value { value, bound }),
            WindowAgg::Min(w) | WindowAgg::Max(w) => w
                .answer()
                .map(|(value, bound)| WindowAnswer::Value { value, bound }),
            WindowAgg::Count(w) => w.answer().map(|(lo, hi)| WindowAnswer::Count { lo, hi }),
        }
    }
}

/// One registered windowed query: served-side aggregator, bit-equivalent
/// truth mirror (pushed with bound 0), and verification bookkeeping.
#[derive(Debug)]
struct WindowedQuery {
    id: String,
    stream: StreamId,
    bound: f64,
    served: WindowAgg,
    mirror: WindowAgg,
    violations: u64,
}

/// One registered threshold alert.
#[derive(Debug)]
struct AlertQuery {
    id: String,
    stream: StreamId,
    threshold: f64,
    margin: f64,
    state: AlertState,
    /// State transitions observed (alert churn diagnostic).
    flips: u64,
    violations: u64,
}

/// One weighted aggregate (kept outside the registry: its budget split
/// honours explicit stream weights instead of demand curves).
#[derive(Debug)]
struct WeightedAggQuery {
    id: String,
    query: AggregateQuery,
    weights: Vec<f64>,
    violations: u64,
}

/// Verification bookkeeping for one registry-backed point query, aligned
/// with the registry's registration order.
#[derive(Debug)]
struct PointMeta {
    id: String,
    stream: StreamId,
    violations: u64,
}

/// Verification bookkeeping for one registry-backed aggregate query,
/// aligned with the registry's registration order. The query copy lets
/// [`QueryRuntime::verify_tick`] recompute the true aggregate from ground
/// truth.
#[derive(Debug)]
struct AggregateMeta {
    id: String,
    query: AggregateQuery,
    violations: u64,
}

/// Budget-aware continuous query runtime over a fleet of `n` streams.
///
/// See the module-level docs above for the full loop. Streams are identified by
/// [`StreamId`]`(0..n)`; every tick the driver pushes one [`StreamView`] per
/// stream via [`QueryRuntime::observe_tick`] and (in experiments) the
/// observed truth via [`QueryRuntime::verify_tick`].
#[derive(Debug)]
pub struct QueryRuntime {
    n_streams: usize,
    registry: QueryRegistry,
    point_meta: Vec<PointMeta>,
    aggregate_meta: Vec<AggregateMeta>,
    weighted: Vec<WeightedAggQuery>,
    windows: Vec<WindowedQuery>,
    alerts: Vec<AlertQuery>,
    /// Ids of runtime-owned queries (weighted/window/alert); registry ids
    /// live in the registry itself. Uniqueness spans both sets.
    aux_ids: HashSet<String>,
    /// Epoch budget re-allocator (None = pure propagation, no message
    /// budget).
    controller: Option<FleetController>,
    latest: Vec<Option<StreamView>>,
    ticks: u64,
    total_violations: u64,
    directives_issued: u64,
}

impl QueryRuntime {
    /// Creates a runtime over `n_streams` streams with no message budget
    /// (bounds come purely from query propagation).
    ///
    /// # Panics
    /// Panics when `n_streams` is zero.
    pub fn new(n_streams: usize) -> Self {
        assert!(n_streams > 0, "need at least one stream");
        QueryRuntime {
            n_streams,
            registry: QueryRegistry::new(),
            point_meta: Vec::new(),
            aggregate_meta: Vec::new(),
            weighted: Vec::new(),
            windows: Vec::new(),
            alerts: Vec::new(),
            aux_ids: HashSet::new(),
            controller: None,
            latest: vec![None; n_streams],
            ticks: 0,
            total_violations: 0,
            directives_issued: 0,
        }
    }

    /// Adds an epoch budget allocator: every `epoch` ticks of
    /// [`QueryRuntime::epoch_directives`], the fleet message budget
    /// (`budget_rate` messages/tick) is redistributed across streams from
    /// their observed error contribution, clamped by the query bounds.
    ///
    /// # Errors
    /// [`QueryError::Invalid`] on a zero epoch or a non-positive budget.
    pub fn with_budget(mut self, epoch: u64, budget_rate: f64) -> Result<Self, QueryError> {
        let controller = FleetController::new(self.n_streams, epoch, budget_rate).map_err(|e| {
            QueryError::Invalid {
                reason: e.to_string(),
            }
        })?;
        self.controller = Some(controller);
        Ok(self)
    }

    /// Number of registered standing queries across all kinds.
    pub fn len(&self) -> usize {
        self.registry.len() + self.weighted.len() + self.windows.len() + self.alerts.len()
    }

    /// `true` when no standing query is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total guarantee violations observed by [`QueryRuntime::verify_tick`]
    /// across all queries (0 in healthy runs — the experiment gate).
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Bound directives handed out by [`QueryRuntime::epoch_directives`].
    pub fn directives_issued(&self) -> u64 {
        self.directives_issued
    }

    fn check_stream(&self, stream: StreamId) -> Result<(), QueryError> {
        if stream.0 >= self.n_streams {
            return Err(QueryError::UnknownStream(stream));
        }
        Ok(())
    }

    fn check_fresh_id(&self, id: &str) -> Result<(), QueryError> {
        if id.is_empty() {
            return Err(QueryError::Invalid {
                reason: "query id must be non-empty".into(),
            });
        }
        if self.registry.contains(id) || self.aux_ids.contains(id) {
            return Err(QueryError::DuplicateId { id: id.to_string() });
        }
        Ok(())
    }

    /// Registers a standing point query: stream `stream` within `delta`.
    ///
    /// # Errors
    /// [`QueryError::DuplicateId`] on an id collision,
    /// [`QueryError::UnknownStream`] on an out-of-range stream,
    /// [`QueryError::Invalid`] on a non-positive bound.
    pub fn register_point(
        &mut self,
        id: &str,
        stream: StreamId,
        delta: f64,
    ) -> Result<(), QueryError> {
        self.check_fresh_id(id)?;
        self.check_stream(stream)?;
        if !(delta > 0.0 && delta.is_finite()) {
            return Err(QueryError::Invalid {
                reason: format!("delta must be positive and finite, got {delta}"),
            });
        }
        self.registry
            .register_point(id, PointQuery { stream, delta })?;
        self.point_meta.push(PointMeta {
            id: id.to_string(),
            stream,
            violations: 0,
        });
        Ok(())
    }

    /// Registers a standing aggregate query (budget split uniformly or
    /// against measured demand curves at propagation time).
    ///
    /// # Errors
    /// [`QueryError::DuplicateId`] on an id collision,
    /// [`QueryError::UnknownStream`] on an out-of-range member,
    /// [`QueryError::Invalid`] on an invalid query description.
    pub fn register_aggregate(
        &mut self,
        id: &str,
        kind: AggKind,
        streams: Vec<StreamId>,
        bound: f64,
    ) -> Result<(), QueryError> {
        self.check_fresh_id(id)?;
        for &s in &streams {
            self.check_stream(s)?;
        }
        let q = AggregateQuery::new(kind, streams, bound)?;
        self.registry.register_aggregate(id, q.clone())?;
        self.aggregate_meta.push(AggregateMeta {
            id: id.to_string(),
            query: q,
            violations: 0,
        });
        Ok(())
    }

    /// Registers a standing aggregate whose error budget is split by
    /// explicit stream weights (higher weight = tighter member bound)
    /// instead of demand curves — the "`ε·k` scaled by stream weight"
    /// propagation rule.
    ///
    /// # Errors
    /// As [`QueryRuntime::register_aggregate`], plus
    /// [`QueryError::Invalid`] when `weights` disagrees in length with
    /// `streams` or contains a non-positive weight.
    pub fn register_aggregate_weighted(
        &mut self,
        id: &str,
        kind: AggKind,
        streams: Vec<StreamId>,
        bound: f64,
        weights: Vec<f64>,
    ) -> Result<(), QueryError> {
        self.check_fresh_id(id)?;
        for &s in &streams {
            self.check_stream(s)?;
        }
        if weights.len() != streams.len() {
            return Err(QueryError::Invalid {
                reason: format!("expected {} weights, got {}", streams.len(), weights.len()),
            });
        }
        if weights.iter().any(|w| !(w.is_finite() && *w > 0.0)) {
            return Err(QueryError::Invalid {
                reason: "weights must be positive and finite".into(),
            });
        }
        let query = AggregateQuery::new(kind, streams, bound)?;
        self.aux_ids.insert(id.to_string());
        self.weighted.push(WeightedAggQuery {
            id: id.to_string(),
            query,
            weights,
            violations: 0,
        });
        Ok(())
    }

    /// Registers a sliding-window standing query with answer bound `bound`
    /// (for [`WindowSpec::CountAbove`], `bound` is the per-tick delta
    /// requested of the stream — it controls how many ticks classify as
    /// uncertain, not the interval's soundness).
    ///
    /// # Errors
    /// [`QueryError::DuplicateId`] on an id collision,
    /// [`QueryError::UnknownStream`] on an out-of-range stream,
    /// [`QueryError::Invalid`] on a non-positive bound or zero window.
    pub fn register_window(
        &mut self,
        id: &str,
        stream: StreamId,
        spec: WindowSpec,
        bound: f64,
    ) -> Result<(), QueryError> {
        self.check_fresh_id(id)?;
        self.check_stream(stream)?;
        if !(bound > 0.0 && bound.is_finite()) {
            return Err(QueryError::Invalid {
                reason: format!("bound must be positive and finite, got {bound}"),
            });
        }
        let window_len = match spec {
            WindowSpec::Avg { window }
            | WindowSpec::Min { window }
            | WindowSpec::Max { window }
            | WindowSpec::CountAbove { window, .. } => window,
        };
        if window_len == 0 {
            return Err(QueryError::Invalid {
                reason: "window must be positive".into(),
            });
        }
        if let WindowSpec::CountAbove { threshold, .. } = spec {
            if !threshold.is_finite() {
                return Err(QueryError::Invalid {
                    reason: "count threshold must be finite".into(),
                });
            }
        }
        self.aux_ids.insert(id.to_string());
        self.windows.push(WindowedQuery {
            id: id.to_string(),
            stream,
            bound,
            served: WindowAgg::build(spec),
            mirror: WindowAgg::build(spec),
            violations: 0,
        });
        Ok(())
    }

    /// Registers a threshold alert on one stream: verdicts are
    /// [`AlertState::Firing`] / [`AlertState::Quiet`] only when guaranteed
    /// by the stream's bound, and the alert's `margin` is propagated as a
    /// required per-stream delta `δ ≤ margin`, guaranteeing a resolved
    /// verdict whenever the truth sits further than `2·margin` from
    /// `threshold`.
    ///
    /// # Errors
    /// [`QueryError::DuplicateId`] on an id collision,
    /// [`QueryError::UnknownStream`] on an out-of-range stream,
    /// [`QueryError::Invalid`] on a non-finite threshold or non-positive
    /// margin.
    pub fn register_alert(
        &mut self,
        id: &str,
        stream: StreamId,
        threshold: f64,
        margin: f64,
    ) -> Result<(), QueryError> {
        self.check_fresh_id(id)?;
        self.check_stream(stream)?;
        if !threshold.is_finite() {
            return Err(QueryError::Invalid {
                reason: "threshold must be finite".into(),
            });
        }
        if !(margin > 0.0 && margin.is_finite()) {
            return Err(QueryError::Invalid {
                reason: format!("margin must be positive and finite, got {margin}"),
            });
        }
        self.aux_ids.insert(id.to_string());
        self.alerts.push(AlertQuery {
            id: id.to_string(),
            stream,
            threshold,
            margin,
            state: AlertState::Uncertain,
            flips: 0,
            violations: 0,
        });
        Ok(())
    }

    /// Unregisters the query with this id; returns whether one existed.
    pub fn remove(&mut self, id: &str) -> bool {
        if self.registry.remove(id) {
            self.point_meta.retain(|m| m.id != id);
            self.aggregate_meta.retain(|m| m.id != id);
            return true;
        }
        if self.aux_ids.remove(id) {
            self.weighted.retain(|q| q.id != id);
            self.windows.retain(|q| q.id != id);
            self.alerts.retain(|q| q.id != id);
            return true;
        }
        false
    }

    /// Advances the runtime one tick with the latest per-stream views
    /// (`views[i]` is stream `i`). Windows slide, alerts re-evaluate, and
    /// registry answers refresh.
    ///
    /// # Panics
    /// Panics when `views.len()` disagrees with the stream count.
    pub fn observe_tick(&mut self, views: &[StreamView]) {
        assert_eq!(views.len(), self.n_streams, "stream count mismatch");
        self.ticks += 1;
        for (i, view) in views.iter().enumerate() {
            self.registry.update_view(StreamId(i), *view);
            self.latest[i] = Some(*view);
        }
        for w in &mut self.windows {
            let v = views[w.stream.0];
            w.served.push(v.value, v.delta);
        }
        for a in &mut self.alerts {
            let v = views[a.stream.0];
            let answer = Answer {
                value: v.value,
                bound: v.delta,
                max_staleness: v.staleness,
            };
            let state = evaluate_threshold(&answer, a.threshold);
            if state != a.state {
                a.flips += 1;
            }
            a.state = state;
        }
    }

    /// Checks every query's guarantee against ground truth (`truth[i]` is
    /// the observed value of stream `i` this tick) and returns the number
    /// of violations found this tick. Call after
    /// [`QueryRuntime::observe_tick`] each tick; truth mirrors for windows
    /// advance here.
    ///
    /// # Panics
    /// Panics when `truth.len()` disagrees with the stream count.
    pub fn verify_tick(&mut self, truth: &[f64]) -> u64 {
        assert_eq!(truth.len(), self.n_streams, "stream count mismatch");
        let mut violations = 0u64;

        // Point queries.
        if let Ok(answers) = self.registry.answer_point_queries() {
            for (meta, ans) in self.point_meta.iter_mut().zip(&answers) {
                if violates((ans.value - truth[meta.stream.0]).abs(), ans.bound) {
                    meta.violations += 1;
                    violations += 1;
                }
            }
        }

        // Plain aggregates.
        if let Ok(answers) = self.registry.answer_aggregates() {
            for (meta, ans) in self.aggregate_meta.iter_mut().zip(&answers) {
                let true_val = true_aggregate(
                    meta.query.kind,
                    meta.query.streams.iter().map(|s| truth[s.0]),
                );
                if violates((ans.value - true_val).abs(), ans.bound) {
                    meta.violations += 1;
                    violations += 1;
                }
            }
        }

        // Weighted aggregates.
        for q in &mut self.weighted {
            let views: Option<Vec<StreamView>> =
                q.query.streams.iter().map(|s| self.latest[s.0]).collect();
            let Some(views) = views else { continue };
            let Ok(ans) = answer_aggregate(&q.query, &views) else {
                continue;
            };
            let true_val = true_aggregate(q.query.kind, q.query.streams.iter().map(|s| truth[s.0]));
            if violates((ans.value - true_val).abs(), ans.bound) {
                q.violations += 1;
                violations += 1;
            }
        }

        // Windows: push truth into the mirror (bound 0 ⇒ the mirror's
        // answer *is* the true window aggregate), then compare.
        for w in &mut self.windows {
            w.mirror.push(truth[w.stream.0], 0.0);
            let violated = match (w.served.answer(), w.mirror.answer()) {
                (
                    Some(WindowAnswer::Value { value, bound }),
                    Some(WindowAnswer::Value {
                        value: true_val, ..
                    }),
                ) => violates((value - true_val).abs(), bound),
                (
                    Some(WindowAnswer::Count { lo, hi }),
                    Some(WindowAnswer::Count { lo: true_count, .. }),
                ) => {
                    // Mirror bound 0 ⇒ lo == hi == true count.
                    !(lo..=hi).contains(&true_count)
                }
                _ => false,
            };
            if violated {
                w.violations += 1;
                violations += 1;
            }
        }

        // Alerts: a resolved verdict must agree with the truth.
        for a in &mut self.alerts {
            let t = truth[a.stream.0];
            let wrong = match a.state {
                AlertState::Firing => t <= a.threshold,
                AlertState::Quiet => t > a.threshold,
                AlertState::Uncertain => false,
            };
            if wrong {
                a.violations += 1;
                violations += 1;
            }
        }

        self.total_violations += violations;
        violations
    }

    /// Computes the per-stream suppression bound required to satisfy
    /// *every* standing query — the precision-propagation step. `demands`
    /// optionally supplies measured rate curves for cost-optimal aggregate
    /// splits (see [`QueryRegistry::required_deltas`]); windowed bounds,
    /// alert margins and weighted-aggregate shares tighten on top.
    pub fn required_deltas(
        &self,
        demands: &HashMap<StreamId, StreamDemand>,
    ) -> HashMap<StreamId, f64> {
        let mut required = self.registry.required_deltas(demands);
        let mut tighten = |id: StreamId, delta: f64| {
            required
                .entry(id)
                .and_modify(|d| *d = d.min(delta))
                .or_insert(delta);
        };
        for q in &self.weighted {
            let split = split_budget_weighted(
                &q.weights,
                q.query.imprecision_budget(),
                q.query.per_stream_cap(),
            );
            for (s, d) in q.query.streams.iter().zip(split) {
                tighten(*s, d);
            }
        }
        for w in &self.windows {
            // Per-tick delta ≤ ε makes every window aggregate's propagated
            // bound ≤ ε (AVG: mean of bounds; MIN/MAX: max of bounds).
            tighten(w.stream, w.bound);
        }
        for a in &self.alerts {
            tighten(a.stream, a.margin);
        }
        required
    }

    /// Runs one tick of the epoch budget allocator: on epoch boundaries,
    /// redistributes the fleet message budget from the supplied per-stream
    /// error windows (`samples[i]` for stream `i`), clamps every allocated
    /// bound by the query requirements, and returns the per-stream bound
    /// directives (`None` = stream cold or no controller / off-epoch tick).
    ///
    /// The caller delivers the bounds to producers — in-process via
    /// `SourceEndpoint::set_delta`, or across the link via
    /// [`kalstream_core::ServerEndpoint::push_bound_directive`].
    ///
    /// # Panics
    /// Panics when `samples.len()` disagrees with the stream count.
    pub fn epoch_directives(&mut self, samples: &[Vec<f64>]) -> Option<Vec<Option<f64>>> {
        assert_eq!(samples.len(), self.n_streams, "stream count mismatch");
        let controller = self.controller.as_mut()?;
        let allocated = controller.tick_demands(samples)?;
        // Clamp by the propagated query bounds: the budget may *relax* a
        // stream the queries don't constrain, but a query guarantee always
        // wins over budget savings.
        let mut demand_map = HashMap::new();
        for (i, window) in samples.iter().enumerate() {
            if let Ok(d) = StreamDemand::new(window.clone(), 1.0) {
                demand_map.insert(StreamId(i), d);
            }
        }
        let caps = self.required_deltas(&demand_map);
        let directives: Vec<Option<f64>> = allocated
            .iter()
            .enumerate()
            .map(|(i, alloc)| {
                alloc.map(|d| match caps.get(&StreamId(i)) {
                    Some(cap) => d.min(*cap),
                    None => d,
                })
            })
            .collect();
        self.directives_issued += directives.iter().flatten().count() as u64;
        Some(directives)
    }

    /// Latest answers of the registry-backed point queries, `(id, answer)`
    /// in registration order.
    ///
    /// # Errors
    /// [`QueryError::UnknownStream`] before the first
    /// [`QueryRuntime::observe_tick`] covering a queried stream.
    pub fn point_answers(&self) -> Result<Vec<(&str, Answer)>, QueryError> {
        let answers = self.registry.answer_point_queries()?;
        Ok(self
            .point_meta
            .iter()
            .map(|m| m.id.as_str())
            .zip(answers)
            .collect())
    }

    /// Latest answers of all aggregate queries (plain then weighted),
    /// `(id, answer)` in registration order.
    ///
    /// # Errors
    /// [`QueryError::UnknownStream`] before the first
    /// [`QueryRuntime::observe_tick`] covering a member stream.
    pub fn aggregate_answers(&self) -> Result<Vec<(&str, Answer)>, QueryError> {
        let answers = self.registry.answer_aggregates()?;
        let mut out: Vec<(&str, Answer)> = self
            .aggregate_meta
            .iter()
            .map(|m| m.id.as_str())
            .zip(answers)
            .collect();
        for q in &self.weighted {
            let views: Option<Vec<StreamView>> =
                q.query.streams.iter().map(|s| self.latest[s.0]).collect();
            let views = views.ok_or_else(|| {
                QueryError::UnknownStream(
                    *q.query
                        .streams
                        .iter()
                        .find(|s| self.latest[s.0].is_none())
                        .expect("some view missing"),
                )
            })?;
            out.push((q.id.as_str(), answer_aggregate(&q.query, &views)?));
        }
        Ok(out)
    }

    /// Latest windowed answers, `(id, answer)` in registration order
    /// (`None` before the window's first push).
    pub fn window_answers(&self) -> Vec<(&str, Option<WindowAnswer>)> {
        self.windows
            .iter()
            .map(|w| (w.id.as_str(), w.served.answer()))
            .collect()
    }

    /// Latest alert verdicts, `(id, state)` in registration order.
    pub fn alert_states(&self) -> Vec<(&str, AlertState)> {
        self.alerts
            .iter()
            .map(|a| (a.id.as_str(), a.state))
            .collect()
    }
}

/// The true aggregate of ground-truth member values.
fn true_aggregate(kind: AggKind, values: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = values.collect();
    let k = values.len() as f64;
    match kind {
        AggKind::Avg => values.iter().sum::<f64>() / k,
        AggKind::Sum => values.iter().sum::<f64>(),
        AggKind::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
        AggKind::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

impl Instrument for QueryRuntime {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("ticks", self.ticks);
        scope.counter("violations", self.total_violations);
        scope.counter("directives_issued", self.directives_issued);
        scope.counter("queries", self.len() as u64);
        if let Some(c) = &self.controller {
            scope.observe("allocator", c);
        }
        let mut queries = scope.scope("query");
        for (id, violations) in self
            .point_meta
            .iter()
            .map(|m| (m.id.as_str(), m.violations))
            .chain(
                self.aggregate_meta
                    .iter()
                    .map(|m| (m.id.as_str(), m.violations)),
            )
        {
            let mut q = queries.scope(id);
            q.counter("violations", violations);
        }
        for w in &self.weighted {
            let mut q = queries.scope(&w.id);
            q.counter("violations", w.violations);
        }
        for w in &self.windows {
            let mut q = queries.scope(&w.id);
            q.counter("violations", w.violations);
            q.gauge("bound", w.bound);
            match w.served.answer() {
                Some(WindowAnswer::Value { value, bound }) => {
                    q.gauge("value", value);
                    q.gauge("answer_bound", bound);
                }
                Some(WindowAnswer::Count { lo, hi }) => {
                    q.counter("count_lo", lo);
                    q.counter("count_hi", hi);
                }
                None => {}
            }
        }
        for a in &self.alerts {
            let mut q = queries.scope(&a.id);
            q.counter("violations", a.violations);
            q.counter("flips", a.flips);
            q.gauge("margin", a.margin);
            q.counter("uncertain", u64::from(a.state == AlertState::Uncertain));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(value: f64, delta: f64) -> StreamView {
        StreamView {
            value,
            delta,
            staleness: 0,
        }
    }

    fn runtime3() -> QueryRuntime {
        QueryRuntime::new(3)
    }

    #[test]
    fn registration_validates_ids_streams_and_bounds() {
        let mut rt = runtime3();
        rt.register_point("p0", StreamId(0), 0.5).unwrap();
        assert_eq!(
            rt.register_point("p0", StreamId(1), 0.5),
            Err(QueryError::DuplicateId { id: "p0".into() })
        );
        assert_eq!(
            rt.register_alert("p0", StreamId(0), 1.0, 0.1),
            Err(QueryError::DuplicateId { id: "p0".into() }),
            "uniqueness spans query kinds"
        );
        assert!(matches!(
            rt.register_point("p1", StreamId(9), 0.5),
            Err(QueryError::UnknownStream(StreamId(9)))
        ));
        assert!(rt.register_point("p2", StreamId(0), -1.0).is_err());
        assert!(rt
            .register_window("w0", StreamId(0), WindowSpec::Avg { window: 0 }, 0.5)
            .is_err());
        assert!(rt.register_alert("a0", StreamId(0), f64::NAN, 0.1).is_err());
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn remove_spans_all_query_kinds() {
        let mut rt = runtime3();
        rt.register_point("p", StreamId(0), 0.5).unwrap();
        rt.register_window("w", StreamId(1), WindowSpec::Avg { window: 4 }, 0.3)
            .unwrap();
        rt.register_alert("a", StreamId(2), 1.0, 0.2).unwrap();
        assert_eq!(rt.len(), 3);
        assert!(rt.remove("w"));
        assert!(rt.remove("p"));
        assert!(rt.remove("a"));
        assert!(!rt.remove("a"));
        assert!(rt.is_empty());
        // Removed ids are reusable.
        rt.register_point("w", StreamId(0), 0.5).unwrap();
    }

    #[test]
    fn precision_propagates_from_every_query_kind() {
        let mut rt = runtime3();
        rt.register_point("p", StreamId(0), 0.4).unwrap();
        rt.register_aggregate("g", AggKind::Avg, vec![StreamId(0), StreamId(1)], 0.25)
            .unwrap();
        rt.register_window("w", StreamId(2), WindowSpec::Min { window: 8 }, 0.1)
            .unwrap();
        rt.register_alert("a", StreamId(2), 5.0, 0.05).unwrap();
        let req = rt.required_deltas(&HashMap::new());
        // Stream 0: min(point 0.4, avg uniform split 0.25·2/2 = 0.25).
        assert_eq!(req[&StreamId(0)], 0.25);
        assert_eq!(req[&StreamId(1)], 0.25);
        // Stream 2: min(window 0.1, alert margin 0.05).
        assert_eq!(req[&StreamId(2)], 0.05);
    }

    #[test]
    fn weighted_aggregate_splits_by_inverse_weight() {
        let mut rt = runtime3();
        rt.register_aggregate_weighted(
            "g",
            AggKind::Avg,
            vec![StreamId(0), StreamId(1)],
            0.5,
            vec![4.0, 1.0],
        )
        .unwrap();
        let req = rt.required_deltas(&HashMap::new());
        // Budget ε·k = 1.0, inverse-weight shares 0.2 / 0.8.
        assert!((req[&StreamId(0)] - 0.2).abs() < 1e-12, "{req:?}");
        assert!((req[&StreamId(1)] - 0.8).abs() < 1e-12, "{req:?}");
        // The weighted aggregate still answers (and verifies) like any
        // other aggregate.
        rt.observe_tick(&[view(1.0, 0.2), view(3.0, 0.8), view(0.0, 1.0)]);
        let answers = rt.aggregate_answers().unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].0, "g");
        assert!((answers[0].1.value - 2.0).abs() < 1e-12);
        assert!((answers[0].1.bound - 0.5).abs() < 1e-12);
    }

    #[test]
    fn observe_and_verify_count_no_false_violations() {
        let mut rt = runtime3();
        rt.register_point("p", StreamId(0), 0.5).unwrap();
        rt.register_aggregate("g", AggKind::Avg, vec![StreamId(0), StreamId(1)], 1.0)
            .unwrap();
        rt.register_window("w", StreamId(2), WindowSpec::Avg { window: 4 }, 0.5)
            .unwrap();
        rt.register_alert("a", StreamId(2), 0.5, 0.1).unwrap();
        for t in 0..50u64 {
            let truth = [t as f64 * 0.1, 1.0, (t as f64 * 0.2).sin()];
            // Served values off-truth by less than each bound.
            let served = [
                view(truth[0] + 0.3, 0.5),
                view(truth[1] - 0.4, 0.5),
                view(truth[2] + 0.05, 0.1),
            ];
            rt.observe_tick(&served);
            assert_eq!(rt.verify_tick(&truth), 0, "false violation at tick {t}");
        }
        assert_eq!(rt.total_violations(), 0);
        assert_eq!(rt.ticks(), 50);
    }

    #[test]
    fn verify_catches_broken_guarantees() {
        let mut rt = QueryRuntime::new(1);
        rt.register_point("p", StreamId(0), 0.1).unwrap();
        rt.observe_tick(&[view(5.0, 0.1)]);
        // Truth far outside value ± bound.
        assert_eq!(rt.verify_tick(&[9.0]), 1);
        assert_eq!(rt.total_violations(), 1);
    }

    #[test]
    fn alert_states_resolve_and_flip() {
        let mut rt = QueryRuntime::new(1);
        rt.register_alert("a", StreamId(0), 10.0, 0.5).unwrap();
        rt.observe_tick(&[view(12.0, 0.5)]);
        assert_eq!(rt.alert_states(), vec![("a", AlertState::Firing)]);
        rt.observe_tick(&[view(10.2, 0.5)]);
        assert_eq!(rt.alert_states(), vec![("a", AlertState::Uncertain)]);
        rt.observe_tick(&[view(8.0, 0.5)]);
        assert_eq!(rt.alert_states(), vec![("a", AlertState::Quiet)]);
    }

    #[test]
    fn windowed_count_answers_as_interval() {
        let mut rt = QueryRuntime::new(1);
        rt.register_window(
            "c",
            StreamId(0),
            WindowSpec::CountAbove {
                window: 3,
                threshold: 0.0,
            },
            0.5,
        )
        .unwrap();
        rt.observe_tick(&[view(2.0, 0.5)]); // certainly above
        rt.observe_tick(&[view(-2.0, 0.5)]); // certainly below
        rt.observe_tick(&[view(0.2, 0.5)]); // uncertain
        assert_eq!(
            rt.window_answers(),
            vec![("c", Some(WindowAnswer::Count { lo: 1, hi: 2 }))]
        );
    }

    #[test]
    fn epoch_directives_respect_query_caps() {
        let mut rt = QueryRuntime::new(2).with_budget(1, 0.001).unwrap();
        // Tight point query on stream 0; stream 1 unconstrained.
        rt.register_point("p", StreamId(0), 0.05).unwrap();
        // Large error windows: a starved budget would loosen both streams
        // far past 0.05 if the query cap didn't clamp.
        let samples: Vec<Vec<f64>> = (0..2)
            .map(|_| (1..=100).map(|i| i as f64 * 0.1).collect())
            .collect();
        let directives = rt.epoch_directives(&samples).expect("epoch boundary");
        let d0 = directives[0].expect("warm stream");
        let d1 = directives[1].expect("warm stream");
        assert!(d0 <= 0.05 + 1e-12, "query cap violated: {d0}");
        assert!(d1 > 0.05, "unconstrained stream keeps the budget bound");
        assert_eq!(rt.directives_issued(), 2);
    }

    #[test]
    fn no_budget_means_no_directives() {
        let mut rt = QueryRuntime::new(1);
        assert!(rt.epoch_directives(&[vec![0.1, 0.2]]).is_none());
    }

    #[test]
    fn instrument_exports_per_query_counters() {
        let mut rt = QueryRuntime::new(2).with_budget(4, 1.0).unwrap();
        rt.register_point("p", StreamId(0), 0.5).unwrap();
        rt.register_window("w", StreamId(1), WindowSpec::Avg { window: 4 }, 0.5)
            .unwrap();
        rt.register_alert("alert", StreamId(1), 0.0, 0.25).unwrap();
        rt.observe_tick(&[view(1.0, 0.5), view(2.0, 0.5)]);
        rt.verify_tick(&[1.1, 2.1]);
        let mut reg = kalstream_obs::Registry::new();
        reg.observe("runtime", &rt);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("runtime.ticks"), Some(1));
        assert_eq!(snap.counter("runtime.violations"), Some(0));
        assert_eq!(snap.counter("runtime.query.p.violations"), Some(0));
        assert_eq!(snap.gauge("runtime.query.w.bound"), Some(0.5));
        assert_eq!(snap.counter("runtime.query.alert.flips"), Some(1));
        assert_eq!(snap.counter("runtime.allocator.rounds"), Some(0));
    }
}
