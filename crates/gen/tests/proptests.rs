//! Property-based tests for the stream generators: seed determinism,
//! structural invariants, and trace round-trips for arbitrary parameters.

use kalstream_gen::{
    domain::{GpsTrack, NetworkRtt, StockTicker, TemperatureSensor},
    synthetic::{OrnsteinUhlenbeck, Ramp, RandomWalk, Sinusoid},
    Stream, Trace, TraceReplay,
};
use proptest::prelude::*;

/// Every generator family, instantiated from proptest-chosen parameters.
fn all_streams(seed: u64, a: f64, b: f64) -> Vec<Box<dyn Stream + Send>> {
    vec![
        Box::new(RandomWalk::new(
            a,
            b * 0.01,
            a.abs() + 0.01,
            b.abs() * 0.1,
            seed,
        )),
        Box::new(Ramp::new(a, b, 0.1, seed)),
        Box::new(Sinusoid::new(a.abs() + 0.1, 0.1, b, 0.0, 0.05, seed)),
        Box::new(OrnsteinUhlenbeck::new(a, 0.2, b, 0.5, 1.0, 0.05, seed)),
        Box::new(StockTicker::new(
            a.abs() + 1.0,
            0.0,
            0.01,
            1.0,
            0.01,
            0.05,
            0.01,
            seed,
        )),
        Box::new(TemperatureSensor::new(
            a,
            b.abs() + 0.1,
            100.0,
            0.9,
            0.05,
            0.05,
            seed,
        )),
        Box::new(NetworkRtt::new(a.abs() + 1.0, 0.01, 1.5, 0.5, 0.1, seed)),
        Box::new(GpsTrack::new(
            b.abs() * 100.0 + 10.0,
            (0.5, 1.5),
            3,
            0.5,
            seed,
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_family_is_seed_deterministic(
        seed in 0u64..1000,
        a in -5.0..5.0f64,
        b in 0.01..2.0f64,
    ) {
        let mut first = all_streams(seed, a, b);
        let mut second = all_streams(seed, a, b);
        for (s1, s2) in first.iter_mut().zip(second.iter_mut()) {
            for _ in 0..20 {
                prop_assert_eq!(s1.next_sample(), s2.next_sample(), "family {}", s1.name());
            }
        }
    }

    #[test]
    fn every_family_stays_finite(
        seed in 0u64..1000,
        a in -5.0..5.0f64,
        b in 0.01..2.0f64,
    ) {
        for mut s in all_streams(seed, a, b) {
            let (obs, tru) = s.collect(200);
            prop_assert!(obs.iter().all(|x| x.is_finite()), "family {}", s.name());
            prop_assert!(tru.iter().all(|x| x.is_finite()), "family {}", s.name());
        }
    }

    #[test]
    fn trace_roundtrip_for_arbitrary_recordings(
        seed in 0u64..1000,
        len in 1usize..200,
    ) {
        let mut s = RandomWalk::new(0.0, 0.01, 0.5, 0.1, seed);
        let trace = Trace::record(&mut s, len);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let loaded = Trace::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(&trace, &loaded);
        // Replay equals indexing.
        let mut replay = TraceReplay::new(loaded);
        for i in 0..len {
            let sample = replay.next_sample();
            prop_assert_eq!(sample.observed.as_slice(), trace.observed(i));
        }
    }

    #[test]
    fn stock_prices_never_go_nonpositive(
        seed in 0u64..500,
        sigma in 0.001..0.1f64,
        jump in 0.0..0.05f64,
    ) {
        let mut s = StockTicker::new(100.0, 0.0, sigma, 1.0, jump, 0.1, 0.01, seed);
        let (_, truth) = s.collect(2000);
        prop_assert!(truth.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn gps_respects_arena_and_speed(
        seed in 0u64..500,
        arena in 50.0..500.0f64,
        vmax in 1.0..5.0f64,
    ) {
        let mut g = GpsTrack::new(arena, (0.5, vmax), 2, 0.0, seed);
        let (_, truth) = g.collect(1000);
        let pts: Vec<&[f64]> = truth.chunks(2).collect();
        for p in &pts {
            prop_assert!(p[0] >= -1e-9 && p[0] <= arena + 1e-9);
            prop_assert!(p[1] >= -1e-9 && p[1] <= arena + 1e-9);
        }
        for w in pts.windows(2) {
            let d = ((w[1][0] - w[0][0]).powi(2) + (w[1][1] - w[0][1]).powi(2)).sqrt();
            prop_assert!(d <= vmax + 1e-9, "step {d} exceeds vmax {vmax}");
        }
    }

    #[test]
    fn truth_is_noise_free_of_observation(
        seed in 0u64..500,
        sigma_v in 0.1..2.0f64,
    ) {
        // truth must be independent of the sensor-noise draw: two walks
        // differing only in sigma_v have identical truth... they don't share
        // RNG consumption patterns, so instead check the weaker invariant
        // that observed − truth has ~zero mean and ~sigma_v std.
        let mut s = RandomWalk::new(0.0, 0.0, 0.1, sigma_v, seed);
        let (obs, tru) = s.collect(4000);
        let diffs: Vec<f64> = obs.iter().zip(tru.iter()).map(|(o, t)| o - t).collect();
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>()
            / diffs.len() as f64;
        prop_assert!(mean.abs() < 4.0 * sigma_v / (diffs.len() as f64).sqrt() + 0.05);
        prop_assert!((var.sqrt() - sigma_v).abs() < 0.15 * sigma_v + 0.02);
    }
}
