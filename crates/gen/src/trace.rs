//! Materialised stream traces with a line-oriented on-disk format.
//!
//! A `Trace` is a recorded `(observed, truth)` series. Experiments record
//! traces once and replay them across methods so every method sees the exact
//! same data. The format is a deliberately tiny self-describing text format
//! (header line, then one whitespace-separated row per tick) instead of JSON:
//! the sanctioned crate set has `serde` but no serde format crate, and a flat
//! numeric format is both human-diffable and fast.

use std::fmt;
use std::io::{BufRead, Write};

use crate::Stream;

/// Errors from trace (de)serialisation.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Header line missing or malformed.
    BadHeader(String),
    /// A data row had the wrong number of fields or a non-numeric field.
    BadRow {
        /// 1-based line number of the bad row.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadHeader(h) => write!(f, "bad trace header: {h:?}"),
            TraceError::BadRow { line, reason } => {
                write!(f, "bad trace row at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A recorded stream: `len` ticks of `dim`-dimensional observed and truth
/// values, stored flattened row-major.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    name: String,
    dim: usize,
    observed: Vec<f64>,
    truth: Vec<f64>,
}

impl Trace {
    /// Records `n` ticks from a live stream.
    pub fn record<S: Stream + ?Sized>(stream: &mut S, n: usize) -> Self {
        let dim = stream.dim();
        let name = stream.name().to_string();
        let (observed, truth) = stream.collect(n);
        Trace {
            name,
            dim,
            observed,
            truth,
        }
    }

    /// Builds a trace from raw parts.
    ///
    /// # Panics
    /// Panics when lengths are inconsistent with `dim`.
    pub fn from_parts(
        name: impl Into<String>,
        dim: usize,
        observed: Vec<f64>,
        truth: Vec<f64>,
    ) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(
            observed.len(),
            truth.len(),
            "observed/truth length mismatch"
        );
        assert_eq!(observed.len() % dim, 0, "length must be a multiple of dim");
        Trace {
            name: name.into(),
            dim,
            observed,
            truth,
        }
    }

    /// Stream name this trace was recorded from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Values per tick.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.observed.len() / self.dim
    }

    /// `true` when the trace has no ticks.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }

    /// Observed values at tick `i`.
    pub fn observed(&self, i: usize) -> &[f64] {
        &self.observed[i * self.dim..(i + 1) * self.dim]
    }

    /// Ground-truth values at tick `i`.
    pub fn truth(&self, i: usize) -> &[f64] {
        &self.truth[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates `(observed, truth)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], &[f64])> + '_ {
        (0..self.len()).map(move |i| (self.observed(i), self.truth(i)))
    }

    /// Writes the trace in the line format (`kalstream-trace v1` header,
    /// then `observed... truth...` per row).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), TraceError> {
        writeln!(
            w,
            "kalstream-trace v1 name={} dim={} len={}",
            self.name,
            self.dim,
            self.len()
        )?;
        for i in 0..self.len() {
            let mut row = String::new();
            for v in self.observed(i) {
                row.push_str(&format!("{v:.17e} "));
            }
            for v in self.truth(i) {
                row.push_str(&format!("{v:.17e} "));
            }
            writeln!(w, "{}", row.trim_end())?;
        }
        Ok(())
    }

    /// Reads a trace previously written by [`Trace::write_to`].
    ///
    /// # Errors
    /// [`TraceError::BadHeader`] / [`TraceError::BadRow`] on malformed input.
    pub fn read_from<R: BufRead>(r: &mut R) -> Result<Self, TraceError> {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let header = header.trim();
        let mut name = None;
        let mut dim = None;
        let mut len = None;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("kalstream-trace") || fields.next() != Some("v1") {
            return Err(TraceError::BadHeader(header.to_string()));
        }
        for field in fields {
            if let Some(v) = field.strip_prefix("name=") {
                name = Some(v.to_string());
            } else if let Some(v) = field.strip_prefix("dim=") {
                dim = v.parse::<usize>().ok();
            } else if let Some(v) = field.strip_prefix("len=") {
                len = v.parse::<usize>().ok();
            }
        }
        let (name, dim, len) = match (name, dim, len) {
            (Some(n), Some(d), Some(l)) if d > 0 => (n, d, l),
            _ => return Err(TraceError::BadHeader(header.to_string())),
        };
        let mut observed = Vec::with_capacity(len * dim);
        let mut truth = Vec::with_capacity(len * dim);
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let vals: Result<Vec<f64>, _> =
                line.split_whitespace().map(str::parse::<f64>).collect();
            let vals = vals.map_err(|e| TraceError::BadRow {
                line: lineno + 2,
                reason: e.to_string(),
            })?;
            if vals.len() != 2 * dim {
                return Err(TraceError::BadRow {
                    line: lineno + 2,
                    reason: format!("expected {} fields, got {}", 2 * dim, vals.len()),
                });
            }
            observed.extend_from_slice(&vals[..dim]);
            truth.extend_from_slice(&vals[dim..]);
        }
        if observed.len() != len * dim {
            return Err(TraceError::BadRow {
                line: 0,
                reason: format!("expected {len} rows, got {}", observed.len() / dim),
            });
        }
        Ok(Trace {
            name,
            dim,
            observed,
            truth,
        })
    }
}

/// Replaying adapter: a recorded [`Trace`] exposed back as a [`Stream`].
/// Replays loop when they reach the end (experiments choose lengths ≤ the
/// recording, so looping is a guard, not a feature).
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    pos: usize,
}

impl TraceReplay {
    /// Wraps a trace for replay from the beginning.
    ///
    /// # Panics
    /// Panics on an empty trace.
    pub fn new(trace: Trace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        TraceReplay { trace, pos: 0 }
    }
}

impl Stream for TraceReplay {
    fn dim(&self) -> usize {
        self.trace.dim()
    }

    fn name(&self) -> &str {
        self.trace.name()
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        let d = self.trace.dim();
        observed[..d].copy_from_slice(self.trace.observed(self.pos));
        truth[..d].copy_from_slice(self.trace.truth(self.pos));
        self.pos = (self.pos + 1) % self.trace.len();
    }
}

impl From<Trace> for TraceReplay {
    fn from(t: Trace) -> Self {
        TraceReplay::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::RandomWalk;

    #[test]
    fn record_and_index() {
        let mut w = RandomWalk::new(0.0, 0.1, 0.2, 0.05, 61);
        let t = Trace::record(&mut w, 100);
        assert_eq!(t.len(), 100);
        assert_eq!(t.dim(), 1);
        assert_eq!(t.name(), "random_walk");
        assert_eq!(t.iter().count(), 100);
    }

    #[test]
    fn roundtrip_through_text_format() {
        let mut w = RandomWalk::new(1.0, -0.05, 0.3, 0.1, 62);
        let t = Trace::record(&mut w, 50);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let t2 = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn rejects_bad_header() {
        let data = b"not-a-trace v1 dim=1 len=0\n";
        assert!(matches!(
            Trace::read_from(&mut data.as_slice()),
            Err(TraceError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_bad_rows() {
        let data = b"kalstream-trace v1 name=x dim=1 len=1\n1.0 2.0 3.0\n";
        assert!(matches!(
            Trace::read_from(&mut data.as_slice()),
            Err(TraceError::BadRow { .. })
        ));
        let data = b"kalstream-trace v1 name=x dim=1 len=1\nfoo bar\n";
        assert!(matches!(
            Trace::read_from(&mut data.as_slice()),
            Err(TraceError::BadRow { .. })
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        let data = b"kalstream-trace v1 name=x dim=1 len=3\n1.0 1.0\n";
        assert!(matches!(
            Trace::read_from(&mut data.as_slice()),
            Err(TraceError::BadRow { .. })
        ));
    }

    #[test]
    fn replay_reproduces_recording() {
        let mut w = RandomWalk::new(0.0, 0.0, 0.5, 0.1, 63);
        let t = Trace::record(&mut w, 20);
        let mut replay = TraceReplay::new(t.clone());
        for i in 0..20 {
            let s = replay.next_sample();
            assert_eq!(s.observed.as_slice(), t.observed(i));
            assert_eq!(s.truth.as_slice(), t.truth(i));
        }
        // Loops.
        let s = replay.next_sample();
        assert_eq!(s.observed.as_slice(), t.observed(0));
    }

    #[test]
    fn from_parts_validates() {
        let t = Trace::from_parts("x", 2, vec![1.0, 2.0], vec![1.0, 2.0]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn from_parts_rejects_ragged() {
        let _ = Trace::from_parts("x", 2, vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]);
    }
}
