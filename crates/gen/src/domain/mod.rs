//! Simulated domain traces standing in for the paper's real-world streams.
//!
//! Substitution note (see DESIGN.md §2): the original evaluation used
//! proprietary traces. Each simulator here reproduces the *dynamical regime*
//! of its domain — which is what determines filter behaviour and message
//! counts — rather than any particular historical series.

mod gps;
mod network;
mod stock;
mod temperature;

pub use gps::GpsTrack;
pub use network::NetworkRtt;
pub use stock::StockTicker;
pub use temperature::TemperatureSensor;
