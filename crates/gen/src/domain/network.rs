//! Simulated network round-trip time: base load + Pareto congestion spikes.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::dist::{Exponential, Normal, Pareto};
use crate::Stream;

/// RTT stream with three regimes layered together:
///
/// * a slowly wandering **base latency** (AR(1) around `base_ms`);
/// * **congestion episodes**: arriving as a Poisson process, each adds a
///   Pareto-sized spike that decays geometrically — producing the bursty,
///   heavy-tailed shape of real RTT traces;
/// * additive **measurement jitter**.
///
/// The hostile workload for every smooth predictor: the interesting question
/// an experiment asks is how *few* extra messages the filter pays per burst.
#[derive(Debug, Clone)]
pub struct NetworkRtt {
    base: f64,
    base_level: f64,
    phi: f64,
    base_noise: Normal,
    episode_arrival: Exponential,
    ticks_to_episode: f64,
    spike_size: Pareto,
    spike: f64,
    spike_decay: f64,
    jitter: Normal,
    rng: SmallRng,
}

impl NetworkRtt {
    /// Creates an RTT stream.
    ///
    /// * `base_ms` — long-run base latency.
    /// * `episodes_per_tick` — Poisson rate of congestion episodes.
    /// * `spike_alpha` — Pareto tail index of spike magnitudes (≈1.5 = heavy).
    /// * `spike_decay` — per-tick geometric decay of an active spike, in `(0,1)`.
    /// * `jitter_ms` — measurement jitter std.
    /// * `seed` — RNG seed.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn new(
        base_ms: f64,
        episodes_per_tick: f64,
        spike_alpha: f64,
        spike_decay: f64,
        jitter_ms: f64,
        seed: u64,
    ) -> Self {
        assert!(base_ms > 0.0, "base latency must be positive");
        assert!(
            (0.0..1.0).contains(&spike_decay),
            "spike_decay must be in [0, 1)"
        );
        let episode_arrival = Exponential::new(episodes_per_tick);
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = episode_arrival.sample(&mut rng);
        NetworkRtt {
            base: base_ms,
            base_level: base_ms,
            phi: 0.999,
            base_noise: Normal::new(0.0, base_ms * 0.002),
            episode_arrival,
            ticks_to_episode: first,
            spike_size: Pareto::new(base_ms * 0.5, spike_alpha),
            spike: 0.0,
            spike_decay,
            jitter: Normal::new(0.0, jitter_ms),
            rng,
        }
    }

    /// A WAN-path preset: 40 ms base, one episode per ~500 ticks, heavy
    /// tail, fast decay, 0.5 ms jitter.
    pub fn wan_default(seed: u64) -> Self {
        NetworkRtt::new(40.0, 0.002, 1.5, 0.7, 0.5, seed)
    }
}

impl Stream for NetworkRtt {
    fn dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "network_rtt"
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        // Base latency wanders around base_ms.
        self.base_level = self.base
            + self.phi * (self.base_level - self.base)
            + self.base_noise.sample(&mut self.rng);
        // Congestion episodes.
        self.ticks_to_episode -= 1.0;
        if self.ticks_to_episode <= 0.0 {
            self.spike += self.spike_size.sample(&mut self.rng);
            self.ticks_to_episode = self.episode_arrival.sample(&mut self.rng);
        }
        self.spike *= self.spike_decay;
        let signal = self.base_level + self.spike;
        truth[0] = signal;
        // Jitter can't push RTT below a physical floor.
        let j = self.jitter.sample(&mut self.rng);
        observed[0] = (signal + j).max(0.1);
        let _ = self.rng.random::<u32>(); // decorrelate episode phase from jitter draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_is_always_positive() {
        let mut s = NetworkRtt::wan_default(41);
        let (obs, truth) = s.collect(20_000);
        assert!(obs.iter().all(|&x| x > 0.0));
        assert!(truth.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn spikes_occur_and_decay() {
        let mut s = NetworkRtt::new(10.0, 0.01, 1.5, 0.5, 0.0, 42);
        let (_, truth) = s.collect(20_000);
        let max = truth.iter().fold(0.0_f64, |m, &x| m.max(x));
        let median = {
            let mut v = truth.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!(max > 2.0 * median, "no spikes: max {max} median {median}");
        // Decay: after the global max, values fall back near the median
        // within a few dozen ticks.
        let argmax = truth
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        if argmax + 50 < truth.len() {
            assert!(truth[argmax + 50] < median * 1.5);
        }
    }

    #[test]
    fn quiet_network_stays_near_base() {
        let mut s = NetworkRtt::new(20.0, 1e-9, 2.0, 0.5, 0.0, 43);
        let (_, truth) = s.collect(5_000);
        assert!(truth.iter().all(|&x| (x - 20.0).abs() < 5.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_base() {
        let _ = NetworkRtt::new(0.0, 0.01, 1.5, 0.5, 0.1, 44);
    }
}
