//! Simulated outdoor temperature sensor: diurnal cycle + weather + noise.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::Normal;
use crate::Stream;

/// Outdoor temperature with three components:
///
/// ```text
/// truth_t    = base + amplitude · sin(2π t / period) + weather_t
/// weather_{t+1} = phi · weather_t + N(0, sigma_w²)      (AR(1) fronts)
/// observed_t = truth_t + N(0, sigma_v²)                 (sensor noise)
/// ```
///
/// The canonical environmental-sensor workload: strongly periodic with a
/// slowly wandering offset, exactly where a harmonic+walk model bank shines.
#[derive(Debug, Clone)]
pub struct TemperatureSensor {
    t: u64,
    base: f64,
    amplitude: f64,
    period: f64,
    weather: f64,
    phi: f64,
    front: Normal,
    sensor: Normal,
    rng: SmallRng,
}

impl TemperatureSensor {
    /// Creates a sensor with mean temperature `base`, diurnal swing
    /// `amplitude`, cycle length `period` ticks, weather persistence
    /// `phi ∈ [0, 1)`, weather innovation std `sigma_w`, sensor noise std
    /// `sigma_v`, and RNG `seed`.
    ///
    /// # Panics
    /// Panics when `period <= 0` or `phi ∉ [0, 1)`.
    pub fn new(
        base: f64,
        amplitude: f64,
        period: f64,
        phi: f64,
        sigma_w: f64,
        sigma_v: f64,
        seed: u64,
    ) -> Self {
        assert!(period > 0.0, "period must be positive");
        assert!((0.0..1.0).contains(&phi), "phi must be in [0, 1)");
        TemperatureSensor {
            t: 0,
            base,
            amplitude,
            period,
            weather: 0.0,
            phi,
            front: Normal::new(0.0, sigma_w),
            sensor: Normal::new(0.0, sigma_v),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A temperate-climate preset: 15 °C mean, ±8 °C swing over a 1440-tick
    /// (minute-resolution) day, slow fronts, 0.2 °C sensor noise.
    pub fn outdoor_default(seed: u64) -> Self {
        TemperatureSensor::new(15.0, 8.0, 1440.0, 0.999, 0.05, 0.2, seed)
    }
}

impl Stream for TemperatureSensor {
    fn dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "temperature"
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        self.weather = self.phi * self.weather + self.front.sample(&mut self.rng);
        let diurnal = self.amplitude * (core::f64::consts::TAU * self.t as f64 / self.period).sin();
        let signal = self.base + diurnal + self.weather;
        self.t += 1;
        truth[0] = signal;
        observed[0] = signal + self.sensor.sample(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_plausible_range() {
        let mut s = TemperatureSensor::outdoor_default(31);
        let (_, truth) = s.collect(10_000);
        assert!(truth.iter().all(|&x| x > -30.0 && x < 60.0));
    }

    #[test]
    fn diurnal_cycle_visible() {
        // Without weather or noise, values one period apart are equal.
        let mut s = TemperatureSensor::new(10.0, 5.0, 100.0, 0.0, 0.0, 0.0, 32);
        let (_, truth) = s.collect(200);
        for i in 0..100 {
            assert!((truth[i] - truth[i + 100]).abs() < 1e-9);
        }
    }

    #[test]
    fn weather_wanders_slowly() {
        let mut s = TemperatureSensor::new(0.0, 0.0, 100.0, 0.99, 0.5, 0.0, 33);
        let (_, truth) = s.collect(5000);
        // AR(1) with phi=0.99 must be strongly autocorrelated: adjacent ticks
        // differ far less than distant ones on average.
        let adj: f64 = truth.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / 4999.0;
        let far: f64 = (0..4000)
            .map(|i| (truth[i + 1000] - truth[i]).abs())
            .sum::<f64>()
            / 4000.0;
        assert!(far > 3.0 * adj, "adjacent {adj} vs far {far}");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn rejects_bad_period() {
        let _ = TemperatureSensor::new(0.0, 1.0, 0.0, 0.5, 0.1, 0.1, 34);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn rejects_bad_phi() {
        let _ = TemperatureSensor::new(0.0, 1.0, 10.0, 1.0, 0.1, 0.1, 35);
    }
}
