//! Simulated equity mid-price: geometric Brownian motion with jumps.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::dist::Normal;
use crate::Stream;

/// Geometric Brownian motion with Poisson jumps (Merton-style):
///
/// ```text
/// price_{t+1} = price_t · exp((mu − sigma²/2) dt + sigma √dt N(0,1) + J_t)
/// J_t = N(0, jump_std²) with probability jump_prob, else 0
/// observed    = price + N(0, tick_noise²)     (microstructure/quote noise)
/// ```
///
/// The F3 workload: prices drift and trend, occasionally gap — the regime
/// where dead-reckoning overshoots on jumps and value caching chatters
/// during trends.
#[derive(Debug, Clone)]
pub struct StockTicker {
    price: f64,
    drift_term: f64,
    diffusion: Normal,
    jump_prob: f64,
    jump: Normal,
    quote_noise: Normal,
    rng: SmallRng,
}

impl StockTicker {
    /// Creates a ticker starting at `price0` with annualised-style drift
    /// `mu` and volatility `sigma` per unit time, time step `dt`, jump
    /// probability `jump_prob` per tick with jump log-std `jump_std`,
    /// quote noise std `tick_noise`, and RNG `seed`.
    ///
    /// # Panics
    /// Panics when `price0 <= 0` or `jump_prob ∉ [0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        price0: f64,
        mu: f64,
        sigma: f64,
        dt: f64,
        jump_prob: f64,
        jump_std: f64,
        tick_noise: f64,
        seed: u64,
    ) -> Self {
        assert!(price0 > 0.0, "price must start positive");
        assert!(
            (0.0..=1.0).contains(&jump_prob),
            "jump_prob must be a probability"
        );
        StockTicker {
            price: price0,
            drift_term: (mu - 0.5 * sigma * sigma) * dt,
            diffusion: Normal::new(0.0, sigma * dt.sqrt()),
            jump_prob,
            jump: Normal::new(0.0, jump_std),
            quote_noise: Normal::new(0.0, tick_noise),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A liquid large-cap preset: gentle drift, 1% per-√tick vol, rare 2%
    /// jumps, one-cent quote noise.
    pub fn liquid_default(seed: u64) -> Self {
        StockTicker::new(100.0, 0.0001, 0.01, 1.0, 0.002, 0.02, 0.01, seed)
    }

    /// Current true price.
    pub fn price(&self) -> f64 {
        self.price
    }
}

impl Stream for StockTicker {
    fn dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "stock_ticker"
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        let mut log_ret = self.drift_term + self.diffusion.sample(&mut self.rng);
        if self.rng.random::<f64>() < self.jump_prob {
            log_ret += self.jump.sample(&mut self.rng);
        }
        self.price *= log_ret.exp();
        truth[0] = self.price;
        observed[0] = self.price + self.quote_noise.sample(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_stay_positive() {
        let mut s = StockTicker::new(50.0, 0.0, 0.05, 1.0, 0.01, 0.1, 0.0, 21);
        let (_, truth) = s.collect(10_000);
        assert!(truth.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn zero_vol_zero_drift_is_constant() {
        let mut s = StockTicker::new(100.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 22);
        let (_, truth) = s.collect(10);
        assert!(truth.iter().all(|&p| (p - 100.0).abs() < 1e-9));
    }

    #[test]
    fn drift_moves_log_price_linearly() {
        let mu = 0.001;
        let mut s = StockTicker::new(100.0, mu, 0.0, 1.0, 0.0, 0.0, 0.0, 23);
        let (_, truth) = s.collect(1000);
        let expected = 100.0 * (mu * 1000.0_f64).exp();
        assert!((truth[999] - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn jumps_fatten_returns() {
        // With frequent large jumps, the max |log return| must exceed what
        // pure diffusion would produce.
        let mut calm = StockTicker::new(100.0, 0.0, 0.01, 1.0, 0.0, 0.0, 0.0, 24);
        let mut jumpy = StockTicker::new(100.0, 0.0, 0.01, 1.0, 0.05, 0.2, 0.0, 24);
        let max_abs_ret = |truth: &[f64]| {
            truth
                .windows(2)
                .map(|w| (w[1] / w[0]).ln().abs())
                .fold(0.0_f64, f64::max)
        };
        let (_, t1) = calm.collect(5000);
        let (_, t2) = jumpy.collect(5000);
        assert!(max_abs_ret(&t2) > 2.0 * max_abs_ret(&t1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_price() {
        let _ = StockTicker::new(0.0, 0.0, 0.01, 1.0, 0.0, 0.0, 0.0, 25);
    }

    #[test]
    fn preset_is_reproducible() {
        let mut a = StockTicker::liquid_default(9);
        let mut b = StockTicker::liquid_default(9);
        for _ in 0..100 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
    }
}
