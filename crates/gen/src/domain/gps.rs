//! Simulated GPS track: 2-D random-waypoint mobility.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::dist::Normal;
use crate::Stream;

/// Random-waypoint mobility in a square arena:
///
/// the object picks a uniform random waypoint and a uniform random speed,
/// moves straight toward it, pauses briefly on arrival, then repeats. The
/// GPS receiver observes position with isotropic Gaussian error.
///
/// The F4 workload (object tracking): long constant-velocity legs —
/// perfect for a CV model — punctuated by turns that force resyncs.
#[derive(Debug, Clone)]
pub struct GpsTrack {
    pos: [f64; 2],
    waypoint: [f64; 2],
    speed: f64,
    pause_left: u64,
    arena: f64,
    speed_range: (f64, f64),
    pause_ticks: u64,
    gps_noise: Normal,
    rng: SmallRng,
}

impl GpsTrack {
    /// Creates a track in an `arena × arena` square with speeds drawn from
    /// `speed_range` (units per tick), `pause_ticks` dwell at each waypoint,
    /// GPS error std `gps_noise` per axis, and RNG `seed`.
    ///
    /// # Panics
    /// Panics when the arena is non-positive or the speed range is invalid.
    pub fn new(
        arena: f64,
        speed_range: (f64, f64),
        pause_ticks: u64,
        gps_noise: f64,
        seed: u64,
    ) -> Self {
        assert!(arena > 0.0, "arena must be positive");
        assert!(
            speed_range.0 > 0.0 && speed_range.1 >= speed_range.0,
            "speed range must be positive and ordered"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let pos = [arena * rng.random::<f64>(), arena * rng.random::<f64>()];
        let waypoint = [arena * rng.random::<f64>(), arena * rng.random::<f64>()];
        let speed = speed_range.0 + (speed_range.1 - speed_range.0) * rng.random::<f64>();
        GpsTrack {
            pos,
            waypoint,
            speed,
            pause_left: 0,
            arena,
            speed_range,
            pause_ticks,
            gps_noise: Normal::new(0.0, gps_noise),
            rng,
        }
    }

    /// A pedestrian preset: 1 km arena, 1–2 m/tick walking speed, brief
    /// pauses, 3 m GPS error.
    pub fn pedestrian_default(seed: u64) -> Self {
        GpsTrack::new(1000.0, (1.0, 2.0), 30, 3.0, seed)
    }

    fn pick_next_leg(&mut self) {
        self.waypoint = [
            self.arena * self.rng.random::<f64>(),
            self.arena * self.rng.random::<f64>(),
        ];
        self.speed = self.speed_range.0
            + (self.speed_range.1 - self.speed_range.0) * self.rng.random::<f64>();
        self.pause_left = self.pause_ticks;
    }
}

impl Stream for GpsTrack {
    fn dim(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "gps_track"
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        if self.pause_left > 0 {
            self.pause_left -= 1;
        } else {
            let dx = self.waypoint[0] - self.pos[0];
            let dy = self.waypoint[1] - self.pos[1];
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= self.speed {
                self.pos = self.waypoint;
                self.pick_next_leg();
            } else {
                self.pos[0] += self.speed * dx / dist;
                self.pos[1] += self.speed * dy / dist;
            }
        }
        truth[0] = self.pos[0];
        truth[1] = self.pos[1];
        observed[0] = self.pos[0] + self.gps_noise.sample(&mut self.rng);
        observed[1] = self.pos[1] + self.gps_noise.sample(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_arena() {
        let mut g = GpsTrack::new(100.0, (1.0, 3.0), 5, 0.0, 51);
        let (_, truth) = g.collect(10_000);
        for pair in truth.chunks(2) {
            assert!(pair[0] >= -1e-9 && pair[0] <= 100.0 + 1e-9);
            assert!(pair[1] >= -1e-9 && pair[1] <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn speed_is_bounded() {
        let mut g = GpsTrack::new(1000.0, (2.0, 4.0), 0, 0.0, 52);
        let (_, truth) = g.collect(5_000);
        for w in truth.chunks(2).collect::<Vec<_>>().windows(2) {
            let dx = w[1][0] - w[0][0];
            let dy = w[1][1] - w[0][1];
            let step = (dx * dx + dy * dy).sqrt();
            assert!(step <= 4.0 + 1e-9, "step {step}");
        }
    }

    #[test]
    fn pauses_hold_position() {
        let mut g = GpsTrack::new(100.0, (50.0, 60.0), 10, 0.0, 53);
        // Huge speed => reaches waypoints fast, then pauses 10 ticks.
        let (_, truth) = g.collect(200);
        let mut repeats = 0;
        for w in truth.chunks(2).collect::<Vec<_>>().windows(2) {
            if w[0] == w[1] {
                repeats += 1;
            }
        }
        assert!(repeats >= 10, "no pause detected");
    }

    #[test]
    fn gps_noise_scale() {
        let mut g = GpsTrack::new(1000.0, (1.0, 1.5), 0, 5.0, 54);
        let (obs, truth) = g.collect(20_000);
        let mse: f64 = obs
            .iter()
            .zip(truth.iter())
            .map(|(o, t)| (o - t) * (o - t))
            .sum::<f64>()
            / obs.len() as f64;
        assert!((mse.sqrt() - 5.0).abs() < 0.2, "gps std {}", mse.sqrt());
    }

    #[test]
    fn dim_is_two() {
        let g = GpsTrack::pedestrian_default(55);
        assert_eq!(g.dim(), 2);
        assert_eq!(g.name(), "gps_track");
    }
}
