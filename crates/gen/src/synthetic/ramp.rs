//! Linear ramp — the trending workload.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::Normal;
use crate::Stream;

/// Linear trend with sensor noise:
///
/// ```text
/// truth_t    = level0 + slope · t
/// observed_t = truth_t + N(0, sigma_v²)
/// ```
///
/// The simplest stream on which value-caching baselines pay one message per
/// `δ/slope` ticks forever while a constant-velocity filter pays only for
/// lock-in.
#[derive(Debug, Clone)]
pub struct Ramp {
    t: u64,
    level0: f64,
    slope: f64,
    sensor: Normal,
    rng: SmallRng,
}

impl Ramp {
    /// Creates a ramp starting at `level0` rising `slope` per tick with
    /// sensor-noise std `sigma_v` and RNG `seed`.
    pub fn new(level0: f64, slope: f64, sigma_v: f64, seed: u64) -> Self {
        Ramp {
            t: 0,
            level0,
            slope,
            sensor: Normal::new(0.0, sigma_v),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Slope per tick.
    pub fn slope(&self) -> f64 {
        self.slope
    }
}

impl Stream for Ramp {
    fn dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "ramp"
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        let signal = self.level0 + self.slope * self.t as f64;
        self.t += 1;
        truth[0] = signal;
        observed[0] = signal + self.sensor.sample(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_ramp_is_exact() {
        let mut r = Ramp::new(10.0, 0.25, 0.0, 1);
        let (_, truth) = r.collect(5);
        assert_eq!(truth, vec![10.0, 10.25, 10.5, 10.75, 11.0]);
    }

    #[test]
    fn noise_does_not_touch_truth() {
        let mut r = Ramp::new(0.0, 1.0, 5.0, 2);
        let s = r.next_sample();
        assert_eq!(s.truth[0], 0.0);
        assert_ne!(s.observed[0], s.truth[0]);
    }
}
