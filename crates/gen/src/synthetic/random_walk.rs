//! Random walk with drift and sensor noise.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::Normal;
use crate::Stream;

/// Scalar random walk with drift:
///
/// ```text
/// level_{t+1} = level_t + drift + N(0, sigma_w²)      (truth)
/// observed_t  = level_t + N(0, sigma_v²)              (sensor)
/// ```
///
/// The F1 workload. `sigma_w` controls how fast the signal moves (how hard
/// suppression is); `sigma_v` controls sensor noise (what the adaptive-R
/// experiment sweeps).
#[derive(Debug, Clone)]
pub struct RandomWalk {
    level: f64,
    drift: f64,
    process: Normal,
    sensor: Normal,
    rng: SmallRng,
}

impl RandomWalk {
    /// Creates a walk starting at `level` with per-step `drift`, process-noise
    /// std `sigma_w`, measurement-noise std `sigma_v`, and RNG `seed`.
    pub fn new(level: f64, drift: f64, sigma_w: f64, sigma_v: f64, seed: u64) -> Self {
        RandomWalk {
            level,
            drift,
            process: Normal::new(0.0, sigma_w),
            sensor: Normal::new(0.0, sigma_v),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Process-noise standard deviation.
    pub fn sigma_w(&self) -> f64 {
        self.process.std()
    }

    /// Measurement-noise standard deviation.
    pub fn sigma_v(&self) -> f64 {
        self.sensor.std()
    }
}

impl Stream for RandomWalk {
    fn dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "random_walk"
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        self.level += self.drift + self.process.sample(&mut self.rng);
        truth[0] = self.level;
        observed[0] = self.level + self.sensor.sample(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_per_seed() {
        let mut a = RandomWalk::new(0.0, 0.0, 1.0, 0.1, 7);
        let mut b = RandomWalk::new(0.0, 0.0, 1.0, 0.1, 7);
        for _ in 0..50 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomWalk::new(0.0, 0.0, 1.0, 0.1, 1);
        let mut b = RandomWalk::new(0.0, 0.0, 1.0, 0.1, 2);
        let sa: Vec<_> = (0..10).map(|_| a.next_sample().observed[0]).collect();
        let sb: Vec<_> = (0..10).map(|_| b.next_sample().observed[0]).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn drift_dominates_over_time() {
        let mut w = RandomWalk::new(0.0, 1.0, 0.01, 0.0, 3);
        let (_, truth) = w.collect(1000);
        let last = truth[999];
        assert!((last - 1000.0).abs() < 10.0, "last {last}");
    }

    #[test]
    fn zero_noise_walk_is_pure_drift() {
        let mut w = RandomWalk::new(5.0, 0.5, 0.0, 0.0, 4);
        let s = w.next_sample();
        assert_eq!(s.truth[0], 5.5);
        assert_eq!(s.observed[0], 5.5);
    }

    #[test]
    fn observation_noise_has_expected_scale() {
        let mut w = RandomWalk::new(0.0, 0.0, 0.0, 2.0, 5);
        let (obs, truth) = w.collect(20_000);
        let mse: f64 = obs
            .iter()
            .zip(truth.iter())
            .map(|(o, t)| (o - t) * (o - t))
            .sum::<f64>()
            / obs.len() as f64;
        assert!((mse.sqrt() - 2.0).abs() < 0.1, "sensor std {}", mse.sqrt());
    }
}
