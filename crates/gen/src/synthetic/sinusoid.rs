//! Noisy sinusoid — the periodic workload.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::Normal;
use crate::Stream;

/// Sinusoidal signal with additive sensor noise:
///
/// ```text
/// truth_t    = offset + amplitude · sin(omega · t + phase)
/// observed_t = truth_t + N(0, sigma_v²)
/// ```
///
/// The F2 workload (periodic streams: diurnal temperature, seasonal demand).
#[derive(Debug, Clone)]
pub struct Sinusoid {
    t: u64,
    amplitude: f64,
    omega: f64,
    phase: f64,
    offset: f64,
    sensor: Normal,
    rng: SmallRng,
}

impl Sinusoid {
    /// Creates a sinusoid with the given shape parameters, sensor-noise std
    /// `sigma_v`, and RNG `seed`.
    pub fn new(
        amplitude: f64,
        omega: f64,
        phase: f64,
        offset: f64,
        sigma_v: f64,
        seed: u64,
    ) -> Self {
        Sinusoid {
            t: 0,
            amplitude,
            omega,
            phase,
            offset,
            sensor: Normal::new(0.0, sigma_v),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Angular frequency per tick.
    pub fn omega(&self) -> f64 {
        self.omega
    }
}

impl Stream for Sinusoid {
    fn dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "sinusoid"
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        let signal = self.offset + self.amplitude * (self.omega * self.t as f64 + self.phase).sin();
        self.t += 1;
        truth[0] = signal;
        observed[0] = signal + self.sensor.sample(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_matches_formula() {
        let mut s = Sinusoid::new(2.0, 0.5, 0.1, 3.0, 0.0, 1);
        for t in 0..20u64 {
            let sample = s.next_sample();
            let expect = 3.0 + 2.0 * (0.5 * t as f64 + 0.1).sin();
            assert!((sample.truth[0] - expect).abs() < 1e-12);
            assert_eq!(sample.observed, sample.truth);
        }
    }

    #[test]
    fn amplitude_bounds_hold() {
        let mut s = Sinusoid::new(1.5, 0.3, 0.0, 0.0, 0.0, 2);
        let (_, truth) = s.collect(500);
        assert!(truth.iter().all(|x| x.abs() <= 1.5 + 1e-12));
        assert!(truth.iter().any(|x| x.abs() > 1.4)); // hits near-peak
    }

    #[test]
    fn period_is_tau_over_omega() {
        let omega = core::f64::consts::TAU / 50.0; // period exactly 50 ticks
        let mut s = Sinusoid::new(1.0, omega, 0.0, 0.0, 0.0, 3);
        let (_, truth) = s.collect(100);
        assert!((truth[0] - truth[50]).abs() < 1e-9);
        assert!((truth[25] - truth[75]).abs() < 1e-9);
    }
}
