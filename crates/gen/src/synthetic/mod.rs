//! Synthetic stochastic processes with controllable dynamics.
//!
//! These are the "knob" workloads of the evaluation: each exposes exactly the
//! parameter an experiment sweeps (drift, noise level, frequency, slope,
//! regime schedule) with everything else held fixed.

mod ou;
mod ramp;
mod random_walk;
mod regime;
mod sinusoid;

pub use ou::OrnsteinUhlenbeck;
pub use ramp::Ramp;
pub use random_walk::RandomWalk;
pub use regime::RegimeSwitching;
pub use sinusoid::Sinusoid;
