//! Ornstein–Uhlenbeck (mean-reverting) process.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::Normal;
use crate::Stream;

/// Discretised Ornstein–Uhlenbeck process:
///
/// ```text
/// x_{t+1} = x_t + theta · (mu − x_t) · dt + sigma · √dt · N(0,1)   (truth)
/// observed = truth + N(0, sigma_v²)
/// ```
///
/// Mean-reverting streams: queue lengths, load averages, interest rates.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    x: f64,
    theta: f64,
    mu: f64,
    diffusion: Normal,
    sensor: Normal,
    rng: SmallRng,
}

impl OrnsteinUhlenbeck {
    /// Creates an OU process starting at `x0` with reversion speed `theta`,
    /// long-run mean `mu`, diffusion `sigma`, step `dt`, sensor noise std
    /// `sigma_v`, and RNG `seed`.
    ///
    /// # Panics
    /// Panics when `theta·dt ≥ 2` (the Euler discretisation would diverge).
    pub fn new(x0: f64, theta: f64, mu: f64, sigma: f64, dt: f64, sigma_v: f64, seed: u64) -> Self {
        assert!(
            theta * dt < 2.0,
            "theta*dt must be < 2 for a stable discretisation"
        );
        OrnsteinUhlenbeck {
            x: x0,
            theta: theta * dt,
            mu,
            diffusion: Normal::new(0.0, sigma * dt.sqrt()),
            sensor: Normal::new(0.0, sigma_v),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Stream for OrnsteinUhlenbeck {
    fn dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "ornstein_uhlenbeck"
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        self.x += self.theta * (self.mu - self.x) + self.diffusion.sample(&mut self.rng);
        truth[0] = self.x;
        observed[0] = self.x + self.sensor.sample(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverts_to_mean() {
        let mut ou = OrnsteinUhlenbeck::new(100.0, 0.5, 10.0, 0.1, 1.0, 0.0, 11);
        let (_, truth) = ou.collect(200);
        let tail_mean: f64 = truth[150..].iter().sum::<f64>() / 50.0;
        assert!((tail_mean - 10.0).abs() < 1.0, "tail mean {tail_mean}");
    }

    #[test]
    fn stationary_variance_is_bounded() {
        // Var_inf = sigma² / (2 theta) = 4 / 1 = 4 for sigma=2, theta=0.5.
        let mut ou = OrnsteinUhlenbeck::new(0.0, 0.5, 0.0, 2.0, 1.0, 0.0, 12);
        let (_, truth) = ou.collect(40_000);
        let tail = &truth[1000..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        let var: f64 =
            tail.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / tail.len() as f64;
        // Euler discretisation inflates this slightly; generous band.
        assert!(var > 2.0 && var < 8.0, "stationary var {var}");
    }

    #[test]
    #[should_panic(expected = "stable")]
    fn rejects_unstable_discretisation() {
        let _ = OrnsteinUhlenbeck::new(0.0, 3.0, 0.0, 1.0, 1.0, 0.0, 13);
    }

    #[test]
    fn reproducible() {
        let mut a = OrnsteinUhlenbeck::new(1.0, 0.2, 0.0, 1.0, 1.0, 0.1, 14);
        let mut b = OrnsteinUhlenbeck::new(1.0, 0.2, 0.0, 1.0, 1.0, 0.1, 14);
        for _ in 0..20 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
    }
}
