//! Regime-switching composite stream — the time-variance workload.

use crate::Stream;

/// Chains several streams, switching between them on a fixed tick schedule,
/// with continuity: each regime's output is offset so the composite signal
/// has no artificial jump at the boundary (the *dynamics* change, not the
/// level — exactly the condition the model bank must detect from innovation
/// statistics rather than from an obvious discontinuity).
///
/// The F6 workload: walk → ramp → sinusoid with switches every few thousand
/// ticks.
pub struct RegimeSwitching {
    regimes: Vec<(Box<dyn Stream + Send>, u64)>,
    current: usize,
    ticks_in_current: u64,
    /// Offset applied to the current regime so the composite is continuous.
    offset: f64,
    /// Last composite truth value (to compute the next regime's offset).
    last_truth: f64,
    /// Whether any sample has been produced yet.
    started: bool,
    name: String,
}

impl RegimeSwitching {
    /// Builds a composite from `(stream, duration_ticks)` pairs. After the
    /// last regime expires the composite stays on it forever.
    ///
    /// # Panics
    /// Panics when `regimes` is empty, any duration is zero, or any regime
    /// is not scalar.
    pub fn new(regimes: Vec<(Box<dyn Stream + Send>, u64)>) -> Self {
        assert!(!regimes.is_empty(), "need at least one regime");
        assert!(
            regimes.iter().all(|(_, d)| *d > 0),
            "durations must be positive"
        );
        assert!(
            regimes.iter().all(|(s, _)| s.dim() == 1),
            "regime switching supports scalar streams"
        );
        let name = format!(
            "regime[{}]",
            regimes
                .iter()
                .map(|(s, _)| s.name())
                .collect::<Vec<_>>()
                .join("->")
        );
        RegimeSwitching {
            regimes,
            current: 0,
            ticks_in_current: 0,
            offset: 0.0,
            last_truth: 0.0,
            started: false,
            name,
        }
    }

    /// Index of the active regime.
    pub fn active_regime(&self) -> usize {
        self.current
    }
}

impl Stream for RegimeSwitching {
    fn dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        // Advance regime if the current one expired (never past the last).
        if self.current + 1 < self.regimes.len()
            && self.ticks_in_current >= self.regimes[self.current].1
        {
            self.current += 1;
            self.ticks_in_current = 0;
            // Compute the new regime's first raw truth to splice levels.
            let mut o = [0.0];
            let mut t = [0.0];
            self.regimes[self.current].0.next_into(&mut o, &mut t);
            if self.started {
                self.offset = self.last_truth - t[0];
            }
            self.ticks_in_current += 1;
            self.last_truth = t[0] + self.offset;
            truth[0] = self.last_truth;
            observed[0] = o[0] + self.offset;
            return;
        }
        let mut o = [0.0];
        let mut t = [0.0];
        self.regimes[self.current].0.next_into(&mut o, &mut t);
        self.ticks_in_current += 1;
        self.last_truth = t[0] + self.offset;
        self.started = true;
        truth[0] = self.last_truth;
        observed[0] = o[0] + self.offset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{Ramp, Sinusoid};

    fn composite() -> RegimeSwitching {
        RegimeSwitching::new(vec![
            (Box::new(Ramp::new(0.0, 1.0, 0.0, 1)), 10),
            (Box::new(Ramp::new(100.0, -2.0, 0.0, 2)), 10),
            (Box::new(Sinusoid::new(1.0, 0.5, 0.0, 0.0, 0.0, 3)), 10),
        ])
    }

    #[test]
    fn switches_on_schedule() {
        let mut c = composite();
        for _ in 0..10 {
            c.next_sample();
        }
        assert_eq!(c.active_regime(), 0);
        c.next_sample();
        assert_eq!(c.active_regime(), 1);
        for _ in 0..10 {
            c.next_sample();
        }
        assert_eq!(c.active_regime(), 2);
    }

    #[test]
    fn composite_is_continuous_at_boundaries() {
        let mut c = composite();
        let (_, truth) = c.collect(30);
        for w in truth.windows(2) {
            // Max per-tick move: ramp slope 2, sinusoid step < 0.5.
            assert!(
                (w[1] - w[0]).abs() <= 2.0 + 1e-9,
                "jump {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn last_regime_persists() {
        let mut c = composite();
        let (_, truth) = c.collect(100);
        // After tick 30 it's the sinusoid forever: bounded oscillation around
        // the spliced level.
        let tail = &truth[30..];
        let center = truth[29];
        assert!(tail.iter().all(|x| (x - center).abs() < 3.0));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        let _ = RegimeSwitching::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_rejected() {
        let _ = RegimeSwitching::new(vec![(Box::new(Ramp::new(0.0, 1.0, 0.0, 1)), 0)]);
    }

    #[test]
    fn name_describes_chain() {
        let c = composite();
        assert_eq!(c.name(), "regime[ramp->ramp->sinusoid]");
    }
}
