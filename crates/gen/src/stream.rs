//! The pull-based stream abstraction every generator implements.

/// One stream sample: the noisy observation the "sensor" reports, plus the
/// noiseless ground truth used for error accounting in experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The observed (noisy) measurement, one value per dimension.
    pub observed: Vec<f64>,
    /// The true underlying signal, one value per dimension.
    pub truth: Vec<f64>,
}

impl Sample {
    /// Builds a scalar sample.
    pub fn scalar(observed: f64, truth: f64) -> Self {
        Sample {
            observed: vec![observed],
            truth: vec![truth],
        }
    }
}

/// A pull-based data stream producing one sample per tick.
///
/// Implementations own their RNG state: constructing the same generator with
/// the same seed replays the same stream, which is how every experiment in
/// `EXPERIMENTS.md` stays reproducible.
pub trait Stream {
    /// Number of values per sample (1 for scalar streams, 2 for GPS).
    fn dim(&self) -> usize;

    /// Short stable identifier used in experiment output.
    fn name(&self) -> &str;

    /// Writes the next observation into `observed` and the ground truth into
    /// `truth`, both of length [`Stream::dim`]. Allocation-free hot path.
    ///
    /// # Panics
    /// Implementations may panic when the slices are shorter than `dim()`.
    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]);

    /// Allocating convenience wrapper over [`Stream::next_into`].
    fn next_sample(&mut self) -> Sample {
        let d = self.dim();
        let mut s = Sample {
            observed: vec![0.0; d],
            truth: vec![0.0; d],
        };
        self.next_into(&mut s.observed, &mut s.truth);
        s
    }

    /// Collects `n` samples into parallel (observed, truth) vectors of
    /// flattened row-major values.
    fn collect(&mut self, n: usize) -> (Vec<f64>, Vec<f64>) {
        let d = self.dim();
        let mut obs = vec![0.0; n * d];
        let mut tru = vec![0.0; n * d];
        for i in 0..n {
            let (o, t) = (&mut obs[i * d..(i + 1) * d], &mut tru[i * d..(i + 1) * d]);
            self.next_into(o, t);
        }
        (obs, tru)
    }
}

/// Blanket impl so `Box<dyn Stream>` composes (used by the regime-switching
/// generator and the simulator's heterogeneous fleets).
impl Stream for Box<dyn Stream + Send> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
        (**self).next_into(observed, truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        v: f64,
    }

    impl Stream for Counter {
        fn dim(&self) -> usize {
            1
        }
        fn name(&self) -> &str {
            "counter"
        }
        fn next_into(&mut self, observed: &mut [f64], truth: &mut [f64]) {
            self.v += 1.0;
            observed[0] = self.v;
            truth[0] = self.v;
        }
    }

    #[test]
    fn next_sample_wraps_next_into() {
        let mut c = Counter { v: 0.0 };
        assert_eq!(c.next_sample(), Sample::scalar(1.0, 1.0));
        assert_eq!(c.next_sample(), Sample::scalar(2.0, 2.0));
    }

    #[test]
    fn collect_flattens() {
        let mut c = Counter { v: 0.0 };
        let (obs, tru) = c.collect(3);
        assert_eq!(obs, vec![1.0, 2.0, 3.0]);
        assert_eq!(tru, obs);
    }

    #[test]
    fn boxed_stream_delegates() {
        let mut b: Box<dyn Stream + Send> = Box::new(Counter { v: 10.0 });
        assert_eq!(b.dim(), 1);
        assert_eq!(b.name(), "counter");
        assert_eq!(b.next_sample().observed[0], 11.0);
    }
}
