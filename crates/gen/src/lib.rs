//! # kalstream-gen
//!
//! Stream generators for the evaluation workloads.
//!
//! The paper evaluates on "both synthetic and real-world streams". The
//! real-world traces (stock tickers, sensor feeds, object trajectories) are
//! not redistributable, so this crate provides **simulated domain traces**
//! with the same dynamical regimes — drift, bursts, periodicity, mean
//! reversion, regime changes — plus the classic synthetic processes. Every
//! generator:
//!
//! * implements the [`Stream`] trait (pull-based, allocation-free sampling
//!   via [`Stream::next_into`]);
//! * owns its own seeded RNG, so a `(generator, seed)` pair is a fully
//!   reproducible workload — experiments cite seeds, and reruns are exact;
//! * separates **process noise** (the true signal's randomness) from
//!   **measurement noise** (the sensor's), exposing ground truth alongside
//!   the noisy observation so experiments can score server-side error
//!   against the truth.
//!
//! ```
//! use kalstream_gen::{synthetic::RandomWalk, Stream};
//!
//! let mut walk = RandomWalk::new(0.0, 0.0, 0.1, 0.05, 42);
//! let sample = walk.next_sample();
//! assert_eq!(sample.observed.len(), 1);
//! assert_eq!(sample.truth.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod domain;
mod stream;
pub mod synthetic;
mod trace;

pub use stream::{Sample, Stream};
pub use trace::{Trace, TraceError, TraceReplay};
