//! From-scratch statistical distributions over `rand`'s uniform source.
//!
//! The sanctioned dependency set contains `rand` but not `rand_distr`, so the
//! non-uniform samplers the workloads need are implemented here: Gaussian
//! (Marsaglia polar method), exponential and Pareto (inverse CDF), and
//! log-normal (via the Gaussian). All samplers consume a generic
//! [`rand::Rng`], are deterministic given the RNG, and are validated by
//! moment tests.

use rand::{Rng, RngExt};

/// Normal distribution `N(mean, std²)` sampled with the Marsaglia polar
/// method (a rejection variant of Box–Muller that avoids trigonometry).
///
/// The sampler is stateless — the common "cache the spare variate"
/// optimisation is deliberately omitted so that cloning a generator never
/// hides half-consumed state (determinism over micro-speed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates `N(mean, std²)`.
    ///
    /// # Panics
    /// Panics when `std < 0` or parameters are non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0, "standard deviation must be non-negative");
        assert!(
            mean.is_finite() && std.is_finite(),
            "parameters must be finite"
        );
        Normal { mean, std }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard-deviation parameter.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std == 0.0 {
            return self.mean;
        }
        // Marsaglia polar: draw (u, v) uniform in the unit square mapped to
        // [-1, 1]²; accept when inside the unit circle.
        loop {
            let u = 2.0 * rng.random::<f64>() - 1.0;
            let v = 2.0 * rng.random::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std * u * factor;
            }
        }
    }
}

/// Exponential distribution with rate `lambda`, sampled by inverse CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential with rate `lambda > 0` (mean `1/lambda`).
    ///
    /// # Panics
    /// Panics when `lambda <= 0` or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "rate must be positive and finite"
        );
        Exponential { lambda }
    }

    /// Rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - U avoids ln(0); U ∈ [0, 1).
        let u: f64 = rng.random();
        -(1.0 - u).max(f64::MIN_POSITIVE).ln() / self.lambda
    }
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`,
/// sampled by inverse CDF. Heavy-tailed: models network latency spikes and
/// burst sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto with minimum value `x_min > 0` and tail index
    /// `alpha > 0` (smaller `alpha` = heavier tail; mean finite only for
    /// `alpha > 1`).
    ///
    /// # Panics
    /// Panics on non-positive or non-finite parameters.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(
            x_min > 0.0 && x_min.is_finite(),
            "x_min must be positive and finite"
        );
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "alpha must be positive and finite"
        );
        Pareto { x_min, alpha }
    }

    /// Scale parameter (minimum value).
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Theoretical mean (`inf` when `alpha <= 1`).
    pub fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_min / (self.alpha - 1.0)
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.x_min / (1.0 - u).max(f64::MIN_POSITIVE).powf(1.0 / self.alpha)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`. Used for trade sizes and
/// multiplicative shocks in the stock workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal whose logarithm is `N(mu, sigma²)`.
    ///
    /// # Panics
    /// Panics when `sigma < 0` or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const N: usize = 60_000;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let d = Normal::new(5.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn normal_tail_fractions() {
        // ~31.7% of samples beyond 1σ, ~4.6% beyond 2σ.
        let d = Normal::standard();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut beyond1 = 0usize;
        let mut beyond2 = 0usize;
        for _ in 0..N {
            let x = d.sample(&mut rng).abs();
            if x > 1.0 {
                beyond1 += 1;
            }
            if x > 2.0 {
                beyond2 += 1;
            }
        }
        let f1 = beyond1 as f64 / N as f64;
        let f2 = beyond2 as f64 / N as f64;
        assert!((f1 - 0.317).abs() < 0.01, "1σ tail {f1}");
        assert!((f2 - 0.0455).abs() < 0.006, "2σ tail {f2}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normal_rejects_negative_std() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::new(0.5); // mean 2, var 4
        let mut rng = SmallRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn pareto_respects_minimum_and_mean() {
        let d = Pareto::new(1.0, 3.0); // mean = 1.5
        let mut rng = SmallRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        let (mean, _) = moments(&samples);
        assert!(
            (mean - d.mean()).abs() < 0.05,
            "mean {mean} want {}",
            d.mean()
        );
    }

    #[test]
    fn pareto_heavy_tail_has_infinite_mean_flag() {
        assert_eq!(Pareto::new(1.0, 1.0).mean(), f64::INFINITY);
        assert_eq!(Pareto::new(2.0, 2.0).mean(), 4.0);
    }

    #[test]
    fn lognormal_median() {
        // Median of LogNormal(mu, sigma) is exp(mu).
        let d = LogNormal::new(1.0, 0.5);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut samples: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[N / 2];
        assert!((median - 1.0_f64.exp()).abs() < 0.05, "median {median}");
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let d = Normal::standard();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
