//! Binary wire format for sync messages.
//!
//! A hand-rolled little-endian codec rather than a serde format: the
//! sanctioned crate set has no serde *format* crate, and experiment T3
//! reports exact bytes-on-the-wire per policy, so the encoding must be
//! explicit and minimal. Layout (all integers little-endian):
//!
//! ```text
//! message   := tag:u8 body
//! tag       := 1 (State) | 2 (Model) | 3 (Measurement)
//! State     := vec(x) utri(P)            — P is x.dim() × x.dim()
//! Model     := name_len:u16 name:utf8 flags:u8 n:u16 m:u16
//!              F:(utri|full) Q:utri H:full(m×n) R:utri x:f64[n] P:utri
//! Measurement := vec(z)
//! vec(v)    := len:u32 f64[len]
//! utri(M)   := f64[n(n+1)/2]             — upper triangle, row-major
//! full(M)   := f64[rows·cols]            — row-major, headerless
//! flags     := bit 0: F is upper-triangular and sent as utri(F)
//! ```
//!
//! **Triangle packing.** Covariance matrices (`P`, `Q`, `R`) are symmetric,
//! so only the upper triangle travels — `n(n+1)/2` instead of `n²` doubles —
//! and the decoder mirrors it back. The Kalman layer re-symmetrises after
//! every covariance update ([`kalstream_linalg::Matrix::symmetrize_mut`]
//! writes the *same* f64 to both halves), so for every message the protocol
//! produces the round trip is bit-exact. For hand-built messages the
//! contract is: the wire carries the **upper triangle**; a bitwise
//! asymmetric lower triangle is discarded in transit. Kinematic transition
//! matrices (`F` for random-walk/CV/CA models) are upper-triangular, so `F`
//! is triangle-packed too when (and only when) its sub-diagonal entries are
//! bitwise `+0.0`, signalled by a flags bit. Matrix dimensions implied by
//! context (P's by `x`, the model's by one `n:u16 m:u16` pair) are not
//! re-sent. Experiment T3 and `bench_ingest` report the measured savings;
//! [`SyncMessage::encoded_len_unpacked`] preserves the naive-format cost
//! for that accounting.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use kalstream_filter::StateModel;
use kalstream_linalg::{Matrix, Vector};

use crate::{CoreError, Result};

/// A protocol sync message.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // inline-storage matrices make variants big,
                                     // but a message is built once per sync and immediately encoded — boxing would
                                     // put an allocation back on that path for no win
pub enum SyncMessage {
    /// Corrected state and covariance; model unchanged.
    State {
        /// Corrected (pinned) state estimate.
        x: Vector,
        /// State covariance at the source.
        p: Matrix,
    },
    /// Model replacement plus corrected state — sent when the source's
    /// adaptive layer changed the model since the last sync.
    Model {
        /// The new model (including adapted `Q`/`R`).
        model: StateModel,
        /// Corrected (pinned) state estimate under the new model.
        x: Vector,
        /// State covariance under the new model.
        p: Matrix,
    },
    /// Raw measurement; the server runs a standard filter update
    /// ([`crate::ResyncPayload::MeasurementOnly`] mode).
    Measurement {
        /// The observation.
        z: Vector,
    },
}

const TAG_STATE: u8 = 1;
const TAG_MODEL: u8 = 2;
const TAG_MEASUREMENT: u8 = 3;
/// v3: a sequenced sync — `seq:u64` followed by an ordinary v2 body.
const TAG_SEQ: u8 = 4;
/// v3: a cumulative acknowledgement — `seq:u64`, travelling server→source.
const TAG_ACK: u8 = 5;
/// v3: a precision-bound directive — `delta:f64`, travelling server→source
/// on the feedback link (the query runtime's downstream-bound propagation).
const TAG_BOUND: u8 = 6;

/// Flags bit 0: the model's `F` is upper-triangular and triangle-packed.
const FLAG_F_UPPER_TRIANGULAR: u8 = 1;

/// Number of f64s in the upper triangle of an `n × n` matrix.
fn tri_elems(n: usize) -> usize {
    n * (n + 1) / 2
}

/// `true` when every sub-diagonal entry is bitwise `+0.0` — the exact
/// condition under which triangle-packing `F` round-trips losslessly
/// (`-0.0` would not survive, so it disables packing).
fn is_upper_triangular(m: &Matrix) -> bool {
    let zero = 0.0_f64.to_bits();
    (1..m.rows()).all(|r| (0..r).all(|c| m.get(r, c).to_bits() == zero))
}

impl SyncMessage {
    /// Encodes to a freshly allocated wire buffer (thin wrapper over
    /// [`SyncMessage::encode_into`]).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the wire encoding to `buf` — the allocation-free kernel the
    /// frame layer batches through (mirroring the `_into` convention of the
    /// linear-algebra kernels). Exactly [`SyncMessage::encoded_len`] bytes
    /// are written.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            SyncMessage::State { x, p } => {
                buf.put_u8(TAG_STATE);
                put_vec(buf, x);
                put_upper_triangle(buf, p);
            }
            SyncMessage::Model { model, x, p } => {
                buf.put_u8(TAG_MODEL);
                let name = model.name().as_bytes();
                buf.put_u16_le(name.len() as u16);
                buf.put_slice(name);
                let f_tri = is_upper_triangular(model.f());
                buf.put_u8(if f_tri { FLAG_F_UPPER_TRIANGULAR } else { 0 });
                buf.put_u16_le(model.state_dim() as u16);
                buf.put_u16_le(model.measurement_dim() as u16);
                if f_tri {
                    put_upper_triangle(buf, model.f());
                } else {
                    put_full(buf, model.f());
                }
                put_upper_triangle(buf, model.q());
                put_full(buf, model.h());
                put_upper_triangle(buf, model.r());
                for &v in x.iter() {
                    buf.put_f64_le(v);
                }
                put_upper_triangle(buf, p);
            }
            SyncMessage::Measurement { z } => {
                buf.put_u8(TAG_MEASUREMENT);
                put_vec(buf, z);
            }
        }
    }

    /// Exact encoded size in bytes, used to pre-size buffers, by the frame
    /// layer's length prefixes, and by experiment T3's byte accounting.
    pub fn encoded_len(&self) -> usize {
        match self {
            SyncMessage::State { x, p } => 1 + vec_len(x) + 8 * tri_elems(p.rows()),
            SyncMessage::Model { model, x, p } => {
                let n = model.state_dim();
                let m = model.measurement_dim();
                let f_elems = if is_upper_triangular(model.f()) {
                    tri_elems(n)
                } else {
                    n * n
                };
                1 + 2
                    + model.name().len()
                    + 1 // flags
                    + 2 // n
                    + 2 // m
                    + 8 * (f_elems + tri_elems(n) + m * n + tri_elems(m) + x.dim() + tri_elems(p.rows()))
            }
            SyncMessage::Measurement { z } => 1 + vec_len(z),
        }
    }

    /// What this message would cost in the pre-packing format (full `n²`
    /// matrices, each with its own `rows:u32 cols:u32` header) — kept so T3
    /// and `bench_ingest` can report measured savings without re-encoding.
    pub fn encoded_len_unpacked(&self) -> usize {
        let mat = |m: &Matrix| 8 + 8 * m.rows() * m.cols();
        match self {
            SyncMessage::State { x, p } => 1 + vec_len(x) + mat(p),
            SyncMessage::Model { model, x, p } => {
                1 + 2
                    + model.name().len()
                    + mat(model.f())
                    + mat(model.q())
                    + mat(model.h())
                    + mat(model.r())
                    + vec_len(x)
                    + mat(p)
            }
            SyncMessage::Measurement { z } => 1 + vec_len(z),
        }
    }

    /// Decodes a wire buffer.
    ///
    /// # Errors
    /// [`CoreError::Decode`] on truncation, unknown tags, bad UTF-8,
    /// reserved flag bits, or an inconsistent embedded model.
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        let tag = get_u8(&mut buf)?;
        let msg = match tag {
            TAG_STATE => {
                let x = get_vec(&mut buf)?;
                let p = get_symmetric(&mut buf, x.dim())?;
                SyncMessage::State { x, p }
            }
            TAG_MODEL => {
                let name_len = get_u16(&mut buf)? as usize;
                if buf.remaining() < name_len {
                    return Err(decode_err("truncated model name"));
                }
                let name = std::str::from_utf8(&buf[..name_len])
                    .map_err(|e| decode_err(&format!("model name not utf-8: {e}")))?
                    .to_string();
                buf.advance(name_len);
                let flags = get_u8(&mut buf)?;
                if flags & !FLAG_F_UPPER_TRIANGULAR != 0 {
                    return Err(decode_err(&format!("reserved flag bits set: {flags:#x}")));
                }
                let n = get_u16(&mut buf)? as usize;
                let m = get_u16(&mut buf)? as usize;
                check_dims(n, n)?;
                check_dims(m, n.max(m))?;
                let f = if flags & FLAG_F_UPPER_TRIANGULAR != 0 {
                    // Kinematic F: mirror-free reconstruction with exact
                    // +0.0 below the diagonal (the encoder only sets the
                    // flag when that is bit-exact).
                    get_upper_triangular(&mut buf, n)?
                } else {
                    get_full(&mut buf, n, n)?
                };
                let q = get_symmetric(&mut buf, n)?;
                let h = get_full(&mut buf, m, n)?;
                let r = get_symmetric(&mut buf, m)?;
                let x = get_fixed_vec(&mut buf, n)?;
                let p = get_symmetric(&mut buf, n)?;
                let model = StateModel::new(name, f, q, h, r)
                    .map_err(|e| decode_err(&format!("inconsistent model: {e}")))?;
                SyncMessage::Model { model, x, p }
            }
            TAG_MEASUREMENT => SyncMessage::Measurement {
                z: get_vec(&mut buf)?,
            },
            other => return Err(decode_err(&format!("unknown tag {other}"))),
        };
        if buf.has_remaining() {
            return Err(decode_err(&format!("{} trailing bytes", buf.remaining())));
        }
        Ok(msg)
    }
}

/// A v3 wire message: everything that can travel on a link.
///
/// The loss-tolerant delivery layer wraps sync messages in an optional
/// **sequence header** (tag 4) and adds two reverse-direction messages: the
/// **ack** (tag 5) and the **bound directive** (tag 6).
/// Decoding is backward compatible with v2: a buffer starting with tags 1–3
/// is an unsequenced legacy sync, bit-identical to what
/// [`SyncMessage::decode`] accepts, and `Sync { seq: None, .. }` encodes to
/// exactly the v2 bytes — sessions that never enable recovery produce and
/// consume v2 traffic unchanged.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // same rationale as SyncMessage: built
                                     // once per sync and immediately encoded
pub enum WireMessage {
    /// A sync message, optionally carrying a delivery sequence number
    /// (assigned by the source when ack-based recovery is enabled; `None`
    /// encodes the legacy v2 format).
    Sync {
        /// Monotonically increasing per-stream sequence number, starting
        /// at 1. `None` for legacy unsequenced traffic.
        seq: Option<u64>,
        /// The sync payload.
        msg: SyncMessage,
    },
    /// Cumulative acknowledgement: the server has applied every sync it
    /// will ever apply up to and including `seq` (later-delivered lower
    /// sequence numbers are dropped as stale, so the watermark is exact).
    Ack {
        /// Highest sequence number applied by the server.
        seq: u64,
    },
    /// Precision-bound directive, travelling server→source on the feedback
    /// link: the consumer side (query runtime / fleet allocator) instructs
    /// the producer to adopt a new suppression bound `δ`. Last writer wins;
    /// a lost directive leaves the previous (by construction still sound)
    /// bound in force, so no retransmission machinery is needed.
    Bound {
        /// The new suppression bound. Must be finite and strictly positive;
        /// the decoder rejects anything else so a corrupted directive can
        /// never loosen a producer to a nonsensical bound.
        delta: f64,
    },
}

impl WireMessage {
    /// Encodes to a freshly allocated wire buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the wire encoding to `buf`. Exactly
    /// [`WireMessage::encoded_len`] bytes are written.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            WireMessage::Sync { seq: None, msg } => msg.encode_into(buf),
            WireMessage::Sync {
                seq: Some(seq),
                msg,
            } => {
                buf.put_u8(TAG_SEQ);
                buf.put_u64_le(*seq);
                msg.encode_into(buf);
            }
            WireMessage::Ack { seq } => {
                buf.put_u8(TAG_ACK);
                buf.put_u64_le(*seq);
            }
            WireMessage::Bound { delta } => {
                buf.put_u8(TAG_BOUND);
                buf.put_f64_le(*delta);
            }
        }
    }

    /// Exact encoded size in bytes. An unsequenced sync costs exactly its
    /// [`SyncMessage::encoded_len`]; a sequence header adds 9 bytes; acks
    /// and bound directives are 9 bytes total.
    pub fn encoded_len(&self) -> usize {
        match self {
            WireMessage::Sync { seq: None, msg } => msg.encoded_len(),
            WireMessage::Sync { seq: Some(_), msg } => 1 + 8 + msg.encoded_len(),
            WireMessage::Ack { .. } | WireMessage::Bound { .. } => 1 + 8,
        }
    }

    /// Decodes a wire buffer, accepting both v3 (tags 4–6) and legacy v2
    /// (tags 1–3, decoded as an unsequenced sync).
    ///
    /// # Errors
    /// [`CoreError::Decode`] on truncation, trailing bytes, or a malformed
    /// inner sync body.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        match buf.first() {
            Some(&TAG_SEQ) => {
                let mut rest = &buf[1..];
                let seq = get_u64(&mut rest)?;
                let msg = SyncMessage::decode(rest)?;
                Ok(WireMessage::Sync {
                    seq: Some(seq),
                    msg,
                })
            }
            Some(&TAG_ACK) => {
                let mut rest = &buf[1..];
                let seq = get_u64(&mut rest)?;
                if rest.has_remaining() {
                    return Err(decode_err(&format!("{} trailing bytes", rest.remaining())));
                }
                Ok(WireMessage::Ack { seq })
            }
            Some(&TAG_BOUND) => {
                let mut rest = &buf[1..];
                let delta = f64::from_bits(get_u64(&mut rest)?);
                if rest.has_remaining() {
                    return Err(decode_err(&format!("{} trailing bytes", rest.remaining())));
                }
                if !delta.is_finite() || delta <= 0.0 {
                    return Err(decode_err(&format!("bound delta {delta} not positive")));
                }
                Ok(WireMessage::Bound { delta })
            }
            _ => SyncMessage::decode(buf).map(|msg| WireMessage::Sync { seq: None, msg }),
        }
    }
}

fn decode_err(reason: &str) -> CoreError {
    CoreError::Decode {
        reason: reason.to_string(),
    }
}

fn vec_len(v: &Vector) -> usize {
    4 + 8 * v.dim()
}

fn put_vec(buf: &mut BytesMut, v: &Vector) {
    buf.put_u32_le(v.dim() as u32);
    for &x in v.iter() {
        buf.put_f64_le(x);
    }
}

/// Writes the upper triangle of a square matrix, row-major
/// (row `i` contributes columns `i..n`).
fn put_upper_triangle(buf: &mut BytesMut, m: &Matrix) {
    debug_assert!(m.is_square());
    let n = m.rows();
    for r in 0..n {
        for c in r..n {
            buf.put_f64_le(m.get(r, c));
        }
    }
}

/// Writes a full matrix row-major, without a dimension header.
fn put_full(buf: &mut BytesMut, m: &Matrix) {
    for &x in m.as_slice() {
        buf.put_f64_le(x);
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(decode_err("truncated tag"));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(decode_err("truncated u16"));
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(decode_err("truncated u32"));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(decode_err("truncated u64"));
    }
    Ok(buf.get_u64_le())
}

/// Guard against adversarial length prefixes: no legitimate message in this
/// system has vectors/matrices beyond a few dozen elements.
const MAX_ELEMS: u64 = 1 << 16;

/// Rejects matrix dimensions whose full form would exceed [`MAX_ELEMS`]
/// (matches the old per-matrix-header guard: at most 256 × 256).
fn check_dims(rows: usize, cols: usize) -> Result<()> {
    if (rows as u64) * (cols as u64) > MAX_ELEMS {
        return Err(decode_err(&format!("matrix {rows}x{cols} exceeds limit")));
    }
    Ok(())
}

fn get_vec(buf: &mut &[u8]) -> Result<Vector> {
    let n = get_u32(buf)? as u64;
    if n > MAX_ELEMS {
        return Err(decode_err(&format!("vector length {n} exceeds limit")));
    }
    get_fixed_vec(buf, n as usize)
}

/// Reads `n` f64s into a `Vector` without an intermediate `Vec` — at Kalman
/// sizes the inline `SmallBuf` storage makes this allocation-free, which is
/// what keeps a drained ingest batch at zero heap traffic.
fn get_fixed_vec(buf: &mut &[u8], n: usize) -> Result<Vector> {
    if (buf.remaining() as u64) < 8 * n as u64 {
        return Err(decode_err("truncated vector body"));
    }
    let mut v = Vector::zeros(n);
    for x in v.as_mut_slice() {
        *x = buf.get_f64_le();
    }
    Ok(v)
}

/// Reads an upper triangle and mirrors it into a full symmetric matrix.
fn get_symmetric(buf: &mut &[u8], n: usize) -> Result<Matrix> {
    check_dims(n, n)?;
    if (buf.remaining() as u64) < 8 * tri_elems(n) as u64 {
        return Err(decode_err("truncated symmetric matrix body"));
    }
    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        for c in r..n {
            let v = buf.get_f64_le();
            m.set(r, c, v);
            m.set(c, r, v);
        }
    }
    Ok(m)
}

/// Reads an upper triangle into an upper-triangular matrix (zeros below).
fn get_upper_triangular(buf: &mut &[u8], n: usize) -> Result<Matrix> {
    check_dims(n, n)?;
    if (buf.remaining() as u64) < 8 * tri_elems(n) as u64 {
        return Err(decode_err("truncated triangular matrix body"));
    }
    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        for c in r..n {
            m.set(r, c, buf.get_f64_le());
        }
    }
    Ok(m)
}

/// Reads a headerless `rows × cols` matrix.
fn get_full(buf: &mut &[u8], rows: usize, cols: usize) -> Result<Matrix> {
    check_dims(rows, cols)?;
    if (buf.remaining() as u64) < 8 * (rows * cols) as u64 {
        return Err(decode_err("truncated matrix body"));
    }
    let mut m = Matrix::zeros(rows, cols);
    for x in m.as_mut_slice() {
        *x = buf.get_f64_le();
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_filter::models;

    fn state_msg() -> SyncMessage {
        SyncMessage::State {
            x: Vector::from_slice(&[1.5, -2.5]),
            p: Matrix::from_rows(&[&[1.0, 0.1], &[0.1, 2.0]]),
        }
    }

    #[test]
    fn state_roundtrip() {
        let msg = state_msg();
        let bytes = msg.encode();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(SyncMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn model_roundtrip() {
        let msg = SyncMessage::Model {
            model: models::constant_velocity(1.0, 0.01, 0.5),
            x: Vector::from_slice(&[1.0, 0.2]),
            p: Matrix::scalar(2, 0.3),
        };
        let bytes = msg.encode();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(SyncMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn model_roundtrip_non_triangular_f() {
        // A harmonic-oscillator style F has a non-zero sub-diagonal: the
        // triangle flag must stay clear and the full matrix must survive.
        let f = Matrix::from_rows(&[&[0.9, 0.4], &[-0.4, 0.9]]);
        let model = StateModel::new(
            "rotation",
            f,
            Matrix::scalar(2, 0.01),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::scalar(1, 0.1),
        )
        .unwrap();
        let msg = SyncMessage::Model {
            model,
            x: Vector::from_slice(&[1.0, 0.0]),
            p: Matrix::scalar(2, 1.0),
        };
        let bytes = msg.encode();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(SyncMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn measurement_roundtrip() {
        let msg = SyncMessage::Measurement {
            z: Vector::from_slice(&[3.25]),
        };
        let bytes = msg.encode();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(SyncMessage::decode(&bytes).unwrap(), msg);
        // Measurement messages are the smallest: tag + len + one f64.
        assert_eq!(bytes.len(), 1 + 4 + 8);
    }

    #[test]
    fn encode_into_appends_to_caller_buffer() {
        // The pooled-buffer kernel: successive messages append, lengths are
        // exact, and the concatenation splits back into the originals.
        let a = state_msg();
        let b = SyncMessage::Measurement {
            z: Vector::from_slice(&[7.0]),
        };
        let mut buf = BytesMut::with_capacity(a.encoded_len() + b.encoded_len());
        a.encode_into(&mut buf);
        assert_eq!(buf.len(), a.encoded_len());
        b.encode_into(&mut buf);
        assert_eq!(buf.len(), a.encoded_len() + b.encoded_len());
        assert_eq!(SyncMessage::decode(&buf[..a.encoded_len()]).unwrap(), a);
        assert_eq!(SyncMessage::decode(&buf[a.encoded_len()..]).unwrap(), b);
        // And the allocating spelling is the same bytes.
        assert_eq!(&a.encode()[..], &buf[..a.encoded_len()]);
    }

    #[test]
    fn encoded_len_exact_for_all_tags() {
        let msgs = [
            state_msg(),
            SyncMessage::Model {
                model: models::constant_velocity_2d(1.0, 0.05, 3.0),
                x: Vector::from_slice(&[1.0, 0.1, 2.0, -0.1]),
                p: Matrix::scalar(4, 0.5),
            },
            SyncMessage::Measurement {
                z: Vector::from_slice(&[1.0, 2.0]),
            },
        ];
        for msg in &msgs {
            let mut buf = BytesMut::new();
            msg.encode_into(&mut buf);
            assert_eq!(
                buf.len(),
                msg.encoded_len(),
                "encoded_len drift for {msg:?}"
            );
        }
    }

    #[test]
    fn triangle_packing_shrinks_covariances() {
        // 4-state state sync: P travels as 10 f64s instead of a 16-f64
        // matrix with an 8-byte header.
        let msg = SyncMessage::State {
            x: Vector::zeros(4),
            p: Matrix::scalar(4, 1.0),
        };
        assert_eq!(msg.encoded_len(), 1 + (4 + 32) + 80);
        assert_eq!(msg.encoded_len_unpacked(), 1 + (4 + 32) + (8 + 128));
        // Model sync on the scalar walk: ≥ 30% below the unpacked format.
        let model_msg = SyncMessage::Model {
            model: models::random_walk(0.1, 0.1),
            x: Vector::zeros(1),
            p: Matrix::scalar(1, 1.0),
        };
        let packed = model_msg.encoded_len() as f64;
        let unpacked = model_msg.encoded_len_unpacked() as f64;
        assert!(
            packed / unpacked < 0.7,
            "model sync only shrank to {:.0}% ({packed} / {unpacked})",
            100.0 * packed / unpacked
        );
    }

    #[test]
    fn asymmetric_lower_triangle_is_discarded_in_transit() {
        // The wire contract: symmetric slots carry the upper triangle; a
        // hand-built asymmetric P comes back mirrored.
        let msg = SyncMessage::State {
            x: Vector::from_slice(&[0.0, 0.0]),
            p: Matrix::from_rows(&[&[1.0, 0.5], &[999.0, 2.0]]),
        };
        match SyncMessage::decode(&msg.encode()).unwrap() {
            SyncMessage::State { p, .. } => {
                assert_eq!(p.get(1, 0), 0.5);
                assert_eq!(p.get(0, 1), 0.5);
            }
            other => panic!("expected State, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_tag() {
        assert!(matches!(
            SyncMessage::decode(&[99]),
            Err(CoreError::Decode { .. })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        for msg in [
            state_msg(),
            SyncMessage::Model {
                model: models::constant_velocity(1.0, 0.01, 0.5),
                x: Vector::from_slice(&[1.0, 0.2]),
                p: Matrix::scalar(2, 0.3),
            },
        ] {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    SyncMessage::decode(&bytes[..cut]).is_err(),
                    "prefix of {cut} bytes decoded successfully"
                );
            }
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = state_msg().encode().to_vec();
        bytes.push(0);
        assert!(matches!(
            SyncMessage::decode(&bytes),
            Err(CoreError::Decode { reason }) if reason.contains("trailing")
        ));
    }

    #[test]
    fn rejects_huge_length_prefix() {
        // Tag State + vector claiming u32::MAX elements.
        let mut buf = vec![TAG_STATE];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            SyncMessage::decode(&buf),
            Err(CoreError::Decode { reason }) if reason.contains("limit")
        ));
    }

    #[test]
    fn rejects_huge_symmetric_dim() {
        // A 1024-dim state would imply a 1024² covariance: over the element
        // limit, rejected before any allocation.
        let mut buf = vec![TAG_STATE];
        buf.extend_from_slice(&1024u32.to_le_bytes());
        buf.extend(std::iter::repeat_n(0u8, 8 * 1024));
        assert!(matches!(
            SyncMessage::decode(&buf),
            Err(CoreError::Decode { reason }) if reason.contains("limit")
        ));
    }

    #[test]
    fn rejects_reserved_flag_bits() {
        let msg = SyncMessage::Model {
            model: models::random_walk(0.1, 0.2),
            x: Vector::from_slice(&[0.0]),
            p: Matrix::scalar(1, 1.0),
        };
        let mut bytes = msg.encode().to_vec();
        // name "random_walk" is 11 bytes; flags live at 1 (tag) + 2 (len)
        // + 11 = offset 14.
        bytes[14] |= 0x80;
        assert!(matches!(
            SyncMessage::decode(&bytes),
            Err(CoreError::Decode { reason }) if reason.contains("flag")
        ));
    }

    #[test]
    fn rejects_inconsistent_model() {
        // Encode a model message, then corrupt the state dimension: every
        // body length downstream of the header stops matching.
        let msg = SyncMessage::Model {
            model: models::random_walk(0.1, 0.2),
            x: Vector::from_slice(&[0.0]),
            p: Matrix::scalar(1, 1.0),
        };
        let bytes = msg.encode().to_vec();
        // Layout: tag 1 + name_len 2 + name 11 + flags 1 → n:u16 at 15.
        let mut corrupt = bytes.clone();
        corrupt[15] = 2; // n := 2 — but the body is sized for n = 1.
        assert!(SyncMessage::decode(&corrupt).is_err());
    }

    #[test]
    fn state_message_size_scales_with_dim() {
        let small = SyncMessage::State {
            x: Vector::zeros(1),
            p: Matrix::scalar(1, 1.0),
        };
        let large = SyncMessage::State {
            x: Vector::zeros(4),
            p: Matrix::scalar(4, 1.0),
        };
        assert!(large.encoded_len() > small.encoded_len());
        // Scalar: tag + vec(x) + one-element triangle.
        assert_eq!(small.encoded_len(), 1 + (4 + 8) + 8);
    }

    #[test]
    fn sequenced_sync_roundtrip() {
        let wire = WireMessage::Sync {
            seq: Some(42),
            msg: state_msg(),
        };
        let bytes = wire.encode();
        assert_eq!(bytes.len(), wire.encoded_len());
        assert_eq!(bytes.len(), 9 + state_msg().encoded_len());
        assert_eq!(WireMessage::decode(&bytes).unwrap(), wire);
    }

    #[test]
    fn ack_roundtrip() {
        let wire = WireMessage::Ack { seq: u64::MAX };
        let bytes = wire.encode();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes.len(), wire.encoded_len());
        assert_eq!(WireMessage::decode(&bytes).unwrap(), wire);
    }

    #[test]
    fn bound_roundtrip() {
        let wire = WireMessage::Bound { delta: 0.25 };
        let bytes = wire.encode();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes.len(), wire.encoded_len());
        assert_eq!(WireMessage::decode(&bytes).unwrap(), wire);
    }

    #[test]
    fn bound_rejects_non_positive_and_non_finite_delta() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut bytes = vec![TAG_BOUND];
            bytes.extend_from_slice(&bad.to_le_bytes());
            assert!(
                WireMessage::decode(&bytes).is_err(),
                "delta {bad} decoded successfully"
            );
        }
    }

    #[test]
    fn bound_rejects_truncation_and_trailing_bytes() {
        let bytes = WireMessage::Bound { delta: 1.5 }.encode();
        for cut in 0..bytes.len() {
            assert!(
                WireMessage::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(WireMessage::decode(&long).is_err());
    }

    #[test]
    fn legacy_decoder_rejects_bound_tag() {
        // A v2-only peer must not misinterpret a bound directive.
        let bytes = WireMessage::Bound { delta: 1.0 }.encode();
        assert!(SyncMessage::decode(&bytes).is_err());
    }

    #[test]
    fn unsequenced_sync_encodes_exact_v2_bytes() {
        // `seq: None` must be bit-identical to the legacy encoding so that
        // recovery-off sessions produce byte-for-byte v2 traffic.
        let msg = state_msg();
        let wire = WireMessage::Sync {
            seq: None,
            msg: msg.clone(),
        };
        assert_eq!(wire.encode(), msg.encode());
        assert_eq!(wire.encoded_len(), msg.encoded_len());
    }

    #[test]
    fn legacy_v2_bytes_decode_as_unsequenced_sync() {
        let msg = state_msg();
        let decoded = WireMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, WireMessage::Sync { seq: None, msg });
    }

    #[test]
    fn legacy_decoder_rejects_v3_tags() {
        // A v2-only peer must not misinterpret sequenced traffic.
        let seq = WireMessage::Sync {
            seq: Some(7),
            msg: state_msg(),
        }
        .encode();
        assert!(SyncMessage::decode(&seq).is_err());
        let ack = WireMessage::Ack { seq: 7 }.encode();
        assert!(SyncMessage::decode(&ack).is_err());
    }

    #[test]
    fn wire_decode_rejects_truncation_at_every_prefix() {
        for wire in [
            WireMessage::Sync {
                seq: Some(9),
                msg: state_msg(),
            },
            WireMessage::Ack { seq: 9 },
        ] {
            let bytes = wire.encode();
            for cut in 0..bytes.len() {
                assert!(
                    WireMessage::decode(&bytes[..cut]).is_err(),
                    "prefix of {cut} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn wire_decode_rejects_trailing_bytes() {
        for wire in [
            WireMessage::Sync {
                seq: Some(3),
                msg: state_msg(),
            },
            WireMessage::Ack { seq: 3 },
        ] {
            let mut bytes = wire.encode().to_vec();
            bytes.push(0);
            assert!(WireMessage::decode(&bytes).is_err());
        }
    }

    #[test]
    fn wire_decode_rejects_unknown_tag() {
        assert!(WireMessage::decode(&[99, 0, 0, 0]).is_err());
        assert!(WireMessage::decode(&[]).is_err());
    }
}
