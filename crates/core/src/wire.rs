//! Binary wire format for sync messages.
//!
//! A hand-rolled little-endian codec rather than a serde format: the
//! sanctioned crate set has no serde *format* crate, and experiment T3
//! reports exact bytes-on-the-wire per policy, so the encoding must be
//! explicit and minimal. Layout (all integers little-endian):
//!
//! ```text
//! message   := tag:u8 body
//! tag       := 1 (State) | 2 (Model) | 3 (Measurement)
//! State     := vec(x) mat(P)
//! Model     := name_len:u16 name:utf8 mat(F) mat(Q) mat(H) mat(R) vec(x) mat(P)
//! Measurement := vec(z)
//! vec(v)    := len:u32 f64[len]
//! mat(M)    := rows:u32 cols:u32 f64[rows*cols]
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use kalstream_filter::StateModel;
use kalstream_linalg::{Matrix, Vector};

use crate::{CoreError, Result};

/// A protocol sync message.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // inline-storage matrices make variants big,
// but a message is built once per sync and immediately encoded — boxing would
// put an allocation back on that path for no win
pub enum SyncMessage {
    /// Corrected state and covariance; model unchanged.
    State {
        /// Corrected (pinned) state estimate.
        x: Vector,
        /// State covariance at the source.
        p: Matrix,
    },
    /// Model replacement plus corrected state — sent when the source's
    /// adaptive layer changed the model since the last sync.
    Model {
        /// The new model (including adapted `Q`/`R`).
        model: StateModel,
        /// Corrected (pinned) state estimate under the new model.
        x: Vector,
        /// State covariance under the new model.
        p: Matrix,
    },
    /// Raw measurement; the server runs a standard filter update
    /// ([`crate::ResyncPayload::MeasurementOnly`] mode).
    Measurement {
        /// The observation.
        z: Vector,
    },
}

const TAG_STATE: u8 = 1;
const TAG_MODEL: u8 = 2;
const TAG_MEASUREMENT: u8 = 3;

impl SyncMessage {
    /// Encodes to a freshly allocated wire buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        match self {
            SyncMessage::State { x, p } => {
                buf.put_u8(TAG_STATE);
                put_vec(&mut buf, x);
                put_mat(&mut buf, p);
            }
            SyncMessage::Model { model, x, p } => {
                buf.put_u8(TAG_MODEL);
                let name = model.name().as_bytes();
                buf.put_u16_le(name.len() as u16);
                buf.put_slice(name);
                put_mat(&mut buf, model.f());
                put_mat(&mut buf, model.q());
                put_mat(&mut buf, model.h());
                put_mat(&mut buf, model.r());
                put_vec(&mut buf, x);
                put_mat(&mut buf, p);
            }
            SyncMessage::Measurement { z } => {
                buf.put_u8(TAG_MEASUREMENT);
                put_vec(&mut buf, z);
            }
        }
        buf.freeze()
    }

    /// Exact encoded size in bytes, used to pre-size buffers and by
    /// experiment T3's byte accounting.
    pub fn encoded_len(&self) -> usize {
        match self {
            SyncMessage::State { x, p } => 1 + vec_len(x) + mat_len(p),
            SyncMessage::Model { model, x, p } => {
                1 + 2
                    + model.name().len()
                    + mat_len(model.f())
                    + mat_len(model.q())
                    + mat_len(model.h())
                    + mat_len(model.r())
                    + vec_len(x)
                    + mat_len(p)
            }
            SyncMessage::Measurement { z } => 1 + vec_len(z),
        }
    }

    /// Decodes a wire buffer.
    ///
    /// # Errors
    /// [`CoreError::Decode`] on truncation, unknown tags, bad UTF-8, or an
    /// inconsistent embedded model.
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        let tag = get_u8(&mut buf)?;
        let msg = match tag {
            TAG_STATE => {
                let x = get_vec(&mut buf)?;
                let p = get_mat(&mut buf)?;
                SyncMessage::State { x, p }
            }
            TAG_MODEL => {
                let name_len = get_u16(&mut buf)? as usize;
                if buf.remaining() < name_len {
                    return Err(decode_err("truncated model name"));
                }
                let name = std::str::from_utf8(&buf[..name_len])
                    .map_err(|e| decode_err(&format!("model name not utf-8: {e}")))?
                    .to_string();
                buf.advance(name_len);
                let f = get_mat(&mut buf)?;
                let q = get_mat(&mut buf)?;
                let h = get_mat(&mut buf)?;
                let r = get_mat(&mut buf)?;
                let model = StateModel::new(name, f, q, h, r)
                    .map_err(|e| decode_err(&format!("inconsistent model: {e}")))?;
                let x = get_vec(&mut buf)?;
                let p = get_mat(&mut buf)?;
                SyncMessage::Model { model, x, p }
            }
            TAG_MEASUREMENT => SyncMessage::Measurement { z: get_vec(&mut buf)? },
            other => return Err(decode_err(&format!("unknown tag {other}"))),
        };
        if buf.has_remaining() {
            return Err(decode_err(&format!("{} trailing bytes", buf.remaining())));
        }
        Ok(msg)
    }
}

fn decode_err(reason: &str) -> CoreError {
    CoreError::Decode { reason: reason.to_string() }
}

fn vec_len(v: &Vector) -> usize {
    4 + 8 * v.dim()
}

fn mat_len(m: &Matrix) -> usize {
    8 + 8 * m.rows() * m.cols()
}

fn put_vec(buf: &mut BytesMut, v: &Vector) {
    buf.put_u32_le(v.dim() as u32);
    for &x in v.iter() {
        buf.put_f64_le(x);
    }
}

fn put_mat(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &x in m.as_slice() {
        buf.put_f64_le(x);
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(decode_err("truncated tag"));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(decode_err("truncated u16"));
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(decode_err("truncated u32"));
    }
    Ok(buf.get_u32_le())
}

/// Guard against adversarial length prefixes: no legitimate message in this
/// system has vectors/matrices beyond a few dozen elements.
const MAX_ELEMS: u64 = 1 << 16;

fn get_vec(buf: &mut &[u8]) -> Result<Vector> {
    let n = get_u32(buf)? as u64;
    if n > MAX_ELEMS {
        return Err(decode_err(&format!("vector length {n} exceeds limit")));
    }
    if (buf.remaining() as u64) < 8 * n {
        return Err(decode_err("truncated vector body"));
    }
    let mut data = Vec::with_capacity(n as usize);
    for _ in 0..n {
        data.push(buf.get_f64_le());
    }
    Ok(Vector::from_vec(data))
}

fn get_mat(buf: &mut &[u8]) -> Result<Matrix> {
    let rows = get_u32(buf)? as u64;
    let cols = get_u32(buf)? as u64;
    if rows * cols > MAX_ELEMS {
        return Err(decode_err(&format!("matrix {rows}x{cols} exceeds limit")));
    }
    if (buf.remaining() as u64) < 8 * rows * cols {
        return Err(decode_err("truncated matrix body"));
    }
    let mut data = Vec::with_capacity((rows * cols) as usize);
    for _ in 0..rows * cols {
        data.push(buf.get_f64_le());
    }
    Ok(Matrix::from_row_major(rows as usize, cols as usize, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_filter::models;

    fn state_msg() -> SyncMessage {
        SyncMessage::State {
            x: Vector::from_slice(&[1.5, -2.5]),
            p: Matrix::from_rows(&[&[1.0, 0.1], &[0.1, 2.0]]),
        }
    }

    #[test]
    fn state_roundtrip() {
        let msg = state_msg();
        let bytes = msg.encode();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(SyncMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn model_roundtrip() {
        let msg = SyncMessage::Model {
            model: models::constant_velocity(1.0, 0.01, 0.5),
            x: Vector::from_slice(&[1.0, 0.2]),
            p: Matrix::scalar(2, 0.3),
        };
        let bytes = msg.encode();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(SyncMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn measurement_roundtrip() {
        let msg = SyncMessage::Measurement { z: Vector::from_slice(&[3.25]) };
        let bytes = msg.encode();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(SyncMessage::decode(&bytes).unwrap(), msg);
        // Measurement messages are the smallest: tag + len + one f64.
        assert_eq!(bytes.len(), 1 + 4 + 8);
    }

    #[test]
    fn rejects_unknown_tag() {
        assert!(matches!(
            SyncMessage::decode(&[99]),
            Err(CoreError::Decode { .. })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let bytes = state_msg().encode();
        for cut in 0..bytes.len() {
            assert!(
                SyncMessage::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = state_msg().encode().to_vec();
        bytes.push(0);
        assert!(matches!(
            SyncMessage::decode(&bytes),
            Err(CoreError::Decode { reason }) if reason.contains("trailing")
        ));
    }

    #[test]
    fn rejects_huge_length_prefix() {
        // Tag State + vector claiming u32::MAX elements.
        let mut buf = vec![TAG_STATE];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            SyncMessage::decode(&buf),
            Err(CoreError::Decode { reason }) if reason.contains("limit")
        ));
    }

    #[test]
    fn rejects_inconsistent_model() {
        // Encode a model message, then corrupt Q's dimensions.
        let msg = SyncMessage::Model {
            model: models::random_walk(0.1, 0.2),
            x: Vector::from_slice(&[0.0]),
            p: Matrix::scalar(1, 1.0),
        };
        let bytes = msg.encode().to_vec();
        // name "random_walk" is 11 bytes; F matrix header starts at
        // 1 (tag) + 2 (len) + 11 = 14; Q header at 14 + 8 + 8 = 30.
        let mut corrupt = bytes.clone();
        corrupt[30] = 2; // Q rows := 2 — but then body is too short.
        assert!(SyncMessage::decode(&corrupt).is_err());
    }

    #[test]
    fn state_message_size_scales_with_dim() {
        let small = SyncMessage::State {
            x: Vector::zeros(1),
            p: Matrix::scalar(1, 1.0),
        };
        let large = SyncMessage::State {
            x: Vector::zeros(4),
            p: Matrix::scalar(4, 1.0),
        };
        assert!(large.encoded_len() > small.encoded_len());
        assert_eq!(small.encoded_len(), 1 + (4 + 8) + (8 + 8));
    }
}
