//! The server endpoint: prediction-based query answering.

use bytes::Bytes;
use kalstream_filter::{CovarianceUpdate, FilterError, KalmanFilter, StateModel};
use kalstream_linalg::{Matrix, Vector};
use kalstream_obs::{Counter, Instrument, Scope};
use kalstream_sim::{Consumer, DeliveryStats, Tick};

use crate::wire::{SyncMessage, WireMessage};

/// Cap on queued-but-unapplied syncs. In every supported driver the queue
/// drains once per tick, so depth beyond a handful means `receive` is
/// outpacing `estimate` (a stalled or missing drain); shedding the oldest
/// entries bounds memory and — under full-state sync semantics — loses
/// nothing once a newer sync lands.
const PENDING_CAP: usize = 256;

/// The server side of the suppression protocol.
///
/// Holds the cached *dynamic procedure* — a Kalman filter — and serves the
/// stream's current value from its prediction. Between sync messages it
/// advances the filter one predict step per tick; sync messages overwrite
/// state (and possibly the model). This is the paper's "caching dynamic
/// procedures that can predict data reliably at the server without the
/// clients' involvement".
#[derive(Debug, Clone)]
pub struct ServerEndpoint {
    filter: KalmanFilter,
    /// Messages delivered this tick, applied inside [`Consumer::estimate`]
    /// *after* the predict step so server and shadow stay in lock-step.
    pending: Vec<SyncMessage>,
    syncs_applied: Counter,
    decode_failures: Counter,
    predict_failures: Counter,
    /// Highest sequence number accepted (0 before the first sequenced sync).
    last_seq: u64,
    /// Set when a sequenced message arrives; cleared when the ack is polled.
    ack_due: bool,
    /// A precision bound queued for the source, set by the query/allocation
    /// layer via [`ServerEndpoint::push_bound_directive`]. Last writer wins
    /// (a newer directive subsumes an unsent older one); cleared when
    /// polled onto the feedback link.
    bound_due: Option<f64>,
    /// Bound directives actually polled onto the feedback link.
    bounds_sent: Counter,
    delivery: DeliveryStats,
}

impl ServerEndpoint {
    /// Creates the server side from its initial filter (identical to the
    /// source's shadow — [`crate::StreamSession`] guarantees the pairing).
    pub(crate) fn new(filter: KalmanFilter) -> Self {
        ServerEndpoint {
            filter,
            pending: Vec::new(),
            syncs_applied: Counter::new(),
            decode_failures: Counter::new(),
            predict_failures: Counter::new(),
            last_seq: 0,
            ack_due: false,
            bound_due: None,
            bounds_sent: Counter::new(),
            delivery: DeliveryStats::default(),
        }
    }

    /// The cached filter (for query answering beyond plain values:
    /// covariance, staleness, forecasts).
    pub fn filter(&self) -> &KalmanFilter {
        &self.filter
    }

    /// Sync messages successfully applied.
    pub fn syncs_applied(&self) -> u64 {
        self.syncs_applied.get()
    }

    /// Wire messages that failed to decode (dropped, counted).
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures.get()
    }

    /// Ticks on which the predict step failed numerically (estimate then
    /// reuses the previous state).
    pub fn predict_failures(&self) -> u64 {
        self.predict_failures.get()
    }

    /// Ticks since the server last heard from the source — the "cache age"
    /// that experiment F10 profiles.
    pub fn staleness(&self) -> u64 {
        self.filter.steps_since_update()
    }

    /// Predictive variance of the served value (first measurement
    /// component): the innovation covariance `S = H P Hᵀ + R` of the cached
    /// filter, which grows with staleness as suppressed ticks accumulate
    /// process noise. This is the per-stream uncertainty the query graph
    /// propagates into distributional answers.
    pub fn served_variance(&self) -> f64 {
        self.filter.predicted_measurement_cov().get(0, 0)
    }

    /// Applies one decoded sync message immediately (test/query-layer hook;
    /// the simulator path goes through [`Consumer::receive`], the ingest
    /// path through [`ServerEndpoint::enqueue`]).
    pub fn apply(&mut self, msg: SyncMessage) {
        if apply_to_filter(&mut self.filter, msg) {
            self.syncs_applied += 1;
        }
    }

    /// Queues one decoded sync message for the next [`ServerEndpoint::advance`].
    /// At the cap the **oldest** queued sync is shed (and counted): under
    /// full-state semantics a newer sync subsumes older ones, so dropping
    /// from the front preserves the freshest state.
    pub fn enqueue(&mut self, msg: SyncMessage) {
        if self.pending.len() >= PENDING_CAP {
            self.pending.remove(0);
            self.delivery.shed += 1;
        }
        self.pending.push(msg);
    }

    /// Queues one decoded v3 wire message, running sequence bookkeeping —
    /// the loss-tolerant entry point for both the simulator path
    /// ([`Consumer::receive`]) and the ingest pipeline.
    ///
    /// A sequenced sync at or below the highest sequence already accepted is
    /// **stale** (a duplicate, or delivered after a newer overwrite) and is
    /// dropped deterministically and counted; arrival discontinuities are
    /// counted as gaps (messages lost *or* still in flight behind a newer
    /// one). Every sequenced arrival — stale included — re-arms the ack, so
    /// a lost ack is healed by the next arrival of anything.
    pub fn enqueue_wire(&mut self, msg: WireMessage) {
        match msg {
            WireMessage::Sync { seq: None, msg } => self.enqueue(msg),
            WireMessage::Sync {
                seq: Some(seq),
                msg,
            } => {
                self.ack_due = true;
                if seq <= self.last_seq {
                    self.delivery.stale_drops += 1;
                } else {
                    self.delivery.seq_gaps += seq - self.last_seq - 1;
                    self.last_seq = seq;
                    self.enqueue(msg);
                }
            }
            // An ack or bound directive on the forward channel is a protocol
            // violation by the peer; drop and count like any unusable message.
            WireMessage::Ack { .. } | WireMessage::Bound { .. } => self.decode_failures += 1,
        }
    }

    /// Highest sequence number accepted (0 before the first sequenced sync).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Receiver-side delivery accounting (stale drops, gaps, shed).
    pub fn delivery(&self) -> DeliveryStats {
        self.delivery
    }

    /// Syncs currently queued for the next advance.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Queues a precision-bound directive for the paired source; it rides
    /// the next [`Consumer::poll_feedback`] as a [`WireMessage::Bound`].
    ///
    /// This is the hook the query runtime's precision propagation and the
    /// epoch budget allocator use to steer producers from the consumer side.
    /// Non-finite or non-positive bounds are ignored (the wire format would
    /// reject them anyway); a newer directive replaces an unsent older one,
    /// since only the latest bound is binding.
    pub fn push_bound_directive(&mut self, delta: f64) {
        if delta.is_finite() && delta > 0.0 {
            self.bound_due = Some(delta);
        }
    }

    /// Bound directives actually sent over the feedback link.
    pub fn bounds_sent(&self) -> u64 {
        self.bounds_sent.get()
    }

    /// Pops the oldest queued sync, if any — the batch ingest engine drains
    /// pending through this (front-to-back, like [`ServerEndpoint::advance`])
    /// while applying syncs to a fleet-batch lane instead of the endpoint's
    /// own filter. `Vec::remove(0)` keeps the buffer's capacity, and the
    /// queue is a handful of messages at most (see [`PENDING_CAP`]).
    pub(crate) fn pop_pending(&mut self) -> Option<SyncMessage> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.pending.remove(0))
        }
    }

    /// Counts one applied sync — the batch engine's twin of the bookkeeping
    /// inside [`ServerEndpoint::advance`].
    pub(crate) fn note_sync_applied(&mut self) {
        self.syncs_applied += 1;
    }

    /// Counts one failed predict step — the batch engine's twin of the
    /// bookkeeping inside [`ServerEndpoint::advance`].
    pub(crate) fn note_predict_failure(&mut self) {
        self.predict_failures += 1;
    }

    /// Mutable filter access for the batch engine's lane handoffs (restoring
    /// a demoted lane's state, installing a model-sync replacement filter).
    pub(crate) fn filter_mut(&mut self) -> &mut KalmanFilter {
        &mut self.filter
    }

    /// Captures the complete protocol state of this endpoint as a plain
    /// value — the unit the durability layer snapshots. Everything that
    /// influences future behaviour is included: the filter triplet (model,
    /// state, covariance) **and** its staleness/covariance-update mode, the
    /// undrained pending queue, the seq/ack tracker, the queued bound
    /// directive, and every counter. [`ServerEndpoint::from_state`] must
    /// rebuild an endpoint that is bit-identical going forward.
    pub fn state(&self) -> EndpointState {
        EndpointState {
            model: self.filter.model().clone(),
            x: self.filter.state().clone(),
            p: self.filter.covariance().clone(),
            steps_since_update: self.filter.steps_since_update(),
            cov_update: self.filter.covariance_update(),
            pending: self.pending.clone(),
            syncs_applied: self.syncs_applied.get(),
            decode_failures: self.decode_failures.get(),
            predict_failures: self.predict_failures.get(),
            last_seq: self.last_seq,
            ack_due: self.ack_due,
            bound_due: self.bound_due,
            bounds_sent: self.bounds_sent.get(),
            delivery: self.delivery,
        }
    }

    /// Rebuilds an endpoint from a captured [`EndpointState`] — the
    /// recovery half of the snapshot roundtrip. The filter is reconstructed
    /// through [`KalmanFilter::with_covariance`] + [`KalmanFilter::restore`],
    /// both of which store `x`/`p` verbatim, so a
    /// `state()` → `from_state()` roundtrip preserves every f64 bit.
    ///
    /// # Errors
    /// Propagates [`FilterError`] when the state's shapes are inconsistent
    /// (possible only for a corrupted or hand-built state).
    pub fn from_state(state: EndpointState) -> Result<Self, FilterError> {
        let EndpointState {
            model,
            x,
            p,
            steps_since_update,
            cov_update,
            pending,
            syncs_applied,
            decode_failures,
            predict_failures,
            last_seq,
            ack_due,
            bound_due,
            bounds_sent,
            delivery,
        } = state;
        let mut filter = KalmanFilter::with_covariance(model, x.clone(), p.clone())?;
        filter.set_covariance_update(cov_update);
        filter.restore(x, p, steps_since_update)?;
        Ok(ServerEndpoint {
            filter,
            pending,
            syncs_applied: Counter::from(syncs_applied),
            decode_failures: Counter::from(decode_failures),
            predict_failures: Counter::from(predict_failures),
            last_seq,
            ack_due,
            bound_due,
            bounds_sent: Counter::from(bounds_sent),
            delivery,
        })
    }

    /// Advances one tick: predict, then apply every queued sync — exactly
    /// [`Consumer::estimate`]'s transition without serving a value. Shard
    /// workers call this once per endpoint per tick; because the order is
    /// identical to the simulator path, ingest stays bit-compatible with it.
    pub fn advance(&mut self) {
        if self.filter.predict().is_err() {
            self.predict_failures += 1;
        }
        // Drain in place so `pending` keeps its capacity (steady-state
        // ingest ticks must not allocate).
        for msg in self.pending.drain(..) {
            if apply_to_filter(&mut self.filter, msg) {
                self.syncs_applied += 1;
            }
        }
    }
}

/// The complete externalised state of one [`ServerEndpoint`] — the value a
/// durability snapshot records and crash recovery replays from. Fields are
/// public: the encoding lives in `kalstream-durable`, outside this crate,
/// and the struct itself is the compatibility contract between them.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointState {
    /// The cached model (including adapted `Q`/`R`).
    pub model: StateModel,
    /// State estimate at the snapshot barrier.
    pub x: Vector,
    /// Estimate covariance at the snapshot barrier.
    pub p: Matrix,
    /// Predict steps since the last measurement update (cache age).
    pub steps_since_update: u64,
    /// Covariance update mode (Joseph vs. simple form — changes bits).
    pub cov_update: CovarianceUpdate,
    /// Delivered-but-unapplied syncs (mid-tick queue; empty at a barrier
    /// taken after `advance`, but captured anyway so the snapshot point is
    /// not restricted to post-advance instants).
    pub pending: Vec<SyncMessage>,
    /// Sync messages successfully applied.
    pub syncs_applied: u64,
    /// Wire messages that failed to decode.
    pub decode_failures: u64,
    /// Ticks on which the predict step failed numerically.
    pub predict_failures: u64,
    /// Highest sequence number accepted.
    pub last_seq: u64,
    /// Whether an ack is armed but not yet polled.
    pub ack_due: bool,
    /// A queued-but-unsent precision bound directive.
    pub bound_due: Option<f64>,
    /// Bound directives sent over the feedback link.
    pub bounds_sent: u64,
    /// Receiver-side delivery accounting (stale drops, gaps, shed).
    pub delivery: DeliveryStats,
}

/// Applies a sync to a filter, returning whether it was accepted. Free
/// function (not a method) so [`ServerEndpoint::advance`] can drain
/// `pending` while mutating the filter — disjoint field borrows.
fn apply_to_filter(filter: &mut KalmanFilter, msg: SyncMessage) -> bool {
    match msg {
        SyncMessage::State { x, p } => filter.set_state(x, p).is_ok(),
        SyncMessage::Model { model, x, p } => match KalmanFilter::with_covariance(model, x, p) {
            Ok(kf) => {
                *filter = kf;
                true
            }
            Err(_) => false,
        },
        SyncMessage::Measurement { z } => filter.update(&z).is_ok(),
    }
}

impl Consumer for ServerEndpoint {
    fn dim(&self) -> usize {
        self.filter.model().measurement_dim()
    }

    fn receive(&mut self, _now: Tick, payload: &Bytes) {
        match WireMessage::decode(payload) {
            Ok(msg) => self.enqueue_wire(msg),
            Err(_) => self.decode_failures += 1,
        }
    }

    fn estimate(&mut self, _now: Tick, out: &mut [f64]) {
        // Predict first, then apply corrections — the exact order the
        // source's shadow uses, which is what makes the two bit-identical.
        self.advance();
        let z_hat = self.filter.predicted_measurement();
        out[..z_hat.dim()].copy_from_slice(z_hat.as_slice());
    }

    fn poll_feedback(&mut self, _now: Tick) -> Option<Bytes> {
        // One feedback payload per tick. Acks win ties (a starved ack
        // forces a spurious resync; a bound delayed one tick costs at most
        // one message) — the bound stays queued for the next poll.
        if self.ack_due {
            self.ack_due = false;
            Some(WireMessage::Ack { seq: self.last_seq }.encode())
        } else if let Some(delta) = self.bound_due.take() {
            self.bounds_sent += 1;
            Some(WireMessage::Bound { delta }.encode())
        } else {
            None
        }
    }

    fn delivery_stats(&self) -> DeliveryStats {
        self.delivery
    }

    fn served_variance(&self) -> Option<f64> {
        Some(self.served_variance())
    }
}

impl Instrument for ServerEndpoint {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("syncs_applied", self.syncs_applied);
        scope.counter("decode_failures", self.decode_failures);
        scope.counter("predict_failures", self.predict_failures);
        scope.counter("bounds_sent", self.bounds_sent);
        scope.counter("last_seq", self.last_seq);
        scope.counter("staleness", self.staleness());
        scope.observe("delivery", &self.delivery);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_filter::models;
    use kalstream_linalg::{Matrix, Vector};

    fn server() -> ServerEndpoint {
        let model = models::random_walk(0.01, 0.01);
        ServerEndpoint::new(KalmanFilter::new(model, Vector::zeros(1), 1.0).unwrap())
    }

    #[test]
    fn estimate_predicts_without_messages() {
        let mut s = server();
        let mut out = [0.0];
        s.estimate(0, &mut out);
        assert_eq!(out[0], 0.0); // random walk prediction keeps the level
        assert_eq!(s.staleness(), 1);
        s.estimate(1, &mut out);
        assert_eq!(s.staleness(), 2);
    }

    #[test]
    fn state_sync_overwrites_estimate() {
        let mut s = server();
        let msg = SyncMessage::State {
            x: Vector::from_slice(&[5.0]),
            p: Matrix::scalar(1, 0.5),
        };
        s.receive(3, &msg.encode());
        let mut out = [0.0];
        s.estimate(3, &mut out);
        assert_eq!(out[0], 5.0);
        assert_eq!(s.syncs_applied(), 1);
        assert_eq!(s.staleness(), 0);
    }

    #[test]
    fn model_sync_replaces_filter() {
        let mut s = server();
        let msg = SyncMessage::Model {
            model: models::constant_velocity(1.0, 0.01, 0.1),
            x: Vector::from_slice(&[2.0, 0.5]),
            p: Matrix::scalar(2, 1.0),
        };
        s.receive(0, &msg.encode());
        let mut out = [0.0];
        s.estimate(0, &mut out);
        assert_eq!(out[0], 2.0);
        assert_eq!(s.filter().model().name(), "constant_velocity");
        // Next tick the CV model extrapolates: 2.0 + 0.5.
        s.estimate(1, &mut out);
        assert!((out[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn measurement_sync_runs_an_update() {
        let mut s = server();
        let msg = SyncMessage::Measurement {
            z: Vector::from_slice(&[4.0]),
        };
        s.receive(0, &msg.encode());
        let mut out = [0.0];
        s.estimate(0, &mut out);
        // A KF update moves toward the measurement but not (necessarily)
        // onto it.
        assert!(out[0] > 2.0 && out[0] <= 4.0, "estimate {}", out[0]);
    }

    #[test]
    fn garbage_messages_are_counted_not_fatal() {
        let mut s = server();
        s.receive(0, &Bytes::from_static(b"\xFFgarbage"));
        assert_eq!(s.decode_failures(), 1);
        let mut out = [0.0];
        s.estimate(0, &mut out); // still serves
        assert_eq!(s.syncs_applied(), 0);
    }

    #[test]
    fn mismatched_state_sync_is_dropped() {
        let mut s = server();
        // 2-dimensional state for a 1-dimensional model: dropped.
        let msg = SyncMessage::State {
            x: Vector::zeros(2),
            p: Matrix::scalar(2, 1.0),
        };
        s.apply(msg);
        assert_eq!(s.syncs_applied(), 0);
    }

    fn state(v: f64) -> SyncMessage {
        SyncMessage::State {
            x: Vector::from_slice(&[v]),
            p: Matrix::scalar(1, 0.5),
        }
    }

    fn seq_sync(seq: u64, v: f64) -> WireMessage {
        WireMessage::Sync {
            seq: Some(seq),
            msg: state(v),
        }
    }

    #[test]
    fn stale_and_duplicate_sequences_are_dropped_deterministically() {
        let mut s = server();
        s.enqueue_wire(seq_sync(1, 1.0));
        s.enqueue_wire(seq_sync(2, 2.0));
        s.enqueue_wire(seq_sync(2, 9.0)); // duplicate
        s.enqueue_wire(seq_sync(1, 9.0)); // reordered stale
        assert_eq!(s.delivery().stale_drops, 2);
        assert_eq!(s.last_seq(), 2);
        let mut out = [0.0];
        s.estimate(0, &mut out);
        assert_eq!(out[0], 2.0); // stale 9.0s never applied
        assert_eq!(s.syncs_applied(), 2);
    }

    #[test]
    fn sequence_gaps_are_counted() {
        let mut s = server();
        s.enqueue_wire(seq_sync(1, 1.0));
        s.enqueue_wire(seq_sync(5, 5.0)); // 2, 3, 4 missing
        assert_eq!(s.delivery().seq_gaps, 3);
        assert_eq!(s.last_seq(), 5);
    }

    #[test]
    fn every_sequenced_arrival_rearms_the_ack() {
        let mut s = server();
        assert_eq!(s.poll_feedback(0), None);
        s.enqueue_wire(seq_sync(1, 1.0));
        let ack = s.poll_feedback(0).expect("ack due");
        assert_eq!(
            WireMessage::decode(&ack).unwrap(),
            WireMessage::Ack { seq: 1 }
        );
        assert_eq!(s.poll_feedback(0), None, "ack is polled once");
        // A stale duplicate still re-arms: this is what heals a lost ack.
        s.enqueue_wire(seq_sync(1, 1.0));
        let ack = s.poll_feedback(1).expect("re-armed");
        assert_eq!(
            WireMessage::decode(&ack).unwrap(),
            WireMessage::Ack { seq: 1 }
        );
    }

    #[test]
    fn unsequenced_traffic_generates_no_acks() {
        let mut s = server();
        s.receive(0, &state(1.0).encode());
        assert_eq!(s.poll_feedback(0), None);
        assert_eq!(s.delivery(), DeliveryStats::default());
    }

    #[test]
    fn ack_on_forward_channel_is_counted_as_failure() {
        let mut s = server();
        s.enqueue_wire(WireMessage::Ack { seq: 3 });
        assert_eq!(s.decode_failures(), 1);
        assert_eq!(s.last_seq(), 0);
    }

    #[test]
    fn pending_queue_is_capped_with_drop_oldest() {
        // Pre-fix regression: `receive` without `estimate` grew `pending`
        // without bound.
        let mut s = server();
        for i in 0..(PENDING_CAP + 10) {
            s.receive(0, &state(i as f64).encode());
        }
        assert_eq!(s.pending_len(), PENDING_CAP);
        assert_eq!(s.delivery().shed, 10);
        let mut out = [0.0];
        s.estimate(0, &mut out);
        // The newest sync survives the shedding.
        assert_eq!(out[0], (PENDING_CAP + 9) as f64);
    }

    #[test]
    fn sequenced_sync_applies_via_receive_wire_bytes() {
        let mut s = server();
        s.receive(0, &seq_sync(1, 7.5).encode());
        let mut out = [0.0];
        s.estimate(0, &mut out);
        assert_eq!(out[0], 7.5);
        assert_eq!(s.last_seq(), 1);
    }

    #[test]
    fn bound_directive_rides_the_feedback_poll() {
        let mut s = server();
        assert_eq!(s.poll_feedback(0), None);
        s.push_bound_directive(0.25);
        let payload = s.poll_feedback(0).expect("bound due");
        assert_eq!(
            WireMessage::decode(&payload).unwrap(),
            WireMessage::Bound { delta: 0.25 }
        );
        assert_eq!(s.bounds_sent(), 1);
        assert_eq!(s.poll_feedback(1), None, "directive is polled once");
    }

    #[test]
    fn newer_bound_directive_replaces_unsent_older_one() {
        let mut s = server();
        s.push_bound_directive(0.5);
        s.push_bound_directive(0.125); // only the latest bound is binding
        let payload = s.poll_feedback(0).expect("bound due");
        assert_eq!(
            WireMessage::decode(&payload).unwrap(),
            WireMessage::Bound { delta: 0.125 }
        );
        assert_eq!(s.bounds_sent(), 1);
        assert_eq!(s.poll_feedback(1), None);
    }

    #[test]
    fn ack_wins_the_feedback_tie_and_bound_follows() {
        let mut s = server();
        s.enqueue_wire(seq_sync(1, 1.0));
        s.push_bound_directive(0.75);
        let first = s.poll_feedback(0).expect("ack due");
        assert_eq!(
            WireMessage::decode(&first).unwrap(),
            WireMessage::Ack { seq: 1 }
        );
        let second = s.poll_feedback(1).expect("bound still queued");
        assert_eq!(
            WireMessage::decode(&second).unwrap(),
            WireMessage::Bound { delta: 0.75 }
        );
    }

    #[test]
    fn invalid_bound_directives_are_ignored() {
        let mut s = server();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            s.push_bound_directive(bad);
        }
        assert_eq!(s.poll_feedback(0), None);
        assert_eq!(s.bounds_sent(), 0);
    }

    #[test]
    fn bound_on_forward_channel_is_counted_as_failure() {
        let mut s = server();
        s.enqueue_wire(WireMessage::Bound { delta: 0.5 });
        assert_eq!(s.decode_failures(), 1);
    }

    /// Bit-level fingerprint of a filter (state + covariance), the currency
    /// of every identity assertion in this repo.
    fn bits(f: &KalmanFilter) -> (Vec<u64>, Vec<u64>) {
        (
            f.state().as_slice().iter().map(|v| v.to_bits()).collect(),
            f.covariance()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
        )
    }

    #[test]
    fn state_roundtrip_is_bit_identical_and_behaviourally_equivalent() {
        // Drive an endpoint through every kind of protocol traffic so the
        // captured state has non-trivial values in every field...
        let mut s = server();
        let mut out = [0.0];
        s.enqueue_wire(seq_sync(1, 1.0));
        s.enqueue_wire(seq_sync(4, 2.5)); // gap of 2
        s.estimate(0, &mut out);
        s.enqueue_wire(seq_sync(4, 9.0)); // stale duplicate, re-arms ack
        s.push_bound_directive(0.25);
        s.receive(1, &Bytes::from_static(b"\xFFgarbage"));
        s.enqueue(state(7.0)); // left pending: mid-tick snapshot point

        // ...then roundtrip and compare the frozen state.
        let snap = s.state();
        let mut r = ServerEndpoint::from_state(snap.clone()).expect("rebuild");
        assert_eq!(bits(s.filter()), bits(r.filter()));
        assert_eq!(r.state(), snap, "re-capture reproduces the snapshot");

        // The two must stay bit-identical through future traffic: advance,
        // drain pending, poll feedback.
        for tick in 2..6 {
            s.enqueue_wire(seq_sync(5 + tick, tick as f64));
            r.enqueue_wire(seq_sync(5 + tick, tick as f64));
            s.estimate(tick, &mut out);
            let mut out_r = [0.0];
            r.estimate(tick, &mut out_r);
            assert_eq!(out[0].to_bits(), out_r[0].to_bits());
            assert_eq!(s.poll_feedback(tick), r.poll_feedback(tick));
        }
        assert_eq!(bits(s.filter()), bits(r.filter()));
        assert_eq!(s.delivery(), r.delivery());
        assert_eq!(s.syncs_applied(), r.syncs_applied());
        assert_eq!(s.decode_failures(), r.decode_failures());
        assert_eq!(s.last_seq(), r.last_seq());
        assert_eq!(s.staleness(), r.staleness());
    }
}
