//! The server endpoint: prediction-based query answering.

use bytes::Bytes;
use kalstream_filter::KalmanFilter;
use kalstream_sim::{Consumer, Tick};

use crate::wire::SyncMessage;

/// The server side of the suppression protocol.
///
/// Holds the cached *dynamic procedure* — a Kalman filter — and serves the
/// stream's current value from its prediction. Between sync messages it
/// advances the filter one predict step per tick; sync messages overwrite
/// state (and possibly the model). This is the paper's "caching dynamic
/// procedures that can predict data reliably at the server without the
/// clients' involvement".
#[derive(Debug, Clone)]
pub struct ServerEndpoint {
    filter: KalmanFilter,
    /// Messages delivered this tick, applied inside [`Consumer::estimate`]
    /// *after* the predict step so server and shadow stay in lock-step.
    pending: Vec<SyncMessage>,
    syncs_applied: u64,
    decode_failures: u64,
    predict_failures: u64,
}

impl ServerEndpoint {
    /// Creates the server side from its initial filter (identical to the
    /// source's shadow — [`crate::StreamSession`] guarantees the pairing).
    pub(crate) fn new(filter: KalmanFilter) -> Self {
        ServerEndpoint {
            filter,
            pending: Vec::new(),
            syncs_applied: 0,
            decode_failures: 0,
            predict_failures: 0,
        }
    }

    /// The cached filter (for query answering beyond plain values:
    /// covariance, staleness, forecasts).
    pub fn filter(&self) -> &KalmanFilter {
        &self.filter
    }

    /// Sync messages successfully applied.
    pub fn syncs_applied(&self) -> u64 {
        self.syncs_applied
    }

    /// Wire messages that failed to decode (dropped, counted).
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures
    }

    /// Ticks on which the predict step failed numerically (estimate then
    /// reuses the previous state).
    pub fn predict_failures(&self) -> u64 {
        self.predict_failures
    }

    /// Ticks since the server last heard from the source — the "cache age"
    /// that experiment F10 profiles.
    pub fn staleness(&self) -> u64 {
        self.filter.steps_since_update()
    }

    /// Applies one decoded sync message immediately (test/query-layer hook;
    /// the simulator path goes through [`Consumer::receive`], the ingest
    /// path through [`ServerEndpoint::enqueue`]).
    pub fn apply(&mut self, msg: SyncMessage) {
        if apply_to_filter(&mut self.filter, msg) {
            self.syncs_applied += 1;
        }
    }

    /// Queues one decoded sync message for the next [`ServerEndpoint::advance`]
    /// — the ingest pipeline's entry point, where the frame layer has
    /// already decoded the batch so there is no per-endpoint decode step.
    pub fn enqueue(&mut self, msg: SyncMessage) {
        self.pending.push(msg);
    }

    /// Advances one tick: predict, then apply every queued sync — exactly
    /// [`Consumer::estimate`]'s transition without serving a value. Shard
    /// workers call this once per endpoint per tick; because the order is
    /// identical to the simulator path, ingest stays bit-compatible with it.
    pub fn advance(&mut self) {
        if self.filter.predict().is_err() {
            self.predict_failures += 1;
        }
        // Drain in place so `pending` keeps its capacity (steady-state
        // ingest ticks must not allocate).
        for msg in self.pending.drain(..) {
            if apply_to_filter(&mut self.filter, msg) {
                self.syncs_applied += 1;
            }
        }
    }
}

/// Applies a sync to a filter, returning whether it was accepted. Free
/// function (not a method) so [`ServerEndpoint::advance`] can drain
/// `pending` while mutating the filter — disjoint field borrows.
fn apply_to_filter(filter: &mut KalmanFilter, msg: SyncMessage) -> bool {
    match msg {
        SyncMessage::State { x, p } => filter.set_state(x, p).is_ok(),
        SyncMessage::Model { model, x, p } => {
            match KalmanFilter::with_covariance(model, x, p) {
                Ok(kf) => {
                    *filter = kf;
                    true
                }
                Err(_) => false,
            }
        }
        SyncMessage::Measurement { z } => filter.update(&z).is_ok(),
    }
}

impl Consumer for ServerEndpoint {
    fn dim(&self) -> usize {
        self.filter.model().measurement_dim()
    }

    fn receive(&mut self, _now: Tick, payload: &Bytes) {
        match SyncMessage::decode(payload) {
            Ok(msg) => self.pending.push(msg),
            Err(_) => self.decode_failures += 1,
        }
    }

    fn estimate(&mut self, _now: Tick, out: &mut [f64]) {
        // Predict first, then apply corrections — the exact order the
        // source's shadow uses, which is what makes the two bit-identical.
        self.advance();
        let z_hat = self.filter.predicted_measurement();
        out[..z_hat.dim()].copy_from_slice(z_hat.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_filter::models;
    use kalstream_linalg::{Matrix, Vector};

    fn server() -> ServerEndpoint {
        let model = models::random_walk(0.01, 0.01);
        ServerEndpoint::new(KalmanFilter::new(model, Vector::zeros(1), 1.0).unwrap())
    }

    #[test]
    fn estimate_predicts_without_messages() {
        let mut s = server();
        let mut out = [0.0];
        s.estimate(0, &mut out);
        assert_eq!(out[0], 0.0); // random walk prediction keeps the level
        assert_eq!(s.staleness(), 1);
        s.estimate(1, &mut out);
        assert_eq!(s.staleness(), 2);
    }

    #[test]
    fn state_sync_overwrites_estimate() {
        let mut s = server();
        let msg = SyncMessage::State {
            x: Vector::from_slice(&[5.0]),
            p: Matrix::scalar(1, 0.5),
        };
        s.receive(3, &msg.encode());
        let mut out = [0.0];
        s.estimate(3, &mut out);
        assert_eq!(out[0], 5.0);
        assert_eq!(s.syncs_applied(), 1);
        assert_eq!(s.staleness(), 0);
    }

    #[test]
    fn model_sync_replaces_filter() {
        let mut s = server();
        let msg = SyncMessage::Model {
            model: models::constant_velocity(1.0, 0.01, 0.1),
            x: Vector::from_slice(&[2.0, 0.5]),
            p: Matrix::scalar(2, 1.0),
        };
        s.receive(0, &msg.encode());
        let mut out = [0.0];
        s.estimate(0, &mut out);
        assert_eq!(out[0], 2.0);
        assert_eq!(s.filter().model().name(), "constant_velocity");
        // Next tick the CV model extrapolates: 2.0 + 0.5.
        s.estimate(1, &mut out);
        assert!((out[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn measurement_sync_runs_an_update() {
        let mut s = server();
        let msg = SyncMessage::Measurement { z: Vector::from_slice(&[4.0]) };
        s.receive(0, &msg.encode());
        let mut out = [0.0];
        s.estimate(0, &mut out);
        // A KF update moves toward the measurement but not (necessarily)
        // onto it.
        assert!(out[0] > 2.0 && out[0] <= 4.0, "estimate {}", out[0]);
    }

    #[test]
    fn garbage_messages_are_counted_not_fatal() {
        let mut s = server();
        s.receive(0, &Bytes::from_static(b"\xFFgarbage"));
        assert_eq!(s.decode_failures(), 1);
        let mut out = [0.0];
        s.estimate(0, &mut out); // still serves
        assert_eq!(s.syncs_applied(), 0);
    }

    #[test]
    fn mismatched_state_sync_is_dropped() {
        let mut s = server();
        // 2-dimensional state for a 1-dimensional model: dropped.
        let msg = SyncMessage::State { x: Vector::zeros(2), p: Matrix::scalar(2, 1.0) };
        s.apply(msg);
        assert_eq!(s.syncs_applied(), 0);
    }
}
