//! Online message-rate estimation: how many messages would this stream cost
//! at a given precision bound?

use std::collections::VecDeque;

/// Sliding-window estimator of the message-rate-vs-δ curve of one stream.
///
/// The source records the magnitude of the shadow filter's one-step
/// prediction error every tick. For a candidate bound `δ`, the fraction of
/// recent errors exceeding `δ` estimates the sync rate the stream would pay
/// at that bound — the curve the fleet allocator optimises over.
///
/// The estimate is approximate (after a real sync the error sequence
/// restarts from zero, so exceedances are not i.i.d.), but it is monotone in
/// `δ`, cheap, and tracks regime changes with the window — which is all the
/// allocator needs.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window: usize,
    errors: VecDeque<f64>,
    rejected: u64,
}

impl RateEstimator {
    /// Creates an estimator over the last `window` ticks.
    ///
    /// # Panics
    /// Panics when `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        RateEstimator {
            window,
            errors: VecDeque::with_capacity(window),
            rejected: 0,
        }
    }

    /// Records one tick's prediction-error magnitude.
    ///
    /// A non-finite magnitude is rejected (and counted) rather than stored:
    /// one NaN in the window would poison [`RateEstimator::rate_at`] for a
    /// full window length and through it the fleet allocator's demand curve.
    pub fn record(&mut self, abs_err: f64) {
        if !abs_err.is_finite() {
            self.rejected += 1;
            return;
        }
        if self.errors.len() == self.window {
            self.errors.pop_front();
        }
        self.errors.push_back(abs_err);
    }

    /// Non-finite samples rejected by [`RateEstimator::record`].
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of ticks recorded (≤ window).
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// `true` before any tick has been recorded.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Estimated messages-per-tick at bound `delta`: the exceedance fraction
    /// over the window. Returns `0.0` when empty.
    pub fn rate_at(&self, delta: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        let over = self.errors.iter().filter(|&&e| e > delta).count();
        over as f64 / self.errors.len() as f64
    }

    /// Snapshot of the recorded error magnitudes (consumed by
    /// [`crate::StreamDemand`] for fleet allocation).
    pub fn samples(&self) -> Vec<f64> {
        self.errors.iter().copied().collect()
    }

    /// Mean error magnitude over the window — the per-stream *error
    /// contribution* the epoch budget allocator weights streams by when
    /// redistributing the message budget. Returns `0.0` when empty.
    pub fn mean_abs_error(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }

    /// The smallest `δ` whose estimated rate is ≤ `target_rate`: the
    /// `(1 − target_rate)`-quantile of the window errors. Returns `0.0`
    /// when the window is empty.
    pub fn delta_for_rate(&self, target_rate: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.errors.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let keep = ((1.0 - target_rate.clamp(0.0, 1.0)) * sorted.len() as f64).ceil() as usize;
        if keep == 0 {
            0.0
        } else {
            sorted[keep.min(sorted.len()) - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[f64]) -> RateEstimator {
        let mut r = RateEstimator::new(100);
        for &v in values {
            r.record(v);
        }
        r
    }

    #[test]
    fn rate_is_exceedance_fraction() {
        let r = filled(&[0.1, 0.5, 1.5, 2.5]);
        assert_eq!(r.rate_at(1.0), 0.5);
        assert_eq!(r.rate_at(0.0), 1.0);
        assert_eq!(r.rate_at(10.0), 0.0);
    }

    #[test]
    fn rate_is_monotone_decreasing_in_delta() {
        let r = filled(&[0.2, 0.4, 0.9, 1.3, 3.0, 0.1]);
        let mut prev = f64::INFINITY;
        for delta in [0.0, 0.3, 0.6, 1.0, 2.0, 5.0] {
            let rate = r.rate_at(delta);
            assert!(rate <= prev);
            prev = rate;
        }
    }

    #[test]
    fn window_slides() {
        let mut r = RateEstimator::new(2);
        r.record(10.0);
        r.record(10.0);
        r.record(0.0); // evicts one 10.0
        assert_eq!(r.len(), 2);
        assert_eq!(r.rate_at(5.0), 0.5);
    }

    #[test]
    fn empty_estimator_is_conservative() {
        let r = RateEstimator::new(4);
        assert!(r.is_empty());
        assert_eq!(r.rate_at(1.0), 0.0);
        assert_eq!(r.delta_for_rate(0.5), 0.0);
    }

    #[test]
    fn delta_for_rate_inverts_rate_at() {
        let r = filled(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]);
        // Ask for 30% rate: delta must keep exactly the top 30% above it.
        let d = r.delta_for_rate(0.3);
        assert!(
            r.rate_at(d) <= 0.3 + 1e-12,
            "rate {} at delta {d}",
            r.rate_at(d)
        );
        // And the next-smaller sample would exceed the target.
        assert!(r.rate_at(d * 0.99) > 0.3);
    }

    #[test]
    fn delta_for_zero_rate_is_max_error() {
        let r = filled(&[0.5, 2.0, 1.0]);
        assert_eq!(r.delta_for_rate(0.0), 2.0);
    }

    #[test]
    fn mean_abs_error_averages_the_window() {
        let r = filled(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(r.mean_abs_error(), 1.5);
        assert_eq!(RateEstimator::new(4).mean_abs_error(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = RateEstimator::new(0);
    }

    #[test]
    fn non_finite_samples_are_rejected_and_counted() {
        // Pre-fix: a single NaN made every `rate_at` query NaN-poisoned for
        // a full window length (NaN > delta is false, so the exceedance
        // fraction silently *undercounted* while the sample sat there).
        let mut r = RateEstimator::new(8);
        r.record(f64::NAN);
        r.record(f64::INFINITY);
        r.record(f64::NEG_INFINITY);
        assert_eq!(r.len(), 0);
        assert_eq!(r.rejected(), 3);
        r.record(1.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.rate_at(0.5), 1.0);
    }
}
