//! Protocol configuration: the precision contract and sync policy.

use crate::{CoreError, Result};

/// What a sync message carries — the `abl_resync` ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncPayload {
    /// Ship the full corrected state and covariance. Larger messages, but
    /// the precision guarantee is exact at sync ticks (the shipped state is
    /// pinned to the measurement) and the server never runs a measurement
    /// update. The default.
    FullState,
    /// Ship only the raw measurement; the server performs an ordinary Kalman
    /// update with it (mirrored by the source's shadow). Smallest messages,
    /// but the posterior can lag a fast signal by more than `δ`, so the
    /// guarantee becomes approximate — the ablation quantifies by how much.
    MeasurementOnly,
}

/// Configuration of one suppression-protocol session.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Precision bound `δ`: the served value must be within `δ` of the
    /// observed measurement, in max-norm across dimensions.
    pub delta: f64,
    /// Sync payload policy.
    pub resync: ResyncPayload,
    /// Optional heartbeat: force a sync every `n` ticks even when the
    /// prediction holds, bounding server staleness for fault recovery.
    pub heartbeat: Option<u64>,
    /// Optional ack-based loss recovery: when `Some(t)`, every sync carries
    /// a sequence number, the server acknowledges the highest sequence it
    /// has applied, and a sync left unacknowledged for `t` ticks triggers a
    /// forced full-state + model resync. `None` (the default) keeps the
    /// legacy fire-and-forget wire format.
    pub ack_timeout: Option<u64>,
}

impl ProtocolConfig {
    /// Creates a config with the default full-state resync and no heartbeat.
    ///
    /// # Errors
    /// [`CoreError::BadConfig`] when `delta` is non-positive or non-finite.
    pub fn new(delta: f64) -> Result<Self> {
        if !(delta > 0.0 && delta.is_finite()) {
            return Err(CoreError::BadConfig {
                what: "delta",
                reason: format!("must be positive and finite, got {delta}"),
            });
        }
        Ok(ProtocolConfig {
            delta,
            resync: ResyncPayload::FullState,
            heartbeat: None,
            ack_timeout: None,
        })
    }

    /// Sets the resync payload policy.
    #[must_use]
    pub fn with_resync(mut self, resync: ResyncPayload) -> Self {
        self.resync = resync;
        self
    }

    /// Enables a heartbeat sync every `ticks` ticks.
    ///
    /// # Errors
    /// [`CoreError::BadConfig`] when `ticks` is zero.
    pub fn with_heartbeat(mut self, ticks: u64) -> Result<Self> {
        if ticks == 0 {
            return Err(CoreError::BadConfig {
                what: "heartbeat",
                reason: "must be at least 1 tick".into(),
            });
        }
        self.heartbeat = Some(ticks);
        Ok(self)
    }

    /// Enables ack-based loss recovery with an unacked-gap timeout of
    /// `ticks` ticks.
    ///
    /// # Errors
    /// [`CoreError::BadConfig`] when `ticks` is zero, or when the resync
    /// policy is [`ResyncPayload::MeasurementOnly`] — a measurement-only
    /// sync updates whatever (possibly diverged) prior the server holds, so
    /// its acknowledgement would clear the outstanding window without
    /// actually reconciling state. Recovery requires full-state syncs.
    pub fn with_ack_timeout(mut self, ticks: u64) -> Result<Self> {
        if ticks == 0 {
            return Err(CoreError::BadConfig {
                what: "ack_timeout",
                reason: "must be at least 1 tick".into(),
            });
        }
        if self.resync == ResyncPayload::MeasurementOnly {
            return Err(CoreError::BadConfig {
                what: "ack_timeout",
                reason: "loss recovery requires FullState resync: \
                         a measurement-only sync does not reconcile a \
                         diverged server prior"
                    .into(),
            });
        }
        self.ack_timeout = Some(ticks);
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_delta() {
        let c = ProtocolConfig::new(0.5).unwrap();
        assert_eq!(c.delta, 0.5);
        assert_eq!(c.resync, ResyncPayload::FullState);
        assert_eq!(c.heartbeat, None);
    }

    #[test]
    fn rejects_bad_delta() {
        assert!(ProtocolConfig::new(0.0).is_err());
        assert!(ProtocolConfig::new(-1.0).is_err());
        assert!(ProtocolConfig::new(f64::NAN).is_err());
        assert!(ProtocolConfig::new(f64::INFINITY).is_err());
    }

    #[test]
    fn builder_chain() {
        let c = ProtocolConfig::new(1.0)
            .unwrap()
            .with_resync(ResyncPayload::MeasurementOnly)
            .with_heartbeat(100)
            .unwrap();
        assert_eq!(c.resync, ResyncPayload::MeasurementOnly);
        assert_eq!(c.heartbeat, Some(100));
    }

    #[test]
    fn rejects_zero_heartbeat() {
        assert!(ProtocolConfig::new(1.0).unwrap().with_heartbeat(0).is_err());
    }

    #[test]
    fn ack_timeout_builder() {
        let c = ProtocolConfig::new(1.0)
            .unwrap()
            .with_ack_timeout(8)
            .unwrap();
        assert_eq!(c.ack_timeout, Some(8));
    }

    #[test]
    fn rejects_zero_ack_timeout() {
        assert!(ProtocolConfig::new(1.0)
            .unwrap()
            .with_ack_timeout(0)
            .is_err());
    }

    #[test]
    fn rejects_ack_timeout_with_measurement_only_resync() {
        assert!(ProtocolConfig::new(1.0)
            .unwrap()
            .with_resync(ResyncPayload::MeasurementOnly)
            .with_ack_timeout(8)
            .is_err());
    }
}
