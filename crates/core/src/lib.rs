//! # kalstream-core
//!
//! The paper's contribution: **precision-bounded stream suppression with
//! dual Kalman filters**, plus the multi-stream resource-allocation layer on
//! top of it.
//!
//! ## The protocol in five lines
//!
//! A stream source and the stream server both hold the same *dynamic
//! procedure* — a Kalman filter. The server answers queries from the
//! filter's prediction without any communication. The source runs a
//! bit-identical **shadow** of the server's filter; each tick it checks the
//! shadow's prediction against the real measurement, and only when the error
//! would exceed the user's precision bound `δ` does it transmit one
//! correction message that resynchronises both ends. Communication is paid
//! only when the model fails.
//!
//! ## What lives where
//!
//! * [`wire`] — the binary wire format for sync messages (state sync, model
//!   sync, measurement sync), with triangle-packed symmetric matrices and
//!   explicit byte accounting for experiment T3.
//! * [`frame`] — the length-prefixed frame layer that batches many messages
//!   from many streams into one pooled buffer for ingest.
//! * [`ingest`] — the sharded ingest pipeline: per-shard worker threads each
//!   owning a `stream_id → ServerEndpoint` map, bit-identical to sequential
//!   apply for any shard count.
//! * [`BatchShardEngine`] / [`BatchedIngest`] — the fleet-batch dispatch
//!   layer: same-model streams stepped through structure-of-arrays kernels
//!   (`kalstream_filter::FleetBatch`), bit-identical to the scalar path and
//!   pluggable into the pipeline via [`IngestPipeline::start_batched`].
//! * [`SourceEndpoint`] / [`ServerEndpoint`] — the two ends of the protocol,
//!   implementing the simulator's `Producer`/`Consumer` traits.
//! * [`StreamSession`] — constructs a matched endpoint pair from a
//!   [`SessionSpec`] (the "install the procedure at both ends" step).
//! * [`Estimator`] — the source's local estimator: a fixed filter, an
//!   adaptive filter, or a model bank. Model changes propagate to the server
//!   only inside sync messages, which is what keeps the two ends identical
//!   between syncs.
//! * [`RateEstimator`] / [`BudgetAllocator`] — the resource-management layer:
//!   measured message-rate-vs-δ curves and Lagrangian allocation of
//!   per-stream precision under a fleet-wide message budget.
//!
//! ## Precision guarantee
//!
//! Under zero link latency, the served value is within `δ` of the observed
//! measurement at **every** tick (max-norm for multi-dimensional streams):
//! between syncs by the suppression test, and at sync ticks because the
//! shipped state is *pinned* — projected so its measurement component equals
//! the observation exactly ([`pin_to_measurement`]). Integration tests and
//! proptests assert zero violations across every workload family.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alloc;
mod batch_ingest;
mod config;
mod controller;
mod error;
mod estimator;
pub mod frame;
pub mod ingest;
mod protocol;
mod rate;
mod server;
mod session;
mod source;
pub mod wire;

pub use alloc::{AllocationResult, BudgetAllocator, StreamDemand};
pub use batch_ingest::{BatchShardEngine, BatchedIngest};
pub use config::{ProtocolConfig, ResyncPayload};
pub use controller::FleetController;
pub use error::CoreError;
pub use estimator::Estimator;
pub use frame::{
    BufferPool, Frame, FrameBatch, FrameDecoder, OversizedFrame, StreamDecoder, FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
};
pub use ingest::{
    FramingSink, IngestPipeline, IngestResult, ResizableIngest, ResizeTransition, SequentialIngest,
    ShardAssignment, ShardReport, SnapshotSource, TickIngest,
};
pub use protocol::{pin_to_measurement, AckTracker};
pub use rate::RateEstimator;
pub use server::{EndpointState, ServerEndpoint};
pub use session::{SessionSpec, StreamSession};
pub use source::SourceEndpoint;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
