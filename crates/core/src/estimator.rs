//! The source's local estimator: the "best model of the stream" that sync
//! messages are cut from.

use kalstream_filter::{AdaptiveKalmanFilter, KalmanFilter, ModelBank, StateModel};
use kalstream_linalg::Vector;

use crate::Result;

/// The estimator running at the stream source, fed *every* measurement.
///
/// The server never sees this estimator directly — it sees snapshots of its
/// active filter inside sync messages. Adaptivity therefore costs zero
/// bandwidth until it actually changes what gets shipped.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one estimator exists per stream; boxing would
                                     // only add indirection to the per-tick hot path
pub enum Estimator {
    /// A fixed-model Kalman filter.
    Fixed(KalmanFilter),
    /// A filter with online `Q`/`R` adaptation.
    Adaptive(AdaptiveKalmanFilter),
    /// A bank of candidate models with likelihood switching.
    Bank(ModelBank),
}

impl Estimator {
    /// Advances the estimator one tick with measurement `z`
    /// (predict + update).
    ///
    /// # Errors
    /// Propagates filter errors (divergence, non-PD innovation covariance).
    pub fn step(&mut self, z: &Vector) -> Result<()> {
        match self {
            Estimator::Fixed(kf) => {
                kf.step(z)?;
            }
            Estimator::Adaptive(akf) => {
                akf.step(z)?;
            }
            Estimator::Bank(bank) => {
                bank.step(z)?;
            }
        }
        Ok(())
    }

    /// The filter whose state a sync message would ship right now.
    pub fn active(&self) -> &KalmanFilter {
        match self {
            Estimator::Fixed(kf) => kf,
            Estimator::Adaptive(akf) => akf.inner(),
            Estimator::Bank(bank) => bank.active(),
        }
    }

    /// The active model (used for change detection against the last synced
    /// model).
    pub fn active_model(&self) -> &StateModel {
        self.active().model()
    }

    /// Measurement dimension the estimator expects.
    pub fn measurement_dim(&self) -> usize {
        self.active().model().measurement_dim()
    }

    /// Re-initialises the active filter's state after a divergence: state
    /// pinned to the measurement, covariance reset to `p_reset · I`.
    ///
    /// # Errors
    /// Propagates shape errors (none expected: the pinned state is built
    /// from the active model itself).
    pub fn reset_to(&mut self, x: Vector, p_reset: f64) -> Result<()> {
        let n = x.dim();
        let p = kalstream_linalg::Matrix::scalar(n, p_reset);
        match self {
            Estimator::Fixed(kf) => kf.set_state(x, p)?,
            Estimator::Adaptive(akf) => akf.inner_mut().set_state(x, p)?,
            Estimator::Bank(bank) => bank.active_mut().set_state(x, p)?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_filter::{models, AdaptiveConfig, BankConfig};

    fn z(v: f64) -> Vector {
        Vector::from_slice(&[v])
    }

    #[test]
    fn fixed_estimator_steps() {
        let kf = KalmanFilter::new(models::random_walk(0.1, 0.1), Vector::zeros(1), 1.0).unwrap();
        let mut e = Estimator::Fixed(kf);
        for _ in 0..50 {
            e.step(&z(2.0)).unwrap();
        }
        assert!((e.active().state()[0] - 2.0).abs() < 0.1);
        assert_eq!(e.measurement_dim(), 1);
        assert_eq!(e.active_model().name(), "random_walk");
    }

    #[test]
    fn adaptive_estimator_steps() {
        let kf = KalmanFilter::new(models::random_walk(0.1, 0.1), Vector::zeros(1), 1.0).unwrap();
        let mut e = Estimator::Adaptive(AdaptiveKalmanFilter::new(kf, AdaptiveConfig::default()));
        for t in 0..100 {
            e.step(&z(t as f64 * 0.1)).unwrap();
        }
        assert!(e.active().state().is_finite());
    }

    #[test]
    fn bank_estimator_switches_active_model() {
        let walk =
            KalmanFilter::new(models::random_walk(0.01, 0.05), Vector::zeros(1), 1.0).unwrap();
        let cv = KalmanFilter::new(
            models::constant_velocity(1.0, 0.01, 0.05),
            Vector::zeros(2),
            1.0,
        )
        .unwrap();
        let mut e = Estimator::Bank(ModelBank::new(vec![walk, cv], BankConfig::default()).unwrap());
        assert_eq!(e.active_model().name(), "random_walk");
        for t in 0..300 {
            e.step(&z(t as f64)).unwrap();
        }
        assert_eq!(e.active_model().name(), "constant_velocity");
    }

    #[test]
    fn reset_reinitialises_state() {
        let kf = KalmanFilter::new(models::random_walk(0.1, 0.1), Vector::zeros(1), 1.0).unwrap();
        let mut e = Estimator::Fixed(kf);
        e.reset_to(Vector::from_slice(&[42.0]), 10.0).unwrap();
        assert_eq!(e.active().state()[0], 42.0);
        assert_eq!(e.active().covariance().get(0, 0), 10.0);
    }
}
