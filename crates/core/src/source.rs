//! The source endpoint: suppression decisions and sync construction.

use bytes::Bytes;
use kalstream_filter::KalmanFilter;
use kalstream_linalg::Vector;
use kalstream_obs::{Counter, Instrument, Scope};
use kalstream_sim::{Producer, Tick};

use crate::protocol::{pin_to_measurement, precision_norm, AckTracker};
use crate::wire::{SyncMessage, WireMessage};
use crate::{Estimator, ProtocolConfig, RateEstimator, ResyncPayload};

/// Fraction of δ a sync's shipped state may leave as measurement residual:
/// the largest value (most smoothing preserved) that still guarantees the
/// served value is strictly within δ at the sync tick. Applies only to
/// isolated syncs; consecutive syncs pin fully (see `build_sync`).
const PIN_FRACTION: f64 = 0.9;

/// The stream-source side of the suppression protocol.
///
/// Owns two filters:
///
/// * the **local estimator** ([`Estimator`]), fed every measurement — the
///   best available model of the stream;
/// * the **shadow filter**, a bit-identical replica of the server's filter,
///   which sees only what the server sees (predictions plus sync
///   corrections).
///
/// Every tick the shadow predicts one step, exactly as the server will, and
/// the source compares that prediction against the fresh measurement. Within
/// `δ`: transmit nothing. Beyond `δ` (or on heartbeat): cut a sync message
/// from the local estimator, apply it to the shadow, and transmit it.
#[derive(Debug, Clone)]
pub struct SourceEndpoint {
    estimator: Estimator,
    shadow: KalmanFilter,
    config: ProtocolConfig,
    /// Model the server currently runs (last one shipped in a Model sync).
    synced_model_fingerprint: kalstream_filter::StateModel,
    rate: RateEstimator,
    ticks_since_sync: u64,
    /// `true` when the previous tick also synced — the signal that the
    /// local posterior is persistently lagging and partial pinning would
    /// leave the server chronically `PIN_FRACTION·δ` behind.
    synced_last_tick: bool,
    syncs: Counter,
    estimator_failures: Counter,
    /// Observations rejected before touching any filter: short slices and
    /// non-finite values (NaN/∞) — each would otherwise poison the
    /// estimator, the shadow, and the rate window.
    rejected_measurements: Counter,
    /// Sequence/ack bookkeeping for loss recovery (idle when
    /// `config.ack_timeout` is `None`).
    acks: AckTracker,
    /// Forced full resyncs cut because the newest sync went unacked past
    /// the configured timeout.
    resyncs: Counter,
    /// Seq of the first unconfirmed Model-bearing sync. A cumulative ack is
    /// only sound for payloads every sync fully re-conveys; the model is
    /// not one — a State sync acked *after* a dropped Model sync would
    /// reconcile `x`/`P` while the server kept evolving them under stale
    /// dynamics. So once a Model sync is cut, every subsequent sync carries
    /// the model too until an ack for any of those seqs arrives.
    unconfirmed_model_seq: Option<u64>,
    /// Reverse-channel payloads that failed to decode as acks.
    feedback_failures: Counter,
    /// Bound directives received on the reverse channel and applied.
    bound_directives: Counter,
    /// Scratch measurement vector (hot-path allocation avoidance).
    z: Vector,
}

impl SourceEndpoint {
    /// Creates the source side. `server_filter` must be the exact filter the
    /// paired [`crate::ServerEndpoint`] starts with —
    /// [`crate::StreamSession`] guarantees this pairing.
    pub(crate) fn new(
        estimator: Estimator,
        server_filter: KalmanFilter,
        config: ProtocolConfig,
    ) -> Self {
        let m = server_filter.model().measurement_dim();
        let synced_model_fingerprint = server_filter.model().clone();
        SourceEndpoint {
            estimator,
            shadow: server_filter,
            config,
            synced_model_fingerprint,
            rate: RateEstimator::new(512),
            ticks_since_sync: 0,
            synced_last_tick: false,
            syncs: Counter::new(),
            estimator_failures: Counter::new(),
            rejected_measurements: Counter::new(),
            acks: AckTracker::new(),
            resyncs: Counter::new(),
            unconfirmed_model_seq: None,
            feedback_failures: Counter::new(),
            bound_directives: Counter::new(),
            z: Vector::zeros(m),
        }
    }

    /// Sync messages sent so far.
    pub fn syncs(&self) -> u64 {
        self.syncs.get()
    }

    /// Times the local estimator diverged and was reset (should be 0 in
    /// healthy runs; failure-injection tests exercise it).
    pub fn estimator_failures(&self) -> u64 {
        self.estimator_failures.get()
    }

    /// Observations rejected as unusable (short slice or non-finite value)
    /// before reaching any filter.
    pub fn rejected_measurements(&self) -> u64 {
        self.rejected_measurements.get()
    }

    /// Forced full resyncs triggered by the ack timeout.
    pub fn resyncs(&self) -> u64 {
        self.resyncs.get()
    }

    /// Reverse-channel payloads that failed to decode as acks.
    pub fn feedback_failures(&self) -> u64 {
        self.feedback_failures.get()
    }

    /// Bound directives received over the feedback link and applied via
    /// [`SourceEndpoint::set_delta`].
    pub fn bound_directives(&self) -> u64 {
        self.bound_directives.get()
    }

    /// Highest cumulative ack received from the server (0 before the
    /// first, or when recovery is disabled).
    pub fn acked_seq(&self) -> u64 {
        self.acks.last_acked()
    }

    /// The shadow filter itself — invariant tests compare its bits against
    /// the paired server's filter.
    pub fn shadow_filter(&self) -> &KalmanFilter {
        &self.shadow
    }

    /// The live message-rate estimator (consumed by the allocation layer).
    pub fn rate_estimator(&self) -> &RateEstimator {
        &self.rate
    }

    /// The local estimator (read access for diagnostics).
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// The shadow filter's current predicted measurement — what the source
    /// believes the server is serving right now. Diagnostics and invariant
    /// tests compare this against the actual server output (they must be
    /// bit-identical at zero latency).
    pub fn shadow_prediction(&self) -> Vector {
        self.shadow.predicted_measurement()
    }

    /// Scalar convenience over [`SourceEndpoint::shadow_prediction`].
    pub fn shadow_predicted_value(&self) -> f64 {
        self.shadow.predicted_measurement()[0]
    }

    /// Current precision bound.
    pub fn delta(&self) -> f64 {
        self.config.delta
    }

    /// Retunes the precision bound mid-session — the hook the fleet
    /// allocation controller uses when it reassigns budgets.
    ///
    /// Only future suppression decisions change; no message is sent. A
    /// *tightened* bound takes effect at the next tick's check.
    pub fn set_delta(&mut self, delta: f64) {
        if delta > 0.0 && delta.is_finite() {
            self.config.delta = delta;
        }
    }

    /// One suppression decision. Exposed for protocol-level tests; the
    /// simulator calls it through the [`Producer`] impl.
    pub fn decide(&mut self, observed: &[f64]) -> Option<SyncMessage> {
        let m = self.z.dim();

        // 0. Reject unusable observations — a short slice or a non-finite
        //    value — before they touch any filter. A NaN fed through would
        //    make `precision_norm` NaN, the suppression test permanently
        //    false, and the source would then sync NaN state every tick.
        //    The shadow still predicts (the server predicts every tick
        //    regardless of what the source observed) so the pair stays in
        //    lock-step.
        if observed.len() < m || observed[..m].iter().any(|v| !v.is_finite()) {
            self.rejected_measurements += 1;
            let _ = self.shadow.predict();
            self.ticks_since_sync += 1;
            self.synced_last_tick = false;
            self.acks.tick();
            return None;
        }
        self.z.as_mut_slice().copy_from_slice(&observed[..m]);

        // 1. Feed the local estimator. A diverged estimator is reset to the
        //    measurement rather than poisoning the session.
        if self.estimator.step(&self.z).is_err() {
            self.estimator_failures += 1;
            let model = self.estimator.active_model().clone();
            let pinned = pin_to_measurement(&Vector::zeros(model.state_dim()), model.h(), &self.z)
                .unwrap_or_else(|_| Vector::zeros(model.state_dim()));
            let _ = self.estimator.reset_to(pinned, 1.0);
        }

        // 2. Advance the shadow exactly as the server will this tick.
        let shadow_healthy = self.shadow.predict().is_ok();

        // 3. Suppression test. The ack tracker ages one tick first so that
        //    "unacked for t ticks" counts decision ticks, and a sync whose
        //    ack is outstanding past the timeout forces a resync even when
        //    the prediction currently holds — the shadow applied that sync,
        //    the server (probably) never saw it, and only a full overwrite
        //    re-converges the two.
        self.acks.tick();
        let resync_due = self
            .config
            .ack_timeout
            .is_some_and(|t| self.acks.overdue(t));
        let err = precision_norm(&self.shadow.predicted_measurement(), &self.z);
        self.rate.record(err);
        let heartbeat_due = self
            .config
            .heartbeat
            .is_some_and(|h| self.ticks_since_sync + 1 >= h);
        if err <= self.config.delta && !heartbeat_due && !resync_due && shadow_healthy {
            self.ticks_since_sync += 1;
            self.synced_last_tick = false;
            return None;
        }

        // 4. Cut a sync from the local estimator and mirror it onto the
        //    shadow. A timeout-triggered resync ships the full model: the
        //    server may have missed an earlier Model sync, so state alone
        //    might be interpreted under the wrong dynamics.
        if resync_due {
            self.resyncs += 1;
        }
        let msg = self.build_sync(resync_due || self.unconfirmed_model_seq.is_some());
        self.apply_to_shadow(&msg);
        self.ticks_since_sync = 0;
        self.synced_last_tick = true;
        self.syncs += 1;
        Some(msg)
    }

    fn build_sync(&mut self, force_model: bool) -> SyncMessage {
        if self.config.resync == ResyncPayload::MeasurementOnly {
            return SyncMessage::Measurement { z: self.z.clone() };
        }
        let active = self.estimator.active();
        let model = active.model();
        // The shipped state must serve a value within δ of the observation
        // *at this tick*, but pinning it all the way onto the (noisy)
        // measurement would anchor the server to one noise draw and throw
        // away the filter's smoothing — under heavy sensor noise that
        // degenerates into value caching. So pin conditionally: ship the
        // smoothed posterior untouched when its measurement residual is
        // already within the pin target, otherwise move it just far enough
        // along the minimum-norm correction to reach the target. The target
        // is 0.9·δ: as close to the smoothed estimate as the guarantee
        // allows, with a 10% margin against rounding.
        let posterior = active.state();
        let resid = precision_norm(
            &model
                .h()
                .mul_vec(posterior)
                .expect("validated model: H·x is always well-shaped"),
            &self.z,
        );
        // Partial pinning assumes the smoothed posterior is a *better*
        // anchor than the raw measurement. When syncs come back to back the
        // posterior is demonstrably lagging (e.g. an unmodelled trend with a
        // mis-adapted filter), and a partial pin would park the server a
        // constant PIN_FRACTION·δ behind the signal — paying one message
        // per tick forever. Back-to-back syncs therefore pin fully.
        let target = if self.synced_last_tick {
            0.0
        } else {
            PIN_FRACTION * self.config.delta
        };
        let x = if resid <= target {
            posterior.clone()
        } else {
            match pin_to_measurement(posterior, model.h(), &self.z) {
                Ok(full_pin) if target == 0.0 => full_pin,
                Ok(full_pin) => {
                    // The pinned residual is 0 and the correction is linear,
                    // so blending with weight α leaves residual (1−α)·resid.
                    let alpha = 1.0 - target / resid;
                    let mut x = posterior.clone();
                    let delta_x = &full_pin - posterior;
                    x.axpy(alpha, &delta_x).expect("same dimension");
                    x
                }
                Err(_) => posterior.clone(),
            }
        };
        let p = active.covariance().clone();
        // A Model sync is several times the size of a State sync, so it is
        // sent only on *structural* change (F or H): the served value is
        // `H Fᵏ x`, which never reads Q or R. Adaptive Q/R re-estimates
        // therefore ride along in ordinary State syncs implicitly — the
        // server's Q/R go stale, which affects only its uncertainty
        // metadata, not the values it serves (and the shadow mirrors the
        // same staleness, so determinism holds).
        let structural_change = model.f() != self.synced_model_fingerprint.f()
            || model.h() != self.synced_model_fingerprint.h();
        if structural_change || force_model {
            self.synced_model_fingerprint = model.clone();
            SyncMessage::Model {
                model: model.clone(),
                x,
                p,
            }
        } else {
            SyncMessage::State { x, p }
        }
    }

    fn apply_to_shadow(&mut self, msg: &SyncMessage) {
        match msg {
            SyncMessage::State { x, p } => {
                let _ = self.shadow.set_state(x.clone(), p.clone());
            }
            SyncMessage::Model { model, x, p } => {
                if let Ok(kf) = KalmanFilter::with_covariance(model.clone(), x.clone(), p.clone()) {
                    self.shadow = kf;
                }
            }
            SyncMessage::Measurement { z } => {
                let _ = self.shadow.update(z);
            }
        }
    }
}

impl Producer for SourceEndpoint {
    fn dim(&self) -> usize {
        self.z.dim()
    }

    fn observe(&mut self, _now: Tick, observed: &[f64]) -> Option<Bytes> {
        let msg = self.decide(observed)?;
        if self.config.ack_timeout.is_some() {
            let seq = self.acks.on_send();
            if matches!(msg, SyncMessage::Model { .. }) && self.unconfirmed_model_seq.is_none() {
                self.unconfirmed_model_seq = Some(seq);
            }
            Some(
                WireMessage::Sync {
                    seq: Some(seq),
                    msg,
                }
                .encode(),
            )
        } else {
            Some(msg.encode())
        }
    }

    fn feedback(&mut self, _now: Tick, payload: &Bytes) {
        match WireMessage::decode(payload) {
            Ok(WireMessage::Ack { seq }) => {
                self.acks.on_ack(seq);
                // Every sync sent since `unconfirmed_model_seq` carried the
                // model, so an ack at or past it proves the server applied
                // one of them and now runs the shadow's dynamics.
                if self
                    .unconfirmed_model_seq
                    .is_some_and(|m| self.acks.last_acked() >= m)
                {
                    self.unconfirmed_model_seq = None;
                }
            }
            // A downstream-propagated precision bound: the decoder already
            // guarantees `delta` is finite and positive, so `set_delta`
            // always accepts it.
            Ok(WireMessage::Bound { delta }) => {
                self.set_delta(delta);
                self.bound_directives += 1;
            }
            _ => self.feedback_failures += 1,
        }
    }
}

impl Instrument for SourceEndpoint {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("syncs", self.syncs);
        scope.counter("estimator_failures", self.estimator_failures);
        scope.counter("rejected_measurements", self.rejected_measurements);
        scope.counter("resyncs", self.resyncs);
        scope.counter("feedback_failures", self.feedback_failures);
        scope.counter("bound_directives", self.bound_directives);
        scope.counter("acked_seq", self.acks.last_acked());
        scope.gauge("delta", self.delta());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_filter::models;

    fn source(delta: f64) -> SourceEndpoint {
        let model = models::random_walk(0.01, 0.01);
        let kf = KalmanFilter::new(model, Vector::zeros(1), 1.0).unwrap();
        SourceEndpoint::new(
            Estimator::Fixed(kf.clone()),
            kf,
            ProtocolConfig::new(delta).unwrap(),
        )
    }

    #[test]
    fn static_stream_is_suppressed_after_lockin() {
        let mut s = source(0.5);
        let mut sent = 0;
        for _ in 0..200 {
            if s.decide(&[1.0]).is_some() {
                sent += 1;
            }
        }
        assert!(sent <= 3, "sent {sent} messages for a constant stream");
        assert_eq!(s.syncs(), sent);
    }

    #[test]
    fn jump_triggers_exactly_one_sync() {
        let mut s = source(0.5);
        for _ in 0..50 {
            s.decide(&[0.0]);
        }
        let before = s.syncs();
        assert!(s.decide(&[10.0]).is_some());
        assert_eq!(s.syncs(), before + 1);
        // And the shadow is now pinned to the new level: next tick is quiet.
        assert!(s.decide(&[10.0]).is_none());
    }

    #[test]
    fn tighter_delta_sends_more() {
        let trace: Vec<f64> = (0..500).map(|t| (t as f64 * 0.1).sin() * 3.0).collect();
        let mut loose = source(1.0);
        let mut tight = source(0.1);
        for &v in &trace {
            loose.decide(&[v]);
            tight.decide(&[v]);
        }
        assert!(tight.syncs() > loose.syncs());
    }

    #[test]
    fn heartbeat_forces_syncs() {
        let model = models::random_walk(0.01, 0.01);
        let kf = KalmanFilter::new(model, Vector::zeros(1), 1.0).unwrap();
        let config = ProtocolConfig::new(100.0)
            .unwrap()
            .with_heartbeat(10)
            .unwrap();
        let mut s = SourceEndpoint::new(Estimator::Fixed(kf.clone()), kf, config);
        for _ in 0..100 {
            s.decide(&[0.0]);
        }
        // δ=100 would never trigger; 100 ticks / heartbeat 10 ⇒ ≥ 9 syncs.
        assert!(s.syncs() >= 9, "syncs {}", s.syncs());
    }

    #[test]
    fn state_syncs_are_pinned_within_half_delta() {
        let mut s = source(0.5);
        for _ in 0..20 {
            s.decide(&[0.0]);
        }
        let msg = s.decide(&[7.0]).expect("jump must sync");
        match msg {
            SyncMessage::State { x, .. } => {
                // The filter posterior after a 0→7 jump lags far behind 7;
                // conditional pinning must pull the shipped state to within
                // δ/2 of the observation (and no further).
                let resid = (x[0] - 7.0).abs();
                assert!(
                    resid <= 0.45 + 1e-9,
                    "residual {resid} exceeds the pin target"
                );
                assert!(resid >= 0.45 - 1e-9, "over-pinned: residual {resid}");
            }
            other => panic!("expected State sync, got {other:?}"),
        }
    }

    #[test]
    fn smooth_posterior_is_shipped_unpinned() {
        // When the posterior already sits within δ/2 of the observation the
        // sync must ship it untouched (preserving smoothing under noise).
        let mut s = source(0.5);
        for _ in 0..50 {
            s.decide(&[1.0]);
        }
        // Posterior ≈ 1.0; a 1.6 observation triggers (pred err 0.6 > 0.5).
        // The filter posterior moves partway toward 1.6; it lands within the
        // 0.45 pin target, so it must be shipped untouched rather than
        // overwritten by the raw measurement.
        let msg = s.decide(&[1.6]).expect("0.6 jump must sync at delta 0.5");
        match msg {
            SyncMessage::State { x, .. } => {
                let resid = (x[0] - 1.6).abs();
                assert!(resid <= 0.45 + 1e-9, "guarantee broken: resid {resid}");
                assert!(
                    x[0] < 1.6 - 1e-6,
                    "posterior was overwritten by the raw measurement"
                );
            }
            other => panic!("expected State sync, got {other:?}"),
        }
    }

    #[test]
    fn measurement_only_mode_ships_measurements() {
        let model = models::random_walk(0.01, 0.01);
        let kf = KalmanFilter::new(model, Vector::zeros(1), 1.0).unwrap();
        let config = ProtocolConfig::new(0.5)
            .unwrap()
            .with_resync(ResyncPayload::MeasurementOnly);
        let mut s = SourceEndpoint::new(Estimator::Fixed(kf.clone()), kf, config);
        let msg = s.decide(&[7.0]).expect("jump must sync");
        assert!(matches!(msg, SyncMessage::Measurement { .. }));
    }

    #[test]
    fn model_change_ships_model_sync() {
        use kalstream_filter::{BankConfig, ModelBank};
        let walk =
            KalmanFilter::new(models::random_walk(0.01, 0.05), Vector::zeros(1), 1.0).unwrap();
        let cv = KalmanFilter::new(
            models::constant_velocity(1.0, 0.01, 0.05),
            Vector::zeros(2),
            1.0,
        )
        .unwrap();
        let bank = ModelBank::new(vec![walk.clone(), cv], BankConfig::default()).unwrap();
        let mut s = SourceEndpoint::new(
            Estimator::Bank(bank),
            walk,
            ProtocolConfig::new(0.5).unwrap(),
        );
        let mut saw_model_sync = false;
        for t in 0..400 {
            if let Some(SyncMessage::Model { model, .. }) = s.decide(&[t as f64 * 0.8]) {
                assert_eq!(model.name(), "constant_velocity");
                saw_model_sync = true;
            }
        }
        assert!(saw_model_sync, "bank switch never propagated to the wire");
    }

    #[test]
    fn set_delta_changes_behaviour() {
        let trace: Vec<f64> = (0..400).map(|t| (t as f64 * 0.2).sin() * 5.0).collect();
        let mut s = source(5.0);
        for &v in &trace[..200] {
            s.decide(&[v]);
        }
        let loose_phase = s.syncs();
        s.set_delta(0.05);
        for &v in &trace[200..] {
            s.decide(&[v]);
        }
        let tight_phase = s.syncs() - loose_phase;
        assert!(
            tight_phase > loose_phase,
            "loose {loose_phase} tight {tight_phase}"
        );
        // Invalid deltas are ignored.
        s.set_delta(-1.0);
        assert_eq!(s.delta(), 0.05);
    }

    #[test]
    fn producer_impl_encodes_decisions() {
        let mut s = source(0.5);
        let bytes = s.observe(0, &[9.0]).expect("first jump syncs");
        let msg = SyncMessage::decode(&bytes).unwrap();
        assert!(matches!(msg, SyncMessage::State { .. }));
        assert_eq!(Producer::dim(&s), 1);
    }

    fn recovering_source(delta: f64, timeout: u64) -> SourceEndpoint {
        let model = models::random_walk(0.01, 0.01);
        let kf = KalmanFilter::new(model, Vector::zeros(1), 1.0).unwrap();
        let config = ProtocolConfig::new(delta)
            .unwrap()
            .with_ack_timeout(timeout)
            .unwrap();
        SourceEndpoint::new(Estimator::Fixed(kf.clone()), kf, config)
    }

    #[test]
    fn short_measurement_slice_is_rejected_not_fatal() {
        // Pre-fix regression: `decide(&[])` panicked in copy_from_slice.
        let mut s = source(0.5);
        assert_eq!(s.decide(&[]), None);
        assert_eq!(s.rejected_measurements(), 1);
        // The session continues normally afterwards.
        assert!(s.decide(&[9.0]).is_some());
    }

    #[test]
    fn non_finite_measurements_are_rejected_before_any_filter() {
        // Pre-fix regression: one NaN made the suppression test permanently
        // false (NaN ≤ δ is false), so the source synced NaN state every
        // tick and poisoned the rate window.
        let mut s = source(0.5);
        for _ in 0..20 {
            s.decide(&[1.0]);
        }
        let syncs_before = s.syncs();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(s.decide(&[bad]), None, "bad observation must not sync");
        }
        assert_eq!(s.rejected_measurements(), 3);
        assert_eq!(s.syncs(), syncs_before);
        // Shadow stayed finite and the session resumes cleanly.
        assert!(s.shadow_predicted_value().is_finite());
        assert!(
            s.decide(&[1.0]).is_none(),
            "prediction still holds after rejects"
        );
        assert_eq!(
            s.rate_estimator().rejected(),
            0,
            "NaN never reached the window"
        );
    }

    #[test]
    fn rejected_tick_keeps_shadow_in_lockstep_with_server() {
        // The server predicts every tick no matter what the source observed;
        // a rejected observation must advance the shadow identically.
        let cv = KalmanFilter::new(
            models::constant_velocity(1.0, 0.01, 0.05),
            Vector::from_slice(&[0.0, 1.0]),
            1.0,
        )
        .unwrap();
        let mut s = SourceEndpoint::new(
            Estimator::Fixed(cv.clone()),
            cv.clone(),
            ProtocolConfig::new(1e9).unwrap(), // never syncs
        );
        let mut server = cv;
        s.decide(&[f64::NAN]);
        server.predict().unwrap();
        assert_eq!(
            s.shadow_prediction().as_slice(),
            server.predicted_measurement().as_slice(),
            "shadow must predict through a rejected tick"
        );
    }

    #[test]
    fn unacked_sync_forces_full_resync_after_timeout() {
        let mut s = recovering_source(0.5, 3);
        // Tick 0: jump → sequenced sync 1 (never acked: simulated loss).
        let bytes = s.observe(0, &[9.0]).expect("jump syncs");
        match WireMessage::decode(&bytes).unwrap() {
            WireMessage::Sync { seq, .. } => assert_eq!(seq, Some(1)),
            other => panic!("expected sequenced sync, got {other:?}"),
        }
        // Prediction holds for the next ticks, but the ack never arrives.
        assert!(s.observe(1, &[9.0]).is_none());
        assert!(s.observe(2, &[9.0]).is_none());
        let resync = s.observe(3, &[9.0]).expect("timeout must force a resync");
        match WireMessage::decode(&resync).unwrap() {
            WireMessage::Sync {
                seq: Some(2),
                msg: SyncMessage::Model { .. },
            } => {}
            other => panic!("expected full Model resync with seq 2, got {other:?}"),
        }
        assert_eq!(s.resyncs(), 1);
    }

    #[test]
    fn acked_sync_never_triggers_resync() {
        let mut s = recovering_source(0.5, 3);
        let _ = s.observe(0, &[9.0]).expect("jump syncs");
        s.feedback(0, &WireMessage::Ack { seq: 1 }.encode());
        for t in 1..50 {
            assert!(
                s.observe(t, &[9.0]).is_none(),
                "tick {t} resynced needlessly"
            );
        }
        assert_eq!(s.resyncs(), 0);
        assert_eq!(s.acked_seq(), 1);
    }

    #[test]
    fn repeated_loss_retries_until_acked() {
        let mut s = recovering_source(0.5, 2);
        let _ = s.observe(0, &[9.0]).expect("jump syncs");
        // Lose sync 1 and the first resync too.
        assert!(s.observe(1, &[9.0]).is_none());
        assert!(s.observe(2, &[9.0]).is_some(), "first resync");
        assert!(s.observe(3, &[9.0]).is_none());
        assert!(s.observe(4, &[9.0]).is_some(), "second resync");
        assert_eq!(s.resyncs(), 2);
        // Ack the latest: quiet from here on.
        s.feedback(4, &WireMessage::Ack { seq: 3 }.encode());
        for t in 5..30 {
            assert!(s.observe(t, &[9.0]).is_none());
        }
    }

    #[test]
    fn dropped_model_sync_is_recarried_until_acked() {
        // Pre-fix regression: a dropped Model resync followed by an acked
        // plain State sync cleared the outstanding window while the server
        // kept running the old dynamics — x reconciled, P (and for bank
        // switches the served values) diverged forever. The fix: once a
        // Model sync is cut, every later sync carries the model until one
        // of those seqs is acked.
        let decode = |bytes: &Bytes| match WireMessage::decode(bytes).unwrap() {
            WireMessage::Sync {
                seq: Some(seq),
                msg,
            } => (seq, msg),
            other => panic!("expected sequenced sync, got {other:?}"),
        };
        let mut s = recovering_source(0.5, 2);
        let (seq, msg) = decode(&s.observe(0, &[9.0]).expect("jump syncs"));
        assert_eq!(seq, 1);
        assert!(
            matches!(msg, SyncMessage::State { .. }),
            "no model change yet"
        );
        // Lose it; the timeout resync ships the model — lose that too.
        assert!(s.observe(1, &[9.0]).is_none());
        let (seq, msg) = decode(&s.observe(2, &[9.0]).expect("timeout resync"));
        assert_eq!(seq, 2);
        assert!(
            matches!(msg, SyncMessage::Model { .. }),
            "resync must carry the model"
        );
        // A natural sync while the model is unconfirmed must re-carry it.
        let (seq, msg) = decode(&s.observe(3, &[25.0]).expect("jump syncs"));
        assert_eq!(seq, 3);
        assert!(
            matches!(msg, SyncMessage::Model { .. }),
            "model still unconfirmed"
        );
        // Ack it: the server provably runs the shadow's dynamics now, so
        // the next sync shrinks back to State-only.
        s.feedback(3, &WireMessage::Ack { seq: 3 }.encode());
        let (seq, msg) = decode(&s.observe(4, &[40.0]).expect("jump syncs"));
        assert_eq!(seq, 4);
        assert!(
            matches!(msg, SyncMessage::State { .. }),
            "confirmed model rides no more"
        );
    }

    #[test]
    fn garbage_feedback_is_counted_not_fatal() {
        let mut s = recovering_source(0.5, 3);
        s.feedback(0, &Bytes::from_static(b"\xFFnot an ack"));
        // A sync on the reverse channel is equally invalid as feedback.
        s.feedback(
            0,
            &SyncMessage::Measurement {
                z: Vector::zeros(1),
            }
            .encode(),
        );
        assert_eq!(s.feedback_failures(), 2);
    }

    #[test]
    fn bound_directive_feedback_retunes_delta() {
        let mut s = source(0.5);
        s.feedback(0, &WireMessage::Bound { delta: 0.125 }.encode());
        assert_eq!(s.delta(), 0.125);
        assert_eq!(s.bound_directives(), 1);
        // A directive is valid feedback, not a failure.
        assert_eq!(s.feedback_failures(), 0);
    }

    #[test]
    fn bound_directive_works_alongside_acks() {
        // On a recovering source the reverse channel carries both acks and
        // bound directives; each must be dispatched to its own handler.
        let mut s = recovering_source(0.5, 3);
        let _ = s.observe(0, &[9.0]).expect("jump syncs");
        s.feedback(1, &WireMessage::Ack { seq: 1 }.encode());
        s.feedback(1, &WireMessage::Bound { delta: 0.25 }.encode());
        assert_eq!(s.acked_seq(), 1);
        assert_eq!(s.delta(), 0.25);
        assert_eq!(s.bound_directives(), 1);
        assert_eq!(s.feedback_failures(), 0);
    }

    #[test]
    fn recovery_off_encodes_legacy_unsequenced_bytes() {
        let mut s = source(0.5);
        let bytes = s.observe(0, &[9.0]).expect("jump syncs");
        assert!(SyncMessage::decode(&bytes).is_ok(), "must stay plain v2");
    }
}
