//! Sharded multi-stream ingest: per-shard worker threads draining framed
//! batches into server endpoints.
//!
//! The paper's server answers queries for *millions* of streams; after PR 1
//! made a single filter tick allocation-free, the bottleneck moved to the
//! server's ingest path, which drove one endpoint at a time from one
//! thread. This module multiplexes it:
//!
//! ```text
//!                 ┌── bounded channel ──▶ shard 0: {id % S == 0} endpoints
//!  tick batch ────┤── bounded channel ──▶ shard 1: {id % S == 1} endpoints
//!  (FrameBatch)   └── bounded channel ──▶ …          each owns its map
//!                        ◀──────────── recycled buffers ─────────────
//! ```
//!
//! Each worker **owns** its `stream_id → ServerEndpoint` map — no locks on
//! the hot path, in the spirit of share-nothing per-core stream engines.
//! Determinism falls out of three facts: the `stream_id % shards` route is
//! stable, each shard's channel is FIFO so a stream's ticks arrive in order,
//! and endpoints are independent so cross-endpoint interleaving cannot
//! change any filter's arithmetic. The sharded pipeline is therefore
//! bit-identical to [`SequentialIngest`] for any shard count — a property
//! the proptests and `bench_ingest` both enforce.
//!
//! Tick semantics match the simulator exactly: one [`IngestPipeline::ingest_tick`]
//! call advances **every** endpoint one predict step (via
//! [`ServerEndpoint::advance`]) after enqueueing that tick's messages, just
//! like [`kalstream_sim::Consumer::estimate`]. [`IngestPipeline::flush`] is
//! the barrier that makes "all ticks sent so far are applied" observable.

use std::collections::HashMap;
use std::thread::JoinHandle;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use kalstream_sim::Consumer;

use kalstream_obs::{Histogram, Instrument, Scope, SpanTimer};

use crate::batch_ingest::BatchShardEngine;
use crate::frame::{BufferPool, FrameBatch, FrameDecoder};
use crate::server::{EndpointState, ServerEndpoint};

/// Per-shard job queue depth. Deep enough that the router can run ahead of
/// a momentarily slow shard, small enough to bound memory and exert
/// backpressure.
const QUEUE_DEPTH: usize = 64;

/// The stream→shard routing function, made explicit so a resize can change
/// it atomically at a tick barrier.
///
/// `salt == 0` is exactly the historical `stream_id % shards` route — every
/// pre-elastic pipeline uses it, and it stays byte-for-byte stable. A
/// non-zero salt mixes the id through SplitMix64 first, so a *rebalance*
/// (same shard count, new salt) genuinely reshuffles placement instead of
/// reproducing the old partition.
///
/// Routing never touches filter arithmetic: endpoints are independent and
/// each stream's ticks stay FIFO within whichever shard owns it, so *any*
/// assignment — and any sequence of reassignments at tick barriers — is
/// bit-identical to the sequential reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Number of shards routed across. Always ≥ 1.
    pub shards: usize,
    /// Hash salt; `0` selects the plain `id % shards` route.
    pub salt: u64,
}

impl ShardAssignment {
    /// The historical modulo route over `shards` shards.
    ///
    /// # Panics
    /// Panics when `shards` is 0.
    pub fn modulo(shards: usize) -> Self {
        assert!(shards > 0, "assignment needs at least one shard");
        ShardAssignment { shards, salt: 0 }
    }

    /// A salted-hash route: same shard count, different placement per salt.
    ///
    /// # Panics
    /// Panics when `shards` is 0.
    pub fn salted(shards: usize, salt: u64) -> Self {
        assert!(shards > 0, "assignment needs at least one shard");
        ShardAssignment { shards, salt }
    }

    /// Shard owning `stream_id` under this assignment.
    pub fn route(&self, stream_id: u32) -> usize {
        if self.salt == 0 {
            stream_id as usize % self.shards
        } else {
            (splitmix64(stream_id as u64 ^ self.salt) % self.shards as u64) as usize
        }
    }
}

/// SplitMix64 finalizer — a cheap, well-mixed 64-bit permutation (public
/// domain constants from Steele et al.), used to spread consecutive stream
/// ids across shards under salted assignments.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What one [`ResizableIngest::reassign`] did: the assignment it moved
/// from/to and how long ingest was stalled at the drain barrier.
#[derive(Debug, Clone, Copy)]
pub struct ResizeTransition {
    /// Assignment before the resize.
    pub from: ShardAssignment,
    /// Assignment after the resize.
    pub to: ShardAssignment,
    /// Wall-clock time the ingest path was quiesced (drain + respawn).
    /// Wall-clock, so reported in artifacts but never in deterministic
    /// experiment tables.
    pub stall: std::time::Duration,
}

enum ShardJob {
    /// One tick's frames for this shard (possibly empty — every endpoint
    /// still takes its predict step).
    Tick(BytesMut),
    /// Barrier: acknowledge once every prior job has been applied.
    Flush,
    /// Capture every endpoint's [`EndpointState`] and send it back. Because
    /// each worker drains its queue in order, the capture lands exactly at
    /// the tick boundary where the job was enqueued — the durability
    /// layer's snapshot barrier, without stopping the other shards.
    Snapshot(Sender<Vec<(u32, EndpointState)>>),
}

/// What a shard worker steps each tick: the plain per-endpoint map, or the
/// fleet-batch dispatch engine. Both expose identical tick semantics, so
/// the worker loop is shared — and for the same traffic both produce
/// bit-identical endpoints (the batch engine's contract).
pub(crate) enum ShardEngine {
    /// One [`ServerEndpoint::advance`] per stream per tick.
    Plain(HashMap<u32, ServerEndpoint>),
    /// Same-model groups advanced through structure-of-arrays kernels.
    Batched(BatchShardEngine),
}

impl ShardEngine {
    fn len(&self) -> usize {
        match self {
            ShardEngine::Plain(map) => map.len(),
            ShardEngine::Batched(engine) => engine.len(),
        }
    }

    /// Enqueues one decoded message; `false` for unknown streams.
    fn enqueue_wire(&mut self, stream_id: u32, msg: crate::wire::WireMessage) -> bool {
        match self {
            ShardEngine::Plain(map) => match map.get_mut(&stream_id) {
                Some(ep) => {
                    ep.enqueue_wire(msg);
                    true
                }
                None => false,
            },
            ShardEngine::Batched(engine) => engine.enqueue_wire(stream_id, msg),
        }
    }

    /// Advances every endpoint one tick.
    fn advance_tick(&mut self) {
        match self {
            ShardEngine::Plain(map) => {
                for ep in map.values_mut() {
                    ep.advance();
                }
            }
            ShardEngine::Batched(engine) => engine.advance_tick(),
        }
    }

    /// Stream ids owned by this engine, ascending — the deterministic poll
    /// order for feedback (cross-stream feedback order must not depend on
    /// `HashMap` iteration).
    fn sorted_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = match self {
            ShardEngine::Plain(map) => map.keys().copied().collect(),
            ShardEngine::Batched(engine) => engine.stream_ids().collect(),
        };
        ids.sort_unstable();
        ids
    }

    /// Drains one stream's due feedback (acks, then bound directives) into
    /// `sink` — the ingest-mode twin of the session loop's
    /// `while let Some(fb) = consumer.poll_feedback(now)`.
    fn poll_stream_feedback(&mut self, id: u32, now: u64, sink: &mut dyn FnMut(Bytes)) {
        let ep = match self {
            ShardEngine::Plain(map) => map.get_mut(&id),
            ShardEngine::Batched(engine) => engine.endpoint_mut(id),
        };
        if let Some(ep) = ep {
            while let Some(payload) = ep.poll_feedback(now) {
                sink(payload);
            }
        }
    }

    /// Captures every endpoint's protocol state, sorted by stream id,
    /// without consuming the engine (batched lanes are overlaid onto their
    /// endpoints' captured filter state — see
    /// [`BatchShardEngine::snapshot_states`]).
    fn snapshot_states(&self) -> Vec<(u32, EndpointState)> {
        match self {
            ShardEngine::Plain(map) => {
                let mut states: Vec<(u32, EndpointState)> =
                    map.iter().map(|(id, ep)| (*id, ep.state())).collect();
                states.sort_by_key(|(id, _)| *id);
                states
            }
            ShardEngine::Batched(engine) => engine.snapshot_states(),
        }
    }

    /// Tears down into endpoints sorted by stream id (batched lanes are
    /// restored into their endpoint filters first).
    fn finish(self) -> Vec<(u32, ServerEndpoint)> {
        match self {
            ShardEngine::Plain(map) => {
                let mut endpoints: Vec<(u32, ServerEndpoint)> = map.into_iter().collect();
                endpoints.sort_by_key(|(id, _)| *id);
                endpoints
            }
            ShardEngine::Batched(engine) => engine.finish(),
        }
    }
}

/// What one shard worker did, reported at [`IngestPipeline::finish`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Report index within the run: the shard index for a fixed-shape run,
    /// or the worker-lifetime index (retired generations first) after
    /// resizes.
    pub shard: usize,
    /// Endpoints owned by this shard.
    pub streams: usize,
    /// Ticks processed.
    pub ticks: u64,
    /// Messages decoded and enqueued to endpoints.
    pub messages: u64,
    /// Wire bytes drained (frame headers + bodies).
    pub bytes_in: u64,
    /// Frames or bodies that failed to decode.
    pub decode_failures: u64,
    /// Frames addressed to a stream this shard has never heard of.
    pub unknown_streams: u64,
    /// Sequenced syncs dropped as stale/duplicate across this shard's
    /// endpoints (the v3 delivery layer's gap/duplicate detection).
    pub stale_drops: u64,
    /// Seconds this shard's worker spent *on CPU* (decoding + advancing
    /// endpoints), excluding time blocked on its queue — per-thread CPU time
    /// from `/proc/thread-self/schedstat` where the kernel exposes it (wall
    /// clock inside jobs otherwise, which over-counts when workers are
    /// preempted). The maximum across shards is the pipeline's critical
    /// path: on a machine with one core per shard, wall time converges to
    /// it, so `total_messages / max(busy_secs)` is the capacity throughput
    /// `bench_ingest` reports next to measured wall-clock throughput.
    pub busy_secs: f64,
    /// Recycled-buffer hand-backs that failed because the router side of
    /// the recycle channel was already gone. Pre-fix this was a silent
    /// `let _ =`; a non-zero count during steady state means pooled buffers
    /// are being dropped (and re-allocated) instead of reused.
    pub recycle_drops: u64,
    /// Feedback payloads (acks, bound directives) polled off this shard's
    /// endpoints onto the feedback channel. Zero unless the pipeline was
    /// started with [`IngestPipeline::start_with_feedback`].
    pub feedback_out: u64,
    /// Feedback payloads dropped because the feedback receiver was already
    /// gone. Like `recycle_drops`, counted rather than swallowed: during a
    /// drain, a non-zero count here is lost acks/bounds, not clean teardown.
    pub feedback_drops: u64,
    /// Deepest this shard's job queue ever got, in jobs, *including* the
    /// one being processed. The aggregated number already existed implicitly
    /// (QUEUE_DEPTH bounds it); exporting it per shard is what lets the
    /// elastic controller — and a dashboard — see the imbalance a rebalance
    /// fixes rather than just "some shard was busy".
    pub queue_high_water: u64,
    /// Per-tick processing span (decode + endpoint advance) in log₂-
    /// bucketed nanoseconds. Wall-clock, so reported in snapshots but never
    /// folded into deterministic experiment tables.
    pub tick_ns: Histogram,
}

impl Instrument for ShardReport {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("streams", self.streams as u64);
        scope.counter("ticks", self.ticks);
        scope.counter("messages", self.messages);
        scope.counter("bytes_in", self.bytes_in);
        scope.counter("decode_failures", self.decode_failures);
        scope.counter("unknown_streams", self.unknown_streams);
        scope.counter("stale_drops", self.stale_drops);
        scope.counter("recycle_drops", self.recycle_drops);
        scope.counter("feedback_out", self.feedback_out);
        scope.counter("feedback_drops", self.feedback_drops);
        scope.gauge("busy_secs", self.busy_secs);
        scope.gauge("queue_high_water", self.queue_high_water as f64);
        scope.histogram("tick_ns", &self.tick_ns);
    }
}

struct ShardResult {
    report: ShardReport,
    endpoints: Vec<(u32, ServerEndpoint)>,
}

struct ShardHandle {
    tx: Sender<ShardJob>,
    ack_rx: Receiver<()>,
    handle: JoinHandle<ShardResult>,
}

/// Aggregate outcome of an ingest run.
#[derive(Debug)]
pub struct IngestResult {
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Every endpoint, sorted by stream id — the state a caller compares
    /// bit-for-bit against the sequential reference.
    pub endpoints: Vec<(u32, ServerEndpoint)>,
}

impl IngestResult {
    /// Total messages applied across shards.
    pub fn total_messages(&self) -> u64 {
        self.shards.iter().map(|s| s.messages).sum()
    }

    /// Total wire bytes drained across shards.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes_in).sum()
    }

    /// Total decode failures across shards.
    pub fn total_decode_failures(&self) -> u64 {
        self.shards.iter().map(|s| s.decode_failures).sum()
    }
}

impl Instrument for IngestResult {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("messages", self.total_messages());
        scope.counter("bytes_in", self.total_bytes());
        scope.counter("decode_failures", self.total_decode_failures());
        for shard in &self.shards {
            scope.observe(&format!("shard.{}", shard.shard), shard);
        }
    }
}

/// The sharded ingest pipeline: spawns one worker thread per shard, routes
/// framed tick batches to them, and joins them back into an [`IngestResult`].
pub struct IngestPipeline {
    shards: Vec<ShardHandle>,
    batches: Vec<FrameBatch>,
    pool: BufferPool,
    recycle_rx: Receiver<BytesMut>,
    /// Kept so [`IngestPipeline::reassign`] can hand fresh worker
    /// generations the same recycle channel the buffer pool drains.
    recycle_tx: Sender<BytesMut>,
    /// The live stream→shard route, shared by the router and worker spawn.
    assignment: ShardAssignment,
    /// Whether shards run the fleet-batch engine (preserved across resizes).
    batched: bool,
    /// Feedback channel handed to every worker generation, when enabled.
    feedback: Option<Sender<(u32, Bytes)>>,
    /// Reports from worker generations retired by earlier resizes; folded
    /// into the final [`IngestResult`] so totals stay comparable to the
    /// sequential reference across any resize history.
    retired: Vec<ShardReport>,
    router: FrameDecoder,
    /// Buffers minted so far. Capped at [`IngestPipeline::buffer_cap`]: once
    /// the population covers every queue slot plus in-progress batches, the
    /// router *waits* for a recycled buffer instead of minting a fresh
    /// (zero-capacity) one. That both bounds pipeline memory and lets every
    /// buffer in rotation reach the workload's high-water capacity — the
    /// property that makes steady-state ticks allocation-free.
    outstanding: usize,
    /// Largest batch (wire bytes) sent to any shard so far. Every buffer
    /// handed out is reserved to this size, so after a new high-water tick
    /// the whole population converges within one rotation instead of
    /// stragglers paying growth reallocs arbitrarily late.
    high_water: usize,
    /// `(batched, scalar)` stream counts, recorded at start for batched
    /// pipelines (`None` for plain ones).
    coverage: Option<(usize, usize)>,
}

impl IngestPipeline {
    /// Spawns `shards` workers and distributes `endpoints` among them by
    /// `stream_id % shards`.
    ///
    /// # Panics
    /// Panics when `shards` is 0.
    pub fn start(shards: usize, endpoints: Vec<(u32, ServerEndpoint)>) -> Self {
        IngestPipeline::start_with(shards, endpoints, false)
    }

    /// Like [`IngestPipeline::start`], but each shard steps its eligible
    /// endpoints through the fleet-batch dispatch engine
    /// ([`crate::BatchShardEngine`]) — bit-identical output, one
    /// structure-of-arrays predict per same-model group per tick instead of
    /// one filter call per stream. [`IngestPipeline::coverage`] reports how
    /// many streams took the batch path.
    ///
    /// # Panics
    /// Panics when `shards` is 0.
    pub fn start_batched(shards: usize, endpoints: Vec<(u32, ServerEndpoint)>) -> Self {
        IngestPipeline::start_with(shards, endpoints, true)
    }

    /// Like [`IngestPipeline::start`]/[`IngestPipeline::start_batched`],
    /// but each shard also polls its endpoints' feedback (acks, bound
    /// directives) after every tick's advance and ships `(stream_id,
    /// payload)` pairs out the returned channel — the hook a network server
    /// uses to route acks back to source connections.
    ///
    /// Ordering: within one stream, feedback arrives in poll order (acks
    /// before bounds, per [`ServerEndpoint`]'s contract); across streams of
    /// one shard, ascending stream id per tick; across shards, unordered
    /// (streams never span shards, so no consumer can observe it). The
    /// channel is unbounded so a slow drain can never deadlock the flush
    /// barrier; [`IngestPipeline::flush`] guarantees all feedback for
    /// flushed ticks is in the channel when it returns.
    ///
    /// # Panics
    /// Panics when `shards` is 0.
    pub fn start_with_feedback(
        shards: usize,
        endpoints: Vec<(u32, ServerEndpoint)>,
        batched: bool,
    ) -> (Self, Receiver<(u32, Bytes)>) {
        let (tx, rx) = unbounded();
        let pipe = IngestPipeline::start_inner(
            ShardAssignment::modulo(shards),
            endpoints,
            batched,
            Some(tx),
        );
        (pipe, rx)
    }

    /// Spawns a pipeline in an exact [`ShardAssignment`] — shard count *and*
    /// placement salt. This is how a restarted process re-enters the shape
    /// an elastic run resized into: recovery hands it the assignment the
    /// crashed run last held, and routing resumes byte-for-byte.
    ///
    /// # Panics
    /// Panics when `assignment.shards` is 0.
    pub fn start_assigned(
        assignment: ShardAssignment,
        endpoints: Vec<(u32, ServerEndpoint)>,
    ) -> Self {
        IngestPipeline::start_inner(assignment, endpoints, false, None)
    }

    fn start_with(shards: usize, endpoints: Vec<(u32, ServerEndpoint)>, batched: bool) -> Self {
        IngestPipeline::start_inner(ShardAssignment::modulo(shards), endpoints, batched, None)
    }

    fn start_inner(
        assignment: ShardAssignment,
        endpoints: Vec<(u32, ServerEndpoint)>,
        batched: bool,
        feedback: Option<Sender<(u32, Bytes)>>,
    ) -> Self {
        let shards = assignment.shards;
        assert!(shards > 0, "ingest needs at least one shard");
        let (recycle_tx, recycle_rx) = unbounded();
        let (handles, coverage) =
            spawn_workers(assignment, endpoints, batched, &feedback, &recycle_tx);
        IngestPipeline {
            shards: handles,
            batches: (0..shards).map(|_| FrameBatch::new()).collect(),
            pool: BufferPool::new(),
            recycle_rx,
            recycle_tx,
            assignment,
            batched,
            feedback,
            retired: Vec::new(),
            router: FrameDecoder::new(),
            outstanding: 0,
            high_water: 0,
            coverage,
        }
    }

    /// `(batched, scalar)` stream counts across shards for a pipeline
    /// started with [`IngestPipeline::start_batched`]; `None` for the plain
    /// pipeline.
    pub fn coverage(&self) -> Option<(usize, usize)> {
        self.coverage
    }

    /// Maximum buffers in circulation. Deliberately small — a few ticks of
    /// run-ahead per shard: a small population circulates every buffer
    /// constantly, so all of them reach the workload's high-water capacity
    /// almost immediately and stay there (a large population leaves
    /// undersized stragglers parked in queues that surface — and pay a
    /// growth realloc — arbitrarily late).
    fn buffer_cap(&self) -> usize {
        self.shards.len() * 4
    }

    /// A cleared buffer for the next batch: pooled if available, freshly
    /// minted while under the population cap, otherwise recycled — blocking
    /// until a worker hands one back (bounded, since workers always recycle
    /// their tick buffers before advancing endpoints).
    fn next_buffer(&mut self) -> BytesMut {
        while let Ok(buf) = self.recycle_rx.try_recv() {
            self.pool.put(buf);
        }
        let mut buf = if !self.pool.is_empty() {
            self.pool.get()
        } else if self.outstanding < self.buffer_cap() {
            self.outstanding += 1;
            BytesMut::new()
        } else {
            let mut buf = self.recycle_rx.recv().expect("ingest shard worker died");
            buf.clear();
            buf
        };
        buf.reserve(self.high_water);
        buf
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The live stream→shard assignment.
    pub fn assignment(&self) -> ShardAssignment {
        self.assignment
    }

    /// Jobs currently queued per shard (the job being processed excluded) —
    /// the instantaneous imbalance signal the elastic controller's
    /// rebalancer reads. Snapshot semantics: values can be stale by the time
    /// the caller looks at them.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|shard| shard.tx.len()).collect()
    }

    /// Changes the shard count, keeping the current salt — the controller's
    /// grow/shrink primitive. See [`IngestPipeline::reassign`].
    ///
    /// # Panics
    /// Panics when `shards` is 0 or a worker panicked.
    pub fn resize(&mut self, shards: usize) -> ResizeTransition {
        assert!(shards > 0, "ingest needs at least one shard");
        self.reassign(ShardAssignment {
            shards,
            salt: self.assignment.salt,
        })
    }

    /// Moves the pipeline to a new stream→shard assignment at a drain
    /// barrier: closes every shard's queue (each worker applies all
    /// in-flight ticks, then hands back its endpoints — the quiesce point),
    /// regroups the endpoints under `to`, and restarts workers. Retired
    /// workers' reports are folded into the final [`IngestResult`], so
    /// totals stay comparable to the sequential reference across any resize
    /// history.
    ///
    /// Bit-identity is preserved by construction: reassignment happens at a
    /// tick boundary, every stream's ticks stay FIFO within whichever shard
    /// owns it, and endpoints are independent — so no filter's arithmetic
    /// can observe the move. A same-assignment call is a no-op.
    ///
    /// # Panics
    /// Panics when a worker panicked.
    pub fn reassign(&mut self, to: ShardAssignment) -> ResizeTransition {
        let from = self.assignment;
        if to == from {
            return ResizeTransition {
                from,
                to,
                stall: std::time::Duration::ZERO,
            };
        }
        let start = std::time::Instant::now();
        let mut endpoints = Vec::new();
        for shard in self.shards.drain(..) {
            drop(shard.tx); // closes the queue; the worker drains, then exits
            let result = shard.handle.join().expect("ingest shard worker panicked");
            self.retired.push(result.report);
            endpoints.extend(result.endpoints);
        }
        endpoints.sort_by_key(|(id, _)| *id);
        let (handles, coverage) = spawn_workers(
            to,
            endpoints,
            self.batched,
            &self.feedback,
            &self.recycle_tx,
        );
        self.shards = handles;
        self.coverage = coverage;
        self.assignment = to;
        // Match the router-side batch set to the new shard count. Shrinks
        // park the spare buffers in the pool (they keep their high-water
        // capacity); grows start empty like at pipeline start.
        while self.batches.len() > to.shards {
            let batch = self.batches.pop().expect("length checked above");
            self.pool.put(batch.into_buffer());
        }
        while self.batches.len() < to.shards {
            self.batches.push(FrameBatch::new());
        }
        ResizeTransition {
            from,
            to,
            stall: start.elapsed(),
        }
    }

    /// Frames whose *headers* were malformed at the router (body failures
    /// are counted by the shard that owned the frame).
    pub fn router_decode_failures(&self) -> u64 {
        self.router.decode_failures()
    }

    /// Routes one tick's framed traffic to the shards and advances every
    /// endpoint one tick. `wire` is a batch as assembled by
    /// [`FrameBatch`]; it may be empty (a quiet tick still predicts).
    ///
    /// Returns after *enqueueing* — shards apply asynchronously; call
    /// [`IngestPipeline::flush`] when "applied" must be observable.
    pub fn ingest_tick(&mut self, wire: &[u8]) {
        let shards = self.shards.len();
        let batches = &mut self.batches;
        let assignment = self.assignment;
        self.router.for_each_frame(wire, |frame| {
            batches[assignment.route(frame.stream_id)].push_raw(frame.stream_id, frame.body);
        });
        for shard in 0..shards {
            let fresh = FrameBatch::from_buffer(self.next_buffer());
            let batch = std::mem::replace(&mut self.batches[shard], fresh);
            self.high_water = self.high_water.max(batch.wire_len());
            self.shards[shard]
                .tx
                .send(ShardJob::Tick(batch.into_buffer()))
                .expect("ingest shard worker died");
        }
    }

    /// Barrier: blocks until every shard has applied all previously
    /// ingested ticks.
    pub fn flush(&mut self) {
        for shard in &self.shards {
            shard
                .tx
                .send(ShardJob::Flush)
                .expect("ingest shard worker died");
        }
        for shard in &self.shards {
            shard.ack_rx.recv().expect("ingest shard worker died");
        }
    }

    /// Captures every endpoint's [`EndpointState`] at the current tick
    /// boundary, sorted by stream id — the durability layer's snapshot
    /// hook. The snapshot job rides each shard's ordered queue, so the
    /// capture observes exactly the ticks ingested before this call and
    /// none after; the call blocks until every shard has replied (it is a
    /// flush barrier as a side effect).
    pub fn snapshot_states(&mut self) -> Vec<(u32, EndpointState)> {
        let replies: Vec<Receiver<Vec<(u32, EndpointState)>>> = self
            .shards
            .iter()
            .map(|shard| {
                let (tx, rx) = bounded(1);
                shard
                    .tx
                    .send(ShardJob::Snapshot(tx))
                    .expect("ingest shard worker died");
                rx
            })
            .collect();
        let mut states: Vec<(u32, EndpointState)> = replies
            .into_iter()
            .flat_map(|rx| rx.recv().expect("ingest shard worker died"))
            .collect();
        states.sort_by_key(|(id, _)| *id);
        states
    }

    /// Flushes, shuts the workers down, and collects their reports and
    /// endpoints (sorted by stream id). After resizes the result carries one
    /// report per worker *lifetime* — retired generations first, then the
    /// final one — renumbered sequentially so scoped metric names stay
    /// unique.
    pub fn finish(mut self) -> IngestResult {
        self.flush();
        let mut reports = std::mem::take(&mut self.retired);
        let mut endpoints = Vec::new();
        for shard in self.shards.drain(..) {
            drop(shard.tx); // closes the channel; the worker's recv loop ends
            let result = shard.handle.join().expect("ingest shard worker panicked");
            reports.push(result.report);
            endpoints.extend(result.endpoints);
        }
        for (i, report) in reports.iter_mut().enumerate() {
            report.shard = i;
        }
        endpoints.sort_by_key(|(id, _)| *id);
        IngestResult {
            shards: reports,
            endpoints,
        }
    }
}

/// Groups `endpoints` under `assignment` and spawns one worker per shard.
/// Shared by pipeline start and [`IngestPipeline::reassign`] so both
/// generations are built by exactly the same code path. Returns the shard
/// handles and the batch-path coverage (`None` for plain pipelines).
fn spawn_workers(
    assignment: ShardAssignment,
    endpoints: Vec<(u32, ServerEndpoint)>,
    batched: bool,
    feedback: &Option<Sender<(u32, Bytes)>>,
    recycle_tx: &Sender<BytesMut>,
) -> (Vec<ShardHandle>, Option<(usize, usize)>) {
    let mut groups: Vec<Vec<(u32, ServerEndpoint)>> =
        (0..assignment.shards).map(|_| Vec::new()).collect();
    for (id, ep) in endpoints {
        groups[assignment.route(id)].push((id, ep));
    }
    let mut coverage = batched.then_some((0usize, 0usize));
    let engines: Vec<ShardEngine> = groups
        .into_iter()
        .map(|group| {
            if batched {
                let engine = BatchShardEngine::new(group);
                if let Some(c) = coverage.as_mut() {
                    let (b, s) = engine.coverage();
                    c.0 += b;
                    c.1 += s;
                }
                ShardEngine::Batched(engine)
            } else {
                ShardEngine::Plain(group.into_iter().collect())
            }
        })
        .collect();
    let handles = engines
        .into_iter()
        .enumerate()
        .map(|(shard, engine)| {
            let (tx, rx) = bounded(QUEUE_DEPTH);
            let (ack_tx, ack_rx) = bounded(1);
            let recycle = recycle_tx.clone();
            let feedback = feedback.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ingest-shard-{shard}"))
                .spawn(move || shard_worker(shard, rx, ack_tx, recycle, feedback, engine))
                .expect("failed to spawn shard worker");
            ShardHandle { tx, ack_rx, handle }
        })
        .collect();
    (handles, coverage)
}

/// On-CPU nanoseconds of the calling thread so far — field 1 of
/// `/proc/thread-self/schedstat` — when the kernel exposes it. Unlike wall
/// clock, this excludes time the thread was preempted or blocked, which is
/// what makes per-shard busy time meaningful on machines with fewer cores
/// than shards.
fn thread_cpu_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    stat.split_whitespace().next()?.parse().ok()
}

fn shard_worker(
    shard: usize,
    rx: Receiver<ShardJob>,
    ack_tx: Sender<()>,
    recycle: Sender<BytesMut>,
    feedback: Option<Sender<(u32, Bytes)>>,
    mut engine: ShardEngine,
) -> ShardResult {
    let mut decoder = FrameDecoder::new();
    let streams = engine.len();
    // Cached once: poll order must be deterministic and the per-tick loop
    // allocation-free. Shard membership never changes after start.
    let feedback_ids = feedback.as_ref().map(|_| engine.sorted_ids());
    let mut ticks = 0u64;
    let mut messages = 0u64;
    let mut bytes_in = 0u64;
    let mut unknown_streams = 0u64;
    let mut recycle_drops = 0u64;
    let mut feedback_out = 0u64;
    let mut feedback_drops = 0u64;
    let mut tick_ns = Histogram::new();
    let mut queue_high_water = 0u64;
    let cpu_start = thread_cpu_ns();
    let mut busy = std::time::Duration::ZERO;
    while let Ok(job) = rx.recv() {
        // Depth including the job just taken: what the router saw stacked
        // against this shard when it was deepest.
        queue_high_water = queue_high_water.max(rx.len() as u64 + 1);
        match job {
            ShardJob::Tick(buf) => {
                let span = SpanTimer::start();
                bytes_in += buf.len() as u64;
                decoder.for_each_wire_message(&buf, |id, msg| {
                    if engine.enqueue_wire(id, msg) {
                        messages += 1;
                    } else {
                        unknown_streams += 1;
                    }
                });
                // Hand the buffer back before the compute phase so the
                // router can reuse it while we advance filters. A failed
                // hand-back (router gone) must be counted, not swallowed:
                // in steady state it means the pool is leaking capacity.
                if recycle.send(buf).is_err() {
                    recycle_drops += 1;
                }
                engine.advance_tick();
                if let (Some(tx), Some(ids)) = (&feedback, &feedback_ids) {
                    for &id in ids {
                        engine.poll_stream_feedback(id, ticks, &mut |payload| {
                            // A closed receiver during drain is lost
                            // feedback — count it, never `let _` it away.
                            match tx.send((id, payload)) {
                                Ok(()) => feedback_out += 1,
                                Err(_) => feedback_drops += 1,
                            }
                        });
                    }
                }
                ticks += 1;
                busy += std::time::Duration::from_nanos(span.stop(&mut tick_ns));
            }
            ShardJob::Flush => {
                ack_tx
                    .send(())
                    .expect("ingest pipeline dropped its ack receiver");
            }
            ShardJob::Snapshot(reply) => {
                reply
                    .send(engine.snapshot_states())
                    .expect("ingest pipeline dropped its snapshot receiver");
            }
        }
    }
    let busy_secs = match (cpu_start, thread_cpu_ns()) {
        (Some(start), Some(end)) => (end - start) as f64 / 1e9,
        _ => busy.as_secs_f64(),
    };
    let endpoints = engine.finish();
    let stale_drops = endpoints
        .iter()
        .map(|(_, ep)| ep.delivery().stale_drops)
        .sum();
    ShardResult {
        report: ShardReport {
            shard,
            streams,
            ticks,
            messages,
            bytes_in,
            decode_failures: decoder.decode_failures(),
            unknown_streams,
            stale_drops,
            busy_secs,
            recycle_drops,
            feedback_out,
            feedback_drops,
            queue_high_water,
            tick_ns,
        },
        endpoints,
    }
}

/// The single-threaded reference: identical tick semantics to
/// [`IngestPipeline`], applied inline on the caller's thread. The sharded
/// pipeline must match this bit for bit — `bench_ingest` exits non-zero if
/// it ever doesn't.
pub struct SequentialIngest {
    endpoints: Vec<(u32, ServerEndpoint)>,
    index: HashMap<u32, usize>,
    decoder: FrameDecoder,
    ticks: u64,
    messages: u64,
    bytes_in: u64,
    unknown_streams: u64,
    busy: std::time::Duration,
    tick_ns: Histogram,
}

impl SequentialIngest {
    /// Builds the reference ingester over `endpoints`.
    pub fn new(mut endpoints: Vec<(u32, ServerEndpoint)>) -> Self {
        endpoints.sort_by_key(|(id, _)| *id);
        let index = endpoints
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i))
            .collect();
        SequentialIngest {
            endpoints,
            index,
            decoder: FrameDecoder::new(),
            ticks: 0,
            messages: 0,
            bytes_in: 0,
            unknown_streams: 0,
            busy: std::time::Duration::ZERO,
            tick_ns: Histogram::new(),
        }
    }

    /// Drains one tick's batch and advances every endpoint, synchronously.
    pub fn ingest_tick(&mut self, wire: &[u8]) {
        let span = SpanTimer::start();
        self.bytes_in += wire.len() as u64;
        let endpoints = &mut self.endpoints;
        let index = &self.index;
        let messages = &mut self.messages;
        let unknown = &mut self.unknown_streams;
        self.decoder
            .for_each_wire_message(wire, |id, msg| match index.get(&id) {
                Some(&i) => {
                    endpoints[i].1.enqueue_wire(msg);
                    *messages += 1;
                }
                None => *unknown += 1,
            });
        for (_, ep) in self.endpoints.iter_mut() {
            ep.advance();
        }
        self.ticks += 1;
        self.busy += std::time::Duration::from_nanos(span.stop(&mut self.tick_ns));
    }

    /// Captures every endpoint's [`EndpointState`], sorted by stream id —
    /// trivially a barrier, since this ingester applies ticks inline.
    pub fn snapshot_states(&self) -> Vec<(u32, EndpointState)> {
        self.endpoints
            .iter()
            .map(|(id, ep)| (*id, ep.state()))
            .collect()
    }

    /// Collects the run into the same shape as the sharded pipeline
    /// (one pseudo-shard).
    pub fn finish(self) -> IngestResult {
        let stale_drops = self
            .endpoints
            .iter()
            .map(|(_, ep)| ep.delivery().stale_drops)
            .sum();
        IngestResult {
            shards: vec![ShardReport {
                shard: 0,
                streams: self.endpoints.len(),
                ticks: self.ticks,
                messages: self.messages,
                bytes_in: self.bytes_in,
                decode_failures: self.decoder.decode_failures(),
                unknown_streams: self.unknown_streams,
                stale_drops,
                busy_secs: self.busy.as_secs_f64(),
                recycle_drops: 0,
                feedback_out: 0,
                feedback_drops: 0,
                queue_high_water: 0,
                tick_ns: self.tick_ns,
            }],
            endpoints: self.endpoints,
        }
    }
}

/// Anything that can drain one tick's framed batch — implemented by both
/// the sharded pipeline and the sequential reference so callers (the sim
/// bridge, `bench_ingest`) can swap them behind one shape.
pub trait TickIngest {
    /// Drains one tick's batch and advances every endpoint one tick.
    fn ingest_tick(&mut self, wire: &[u8]);
}

impl TickIngest for IngestPipeline {
    fn ingest_tick(&mut self, wire: &[u8]) {
        IngestPipeline::ingest_tick(self, wire);
    }
}

impl TickIngest for SequentialIngest {
    fn ingest_tick(&mut self, wire: &[u8]) {
        SequentialIngest::ingest_tick(self, wire);
    }
}

/// Anything whose endpoint fleet can be captured as plain
/// [`EndpointState`] values at a tick boundary — the hook the durability
/// layer snapshots through. Both ingesters implement it with identical
/// semantics: states sorted by stream id, observing exactly the ticks
/// ingested so far.
pub trait SnapshotSource {
    /// Captures every endpoint's state at the current tick boundary,
    /// sorted by stream id. For the sharded pipeline this is also a flush
    /// barrier.
    fn snapshot_states(&mut self) -> Vec<(u32, EndpointState)>;
}

impl SnapshotSource for IngestPipeline {
    fn snapshot_states(&mut self) -> Vec<(u32, EndpointState)> {
        IngestPipeline::snapshot_states(self)
    }
}

impl SnapshotSource for SequentialIngest {
    fn snapshot_states(&mut self) -> Vec<(u32, EndpointState)> {
        SequentialIngest::snapshot_states(self)
    }
}

/// Anything whose stream→shard assignment can be changed at a tick barrier
/// — the hook the elastic controller resizes through. Implementations must
/// guarantee the move is invisible to filter arithmetic: after any sequence
/// of `reassign` calls, final endpoint state is bit-identical to a run that
/// never resized.
pub trait ResizableIngest: TickIngest {
    /// The live stream→shard assignment.
    fn assignment(&self) -> ShardAssignment;

    /// Quiesces at a tick barrier and moves to `to`. Returns what actually
    /// happened — implementations that cannot resize (the sequential
    /// reference) report an unchanged assignment.
    fn reassign(&mut self, to: ShardAssignment) -> ResizeTransition;

    /// Live per-shard job-queue depths, when the implementation has worker
    /// queues to measure — the controller's timing-dependent pressure
    /// signal. Empty for inline ingesters. Snapshot semantics.
    fn queue_depths(&self) -> Vec<usize> {
        Vec::new()
    }
}

impl ResizableIngest for IngestPipeline {
    fn assignment(&self) -> ShardAssignment {
        IngestPipeline::assignment(self)
    }

    fn reassign(&mut self, to: ShardAssignment) -> ResizeTransition {
        IngestPipeline::reassign(self, to)
    }

    fn queue_depths(&self) -> Vec<usize> {
        IngestPipeline::queue_depths(self)
    }
}

impl ResizableIngest for SequentialIngest {
    fn assignment(&self) -> ShardAssignment {
        ShardAssignment::modulo(1)
    }

    /// The sequential reference has no workers to restart; reassigning it
    /// is a no-op that stays at one pseudo-shard.
    fn reassign(&mut self, _to: ShardAssignment) -> ResizeTransition {
        let unchanged = ShardAssignment::modulo(1);
        ResizeTransition {
            from: unchanged,
            to: unchanged,
            stall: std::time::Duration::ZERO,
        }
    }
}

/// Bridges the simulator's ingest mode ([`kalstream_sim::IngestSink`]) onto
/// a framed ingester: pushes accumulate into a pooled [`FrameBatch`]; the
/// end-of-tick hook drains the batch into the wrapped ingester.
pub struct FramingSink<I: TickIngest> {
    batch: FrameBatch,
    inner: I,
}

impl<I: TickIngest> FramingSink<I> {
    /// Wraps an ingester.
    pub fn new(inner: I) -> Self {
        FramingSink {
            batch: FrameBatch::new(),
            inner,
        }
    }

    /// Unwraps the ingester (to call its `finish`).
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: TickIngest> kalstream_sim::IngestSink for FramingSink<I> {
    fn push(&mut self, stream_id: u32, payload: &bytes::Bytes) {
        self.batch.push_raw(stream_id, payload);
    }

    fn end_tick(&mut self) {
        self.inner.ingest_tick(self.batch.as_bytes());
        self.batch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBatch;
    use crate::wire::SyncMessage;
    use crate::{ProtocolConfig, SessionSpec, StreamSession};
    use kalstream_sim::Producer;

    /// Builds `n` scalar sessions and a recorded framed log of `ticks`
    /// ticks driven by deterministic per-stream sinusoids.
    fn record_log(n: u32, ticks: usize) -> (Vec<(u32, ServerEndpoint)>, Vec<Vec<u8>>) {
        let mut sources = Vec::new();
        let mut servers = Vec::new();
        for id in 0..n {
            let config = ProtocolConfig::new(0.25).unwrap();
            let StreamSession { source, server } =
                SessionSpec::default_scalar(0.0, config).unwrap().build();
            sources.push((id, source));
            servers.push((id, server));
        }
        let mut log = Vec::with_capacity(ticks);
        for t in 0..ticks {
            let mut batch = FrameBatch::new();
            for (id, source) in sources.iter_mut() {
                let v = (t as f64 * 0.1 + *id as f64).sin() * (1.0 + *id as f64 * 0.01);
                if let Some(payload) = source.observe(t as u64, &[v]) {
                    batch.push_raw(*id, &payload);
                }
            }
            log.push(batch.as_bytes().to_vec());
        }
        (servers, log)
    }

    fn filter_bits(ep: &ServerEndpoint) -> Vec<u64> {
        let f = ep.filter();
        f.state()
            .iter()
            .map(|v| v.to_bits())
            .chain(f.covariance().as_slice().iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn failed_recycle_handback_is_counted_not_swallowed() {
        // Pre-fix, a dead recycle channel made `let _ = recycle.send(buf)`
        // silently drop every pooled buffer; the worker must count it.
        let (tx, rx) = bounded(4);
        let (ack_tx, _ack_rx) = unbounded();
        let (recycle_tx, recycle_rx) = unbounded();
        drop(recycle_rx); // router gone: every hand-back fails
        tx.send(ShardJob::Tick(BytesMut::new())).unwrap();
        tx.send(ShardJob::Tick(BytesMut::new())).unwrap();
        drop(tx);
        let result = shard_worker(
            0,
            rx,
            ack_tx,
            recycle_tx,
            None,
            ShardEngine::Plain(HashMap::new()),
        );
        assert_eq!(result.report.recycle_drops, 2);
        assert_eq!(result.report.ticks, 2);
        assert_eq!(result.report.tick_ns.count(), 2, "every tick span recorded");
    }

    #[test]
    fn sharded_matches_sequential_bit_for_bit() {
        let (servers, log) = record_log(12, 60);
        let mut seq = SequentialIngest::new(servers.clone());
        for tick in &log {
            seq.ingest_tick(tick);
        }
        let seq_result = seq.finish();
        assert!(seq_result.total_messages() > 0, "log recorded no syncs");

        for shards in [1, 2, 3, 5, 8] {
            let mut pipe = IngestPipeline::start(shards, servers.clone());
            for tick in &log {
                pipe.ingest_tick(tick);
            }
            let result = pipe.finish();
            assert_eq!(result.total_messages(), seq_result.total_messages());
            assert_eq!(result.endpoints.len(), seq_result.endpoints.len());
            for ((id_a, a), (id_b, b)) in result.endpoints.iter().zip(seq_result.endpoints.iter()) {
                assert_eq!(id_a, id_b);
                assert_eq!(
                    filter_bits(a),
                    filter_bits(b),
                    "stream {id_a} diverged at {shards} shards"
                );
                assert_eq!(a.syncs_applied(), b.syncs_applied());
            }
        }
    }

    #[test]
    fn batched_pipeline_matches_sequential_bit_for_bit() {
        // 2-state constant-velocity sessions are batch-eligible; the
        // batched pipeline must reproduce the sequential reference exactly
        // at every shard count, like the plain pipeline does.
        use kalstream_filter::models;
        use kalstream_linalg::Vector;
        let mut sources = Vec::new();
        let mut servers = Vec::new();
        for id in 0..12u32 {
            let config = ProtocolConfig::new(0.25).unwrap();
            let StreamSession { source, server } = SessionSpec::fixed(
                models::constant_velocity(1.0, 0.05, 0.1),
                Vector::zeros(2),
                1.0,
                config,
            )
            .unwrap()
            .build();
            sources.push((id, source));
            servers.push((id, server));
        }
        let mut log = Vec::new();
        for t in 0..60 {
            let mut batch = FrameBatch::new();
            for (id, source) in sources.iter_mut() {
                let v = (t as f64 * 0.1 + *id as f64).sin();
                if let Some(payload) = source.observe(t, &[v]) {
                    batch.push_raw(*id, &payload);
                }
            }
            log.push(batch.as_bytes().to_vec());
        }
        let mut seq = SequentialIngest::new(servers.clone());
        for tick in &log {
            seq.ingest_tick(tick);
        }
        let seq_result = seq.finish();
        assert!(seq_result.total_messages() > 0);

        for shards in [1, 2, 3, 5] {
            let mut pipe = IngestPipeline::start_batched(shards, servers.clone());
            assert_eq!(pipe.coverage(), Some((12, 0)));
            for tick in &log {
                pipe.ingest_tick(tick);
            }
            let result = pipe.finish();
            assert_eq!(result.total_messages(), seq_result.total_messages());
            for ((id_a, a), (id_b, b)) in result.endpoints.iter().zip(seq_result.endpoints.iter()) {
                assert_eq!(id_a, id_b);
                assert_eq!(
                    filter_bits(a),
                    filter_bits(b),
                    "stream {id_a} diverged at {shards} batched shards"
                );
                assert_eq!(a.syncs_applied(), b.syncs_applied());
            }
        }
    }

    #[test]
    fn plain_pipeline_reports_no_coverage() {
        let (servers, _) = record_log(2, 0);
        let pipe = IngestPipeline::start(2, servers);
        assert_eq!(pipe.coverage(), None);
        pipe.finish();
    }

    #[test]
    fn salted_route_spreads_and_modulo_route_is_stable() {
        let modulo = ShardAssignment::modulo(4);
        for id in 0..64u32 {
            assert_eq!(modulo.route(id), id as usize % 4);
        }
        let salted = ShardAssignment::salted(4, 7);
        let mut touched = [false; 4];
        for id in 0..64u32 {
            let shard = salted.route(id);
            assert!(shard < 4);
            touched[shard] = true;
        }
        assert!(
            touched.iter().all(|&t| t),
            "salted route left a shard empty"
        );
        // Different salts must produce different placements (that is what
        // makes a same-count rebalance a real reshuffle).
        let other = ShardAssignment::salted(4, 8);
        assert!((0..64u32).any(|id| salted.route(id) != other.route(id)));
    }

    #[test]
    fn resizes_at_tick_barriers_are_bit_identical_to_unresized() {
        let (servers, log) = record_log(12, 60);
        let mut seq = SequentialIngest::new(servers.clone());
        for tick in &log {
            seq.ingest_tick(tick);
        }
        let seq_result = seq.finish();
        assert!(seq_result.total_messages() > 0);

        for batched in [false, true] {
            // Grow, rebalance (same count, new salt), shrink, and shrink to
            // one — mid-run, at tick barriers. None of it may be visible in
            // the final filter state.
            let schedule = [
                (15usize, ShardAssignment::modulo(4)),
                (30, ShardAssignment::salted(4, 3)),
                (40, ShardAssignment::salted(2, 3)),
                (50, ShardAssignment::modulo(1)),
            ];
            let mut pipe = if batched {
                IngestPipeline::start_batched(1, servers.clone())
            } else {
                IngestPipeline::start(1, servers.clone())
            };
            for (t, tick) in log.iter().enumerate() {
                if let Some((_, to)) = schedule.iter().find(|(at, _)| *at == t) {
                    let transition = pipe.reassign(*to);
                    assert_eq!(transition.to, *to);
                    assert_eq!(pipe.assignment(), *to);
                    assert_eq!(pipe.shards(), to.shards);
                }
                pipe.ingest_tick(tick);
            }
            let result = pipe.finish();
            // One report per worker lifetime: 1 + 4 + 4 + 2 + 1.
            assert_eq!(result.shards.len(), 12);
            assert_eq!(result.total_messages(), seq_result.total_messages());
            let ticks: u64 = result.shards.iter().map(|s| s.ticks).sum();
            // Phase ticks × worker count per phase: 15·1 + 15·4 + 10·4 + 10·2 + 10·1.
            let expected_ticks: u64 = 15 + 15 * 4 + 10 * 4 + 10 * 2 + 10;
            assert_eq!(ticks, expected_ticks);
            for ((id_a, a), (id_b, b)) in result.endpoints.iter().zip(seq_result.endpoints.iter()) {
                assert_eq!(id_a, id_b);
                assert_eq!(
                    filter_bits(a),
                    filter_bits(b),
                    "stream {id_a} diverged across resizes (batched={batched})"
                );
                assert_eq!(a.syncs_applied(), b.syncs_applied());
            }
        }
    }

    #[test]
    fn same_assignment_reassign_is_a_noop() {
        let (servers, log) = record_log(4, 10);
        let mut pipe = IngestPipeline::start(2, servers);
        for tick in &log {
            pipe.ingest_tick(tick);
        }
        let transition = pipe.reassign(ShardAssignment::modulo(2));
        assert_eq!(transition.from, transition.to);
        assert_eq!(transition.stall, std::time::Duration::ZERO);
        let result = pipe.finish();
        assert_eq!(result.shards.len(), 2, "no retired generation");
    }

    #[test]
    fn queue_depths_and_high_water_are_reported() {
        let (servers, log) = record_log(6, 30);
        let mut pipe = IngestPipeline::start(3, servers);
        assert_eq!(pipe.queue_depths().len(), 3);
        for tick in &log {
            pipe.ingest_tick(tick);
        }
        assert!(pipe.queue_depths().iter().all(|&d| d <= QUEUE_DEPTH));
        let result = pipe.finish();
        for shard in &result.shards {
            assert!(
                shard.queue_high_water >= 1,
                "every worker saw at least one job"
            );
            assert!(shard.queue_high_water <= QUEUE_DEPTH as u64 + 1);
        }
        // The gauge must surface in the obs export path.
        let mut registry = kalstream_obs::Registry::new();
        registry.observe("ingest", &result);
        let snap = registry.snapshot();
        assert!(snap.gauge("ingest.shard.0.queue_high_water").is_some());
    }

    #[test]
    fn flush_makes_applied_work_observable() {
        let (servers, log) = record_log(4, 20);
        let expected: u64 = {
            let mut seq = SequentialIngest::new(servers.clone());
            for tick in &log {
                seq.ingest_tick(tick);
            }
            seq.finish().total_messages()
        };
        let mut pipe = IngestPipeline::start(2, servers);
        for tick in &log {
            pipe.ingest_tick(tick);
        }
        pipe.flush(); // after the barrier, all ticks are applied
        let result = pipe.finish();
        assert_eq!(result.total_messages(), expected);
        let ticks: Vec<u64> = result.shards.iter().map(|s| s.ticks).collect();
        assert!(
            ticks.iter().all(|&t| t == log.len() as u64),
            "ticks {ticks:?}"
        );
    }

    #[test]
    fn unknown_streams_are_counted_not_fatal() {
        let (servers, _) = record_log(2, 1);
        let mut batch = FrameBatch::new();
        batch.push(
            999, // no such stream
            &SyncMessage::Measurement {
                z: kalstream_linalg::Vector::from_slice(&[1.0]),
            },
        );
        let mut pipe = IngestPipeline::start(2, servers);
        pipe.ingest_tick(batch.as_bytes());
        let result = pipe.finish();
        assert_eq!(result.total_messages(), 0);
        let unknown: u64 = result.shards.iter().map(|s| s.unknown_streams).sum();
        assert_eq!(unknown, 1);
    }

    #[test]
    fn ingest_mode_matches_session_mode_bit_for_bit() {
        use kalstream_sim::{run_fleet_ingest, IngestStream, Session, SessionConfig};
        let sampler = |id: u32| {
            let mut t = 0.0f64;
            move |obs: &mut [f64], tru: &mut [f64]| {
                let v = (t * 0.07 + id as f64).sin() + 0.3 * (t * 0.31).cos();
                obs[0] = v;
                tru[0] = v;
                t += 1.0;
            }
        };
        let ticks = 80u64;

        // Session mode: each stream runs through Session::run.
        let mut session_servers = Vec::new();
        for id in 0..6u32 {
            let config = ProtocolConfig::new(0.2).unwrap();
            let StreamSession {
                mut source,
                mut server,
            } = SessionSpec::default_scalar(0.0, config).unwrap().build();
            Session::run(
                &SessionConfig::instant(ticks, 0.2),
                sampler(id),
                &mut source,
                &mut server,
                &mut (),
            );
            session_servers.push((id, server));
        }

        // Ingest mode: the same fleet multiplexed into a sequential ingester.
        let mut servers = Vec::new();
        let mut streams: Vec<IngestStream<'_>> = Vec::new();
        for id in 0..6u32 {
            let config = ProtocolConfig::new(0.2).unwrap();
            let StreamSession { source, server } =
                SessionSpec::default_scalar(0.0, config).unwrap().build();
            servers.push((id, server));
            streams.push(IngestStream {
                stream_id: id,
                producer: Box::new(source),
                sampler: Box::new(sampler(id)),
            });
        }
        let mut sink = FramingSink::new(SequentialIngest::new(servers));
        run_fleet_ingest(&mut streams, ticks, 0, &mut sink);
        let result = sink.into_inner().finish();

        assert!(result.total_messages() > 0);
        for ((id_a, a), (id_b, b)) in result.endpoints.iter().zip(&session_servers) {
            assert_eq!(id_a, id_b);
            assert_eq!(filter_bits(a), filter_bits(b), "stream {id_a} diverged");
            assert_eq!(a.syncs_applied(), b.syncs_applied());
        }
    }

    #[test]
    fn feedback_pipeline_ships_acks_and_stays_bit_identical() {
        use crate::wire::WireMessage;
        let seq_body = |seq: u64, v: f64| {
            WireMessage::Sync {
                seq: Some(seq),
                msg: SyncMessage::State {
                    x: kalstream_linalg::Vector::from_slice(&[v]),
                    p: kalstream_linalg::Matrix::scalar(1, 0.5),
                },
            }
            .encode()
        };
        let (servers, _) = record_log(6, 0);
        let mut seq = SequentialIngest::new(servers.clone());
        let mut log = Vec::new();
        for t in 0..4u64 {
            let mut batch = FrameBatch::new();
            for id in 0..6u32 {
                if (id as u64 + t).is_multiple_of(2) {
                    batch.push_raw(id, &seq_body(t + 1, t as f64 + id as f64));
                }
            }
            log.push(batch.as_bytes().to_vec());
        }
        for tick in &log {
            seq.ingest_tick(tick);
        }
        let seq_result = seq.finish();

        for batched in [false, true] {
            let (mut pipe, fb_rx) =
                IngestPipeline::start_with_feedback(3, servers.clone(), batched);
            for tick in &log {
                pipe.ingest_tick(tick);
            }
            pipe.flush();
            // Every sequenced arrival re-arms exactly one ack, polled the
            // tick it arrived; flush guarantees they are all in the channel.
            let mut acks: Vec<(u32, u64)> = Vec::new();
            while let Ok((id, payload)) = fb_rx.try_recv() {
                match WireMessage::decode(&payload).unwrap() {
                    WireMessage::Ack { seq } => acks.push((id, seq)),
                    other => panic!("unexpected feedback {other:?}"),
                }
            }
            let expected: u64 = 3 * 4; // 3 streams sync per tick, 4 ticks
            assert_eq!(acks.len() as u64, expected);
            let result = pipe.finish();
            let out: u64 = result.shards.iter().map(|s| s.feedback_out).sum();
            let drops: u64 = result.shards.iter().map(|s| s.feedback_drops).sum();
            assert_eq!(out, expected);
            assert_eq!(drops, 0);
            // Feedback polling must not perturb filter arithmetic.
            for ((id_a, a), (id_b, b)) in result.endpoints.iter().zip(seq_result.endpoints.iter()) {
                assert_eq!(id_a, id_b);
                assert_eq!(filter_bits(a), filter_bits(b));
            }
        }
    }

    #[test]
    fn dropped_feedback_receiver_is_counted_not_swallowed() {
        use crate::wire::WireMessage;
        let (servers, _) = record_log(2, 0);
        let (mut pipe, fb_rx) = IngestPipeline::start_with_feedback(2, servers, false);
        drop(fb_rx); // consumer gone mid-drain: sheds must still be counted
        let mut batch = FrameBatch::new();
        batch.push_raw(
            0,
            &WireMessage::Sync {
                seq: Some(1),
                msg: SyncMessage::Measurement {
                    z: kalstream_linalg::Vector::from_slice(&[1.0]),
                },
            }
            .encode(),
        );
        pipe.ingest_tick(batch.as_bytes());
        let result = pipe.finish();
        let drops: u64 = result.shards.iter().map(|s| s.feedback_drops).sum();
        let out: u64 = result.shards.iter().map(|s| s.feedback_out).sum();
        assert_eq!(drops, 1, "lost ack must be visible in the report");
        assert_eq!(out, 0);
    }

    #[test]
    fn corrupt_frames_do_not_stall_the_pipeline() {
        let (servers, _) = record_log(2, 1);
        let mut batch = FrameBatch::new();
        batch.push_raw(0, b"\xFF\xFF"); // garbage body for a real stream
        batch.push(
            1,
            &SyncMessage::Measurement {
                z: kalstream_linalg::Vector::from_slice(&[2.0]),
            },
        );
        let mut pipe = IngestPipeline::start(2, servers);
        pipe.ingest_tick(batch.as_bytes());
        let result = pipe.finish();
        assert_eq!(result.total_messages(), 1);
        assert_eq!(result.total_decode_failures(), 1);
    }

    #[test]
    fn sequenced_traffic_with_duplicates_is_deduplicated_by_ingest() {
        use crate::wire::WireMessage;
        let state = |v: f64| SyncMessage::State {
            x: kalstream_linalg::Vector::from_slice(&[v]),
            p: kalstream_linalg::Matrix::scalar(1, 0.5),
        };
        let seq_body = |seq: u64, v: f64| {
            WireMessage::Sync {
                seq: Some(seq),
                msg: state(v),
            }
            .encode()
        };
        let run = |servers: Vec<(u32, ServerEndpoint)>, shards: Option<usize>| {
            let mut batch = FrameBatch::new();
            batch.push_raw(0, &seq_body(1, 1.0));
            batch.push_raw(0, &seq_body(2, 2.0));
            batch.push_raw(0, &seq_body(2, 9.0)); // network duplicate
            batch.push_raw(0, &seq_body(1, 9.0)); // stale re-delivery
            batch.push_raw(1, &seq_body(1, 5.0));
            match shards {
                Some(n) => {
                    let mut pipe = IngestPipeline::start(n, servers);
                    pipe.ingest_tick(batch.as_bytes());
                    pipe.finish()
                }
                None => {
                    let mut seq = SequentialIngest::new(servers);
                    seq.ingest_tick(batch.as_bytes());
                    seq.finish()
                }
            }
        };
        let (servers, _) = record_log(2, 0);
        for result in [run(servers.clone(), None), run(servers, Some(2))] {
            let stale: u64 = result.shards.iter().map(|s| s.stale_drops).sum();
            assert_eq!(stale, 2, "duplicate + stale must both be dropped");
            let (_, ep0) = &result.endpoints[0];
            assert_eq!(ep0.last_seq(), 2);
            assert_eq!(
                ep0.filter().predicted_measurement()[0],
                2.0,
                "stale 9.0 applied"
            );
            assert_eq!(ep0.delivery().stale_drops, 2);
        }
    }
}
