//! Fleet-wide precision allocation under a message budget.
//!
//! The second direction of the paper's tradeoff: "maximize precision of
//! results under resource constraints". Given `k` streams sharing a message
//! budget `B` (messages per tick, fleet-wide), choose per-stream bounds
//! `δ₁..δ_k` that spend the budget where it buys the most precision.
//!
//! Formally the allocator minimises weighted total imprecision
//! `Σ wᵢ δᵢ` subject to `Σ rateᵢ(δᵢ) ≤ B`, where each `rateᵢ(·)` is the
//! stream's measured message-rate curve ([`StreamDemand`], fed from the
//! sources' [`crate::RateEstimator`]s). The curves are empirical step
//! functions whose only useful bounds are the distinct error samples, so a
//! greedy marginal-ratio algorithm solves the problem move by move: start
//! every stream at its loosest useful bound (zero messages), then keep
//! taking the single tightening step that buys the most weighted precision
//! per message until the budget is exhausted.

use crate::{CoreError, Result};

/// One stream's demand curve, as samples of its recent one-step prediction
/// errors (from [`crate::RateEstimator::samples`]) plus an importance
/// weight.
#[derive(Debug, Clone)]
pub struct StreamDemand {
    /// Sorted |prediction error| samples (sorted ascending at construction).
    samples: Vec<f64>,
    /// Importance weight: a stream with weight 2 counts its imprecision
    /// twice, so the allocator keeps it tighter.
    weight: f64,
}

impl StreamDemand {
    /// Builds a demand curve from error samples and a positive weight.
    ///
    /// # Errors
    /// [`CoreError::BadConfig`] on empty samples, non-finite samples, or a
    /// non-positive weight.
    pub fn new(mut samples: Vec<f64>, weight: f64) -> Result<Self> {
        if samples.is_empty() {
            return Err(CoreError::BadConfig {
                what: "samples",
                reason: "demand curve needs at least one error sample".into(),
            });
        }
        if samples.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(CoreError::BadConfig {
                what: "samples",
                reason: "error samples must be finite and non-negative".into(),
            });
        }
        if !(weight > 0.0 && weight.is_finite()) {
            return Err(CoreError::BadConfig {
                what: "weight",
                reason: format!("must be positive and finite, got {weight}"),
            });
        }
        samples.sort_by(f64::total_cmp);
        Ok(StreamDemand { samples, weight })
    }

    /// Estimated message rate at bound `delta` (exceedance fraction).
    pub fn rate_at(&self, delta: f64) -> f64 {
        let over = self.samples.len() - self.samples.partition_point(|&s| s <= delta);
        over as f64 / self.samples.len() as f64
    }

    /// Importance weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The error samples in ascending order — the candidate bounds any
    /// optimiser over this curve needs to consider (the rate is constant
    /// between consecutive samples).
    pub fn samples_sorted(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().copied()
    }
}

/// Result of an allocation.
#[derive(Debug, Clone)]
pub struct AllocationResult {
    /// Per-stream precision bounds, index-aligned with the demands.
    pub deltas: Vec<f64>,
    /// Predicted fleet message rate at those bounds.
    pub predicted_rate: f64,
    /// Marginal weighted-precision gain per message of the last accepted
    /// tightening step — the effective "message price" the solution settled
    /// at (0 when the allocation spends no messages at all).
    pub lambda: f64,
}

/// The fleet allocation solver.
#[derive(Debug, Clone, Default)]
pub struct BudgetAllocator;

impl BudgetAllocator {
    /// Allocates per-stream bounds under a fleet budget of
    /// `budget_rate` messages per tick (sum across streams).
    ///
    /// # Errors
    /// * [`CoreError::BadConfig`] when `budget_rate` is not positive or no
    ///   demands are given.
    ///
    /// Never infeasible: at large enough `δ` every stream's estimated rate
    /// is 0 (bounded error samples), so some allocation always fits.
    pub fn allocate(demands: &[StreamDemand], budget_rate: f64) -> Result<AllocationResult> {
        if demands.is_empty() {
            return Err(CoreError::BadConfig {
                what: "demands",
                reason: "need at least one stream".into(),
            });
        }
        if !(budget_rate > 0.0 && budget_rate.is_finite()) {
            return Err(CoreError::BadConfig {
                what: "budget_rate",
                reason: format!("must be positive and finite, got {budget_rate}"),
            });
        }

        // Greedy primal descent over the step curves. Start from every
        // stream's loosest useful bound (its largest error sample ⇒ rate 0,
        // always feasible), then repeatedly tighten the bound whose next
        // tightening buys the most weighted precision per unit of message
        // rate, while the fleet rate still fits the budget. (A Lagrangian
        // relaxation is bang-bang on near-linear step curves, leaving large
        // budget slack; the greedy spends it.)
        let candidates: Vec<Vec<f64>> = demands
            .iter()
            .map(|d| {
                // Descending distinct candidates, ending at 0 (max precision).
                let mut c: Vec<f64> = d.samples_sorted().collect();
                c.dedup();
                c.reverse();
                c.push(0.0);
                c.dedup();
                c
            })
            .collect();

        // idx[i]: position in candidates[i] of the *current* bound.
        let mut idx = vec![0usize; demands.len()];
        let mut deltas: Vec<f64> = candidates.iter().map(|c| c[0]).collect();
        let mut rate: f64 = demands
            .iter()
            .zip(deltas.iter())
            .map(|(d, &delta)| d.rate_at(delta))
            .sum();
        let mut last_ratio = 0.0;

        loop {
            let mut best: Option<(usize, f64, f64)> = None; // (stream, ratio, rate_cost)
            for (i, d) in demands.iter().enumerate() {
                let Some(&next) = candidates[i].get(idx[i] + 1) else {
                    continue;
                };
                let rate_cost = d.rate_at(next) - d.rate_at(deltas[i]);
                if rate + rate_cost > budget_rate + 1e-12 {
                    continue;
                }
                let gain = d.weight() * (deltas[i] - next);
                if gain <= 0.0 {
                    continue;
                }
                let ratio = gain / rate_cost.max(1e-300);
                if best.is_none_or(|(_, r, _)| ratio > r) {
                    best = Some((i, ratio, rate_cost));
                }
            }
            let Some((i, ratio, rate_cost)) = best else {
                break;
            };
            idx[i] += 1;
            deltas[i] = candidates[i][idx[i]];
            rate += rate_cost;
            if rate_cost > 0.0 {
                last_ratio = ratio;
            }
        }
        let lambda = if rate <= 0.0 { 0.0 } else { last_ratio };
        Ok(AllocationResult {
            deltas,
            predicted_rate: rate,
            lambda,
        })
    }

    /// The naive comparator: one shared `δ` for every stream, the smallest
    /// (via bisection over the pooled samples) whose total rate fits the
    /// budget.
    ///
    /// # Errors
    /// Same conditions as [`BudgetAllocator::allocate`].
    pub fn allocate_uniform(
        demands: &[StreamDemand],
        budget_rate: f64,
    ) -> Result<AllocationResult> {
        if demands.is_empty() {
            return Err(CoreError::BadConfig {
                what: "demands",
                reason: "need at least one stream".into(),
            });
        }
        if !(budget_rate > 0.0 && budget_rate.is_finite()) {
            return Err(CoreError::BadConfig {
                what: "budget_rate",
                reason: format!("must be positive and finite, got {budget_rate}"),
            });
        }
        // Candidate deltas: all samples pooled.
        let mut candidates: Vec<f64> = std::iter::once(0.0)
            .chain(demands.iter().flat_map(|d| d.samples.iter().copied()))
            .collect();
        candidates.sort_by(f64::total_cmp);
        candidates.dedup();
        let total_rate = |delta: f64| demands.iter().map(|d| d.rate_at(delta)).sum::<f64>();
        let delta = candidates
            .iter()
            .copied()
            .find(|&d| total_rate(d) <= budget_rate)
            .unwrap_or_else(|| *candidates.last().expect("non-empty candidates"));
        let rate = total_rate(delta);
        Ok(AllocationResult {
            deltas: vec![delta; demands.len()],
            predicted_rate: rate,
            lambda: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A calm stream: small errors. A wild stream: large errors.
    fn calm_and_wild() -> Vec<StreamDemand> {
        let calm: Vec<f64> = (0..100).map(|i| 0.01 * (i % 10) as f64).collect();
        let wild: Vec<f64> = (0..100).map(|i| 1.0 * (i % 10) as f64).collect();
        vec![
            StreamDemand::new(calm, 1.0).unwrap(),
            StreamDemand::new(wild, 1.0).unwrap(),
        ]
    }

    #[test]
    fn demand_rate_matches_exceedance() {
        let d = StreamDemand::new(vec![0.1, 0.2, 0.3, 0.4], 1.0).unwrap();
        assert_eq!(d.rate_at(0.25), 0.5);
        assert_eq!(d.rate_at(0.0), 1.0);
        assert_eq!(d.rate_at(1.0), 0.0);
    }

    #[test]
    fn demand_validation() {
        assert!(StreamDemand::new(vec![], 1.0).is_err());
        assert!(StreamDemand::new(vec![1.0], 0.0).is_err());
        assert!(StreamDemand::new(vec![f64::NAN], 1.0).is_err());
        assert!(StreamDemand::new(vec![-1.0], 1.0).is_err());
    }

    #[test]
    fn slack_budget_gives_max_precision() {
        let demands = calm_and_wild();
        let result = BudgetAllocator::allocate(&demands, 10.0).unwrap();
        assert!(result.deltas.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn allocation_meets_budget() {
        let demands = calm_and_wild();
        for budget in [0.05, 0.1, 0.3, 0.7, 1.0] {
            let result = BudgetAllocator::allocate(&demands, budget).unwrap();
            assert!(
                result.predicted_rate <= budget + 1e-9,
                "budget {budget}: predicted {}",
                result.predicted_rate
            );
        }
    }

    #[test]
    fn adaptive_beats_uniform_on_heterogeneous_fleet() {
        let demands = calm_and_wild();
        let budget = 0.3;
        let adaptive = BudgetAllocator::allocate(&demands, budget).unwrap();
        let uniform = BudgetAllocator::allocate_uniform(&demands, budget).unwrap();
        let cost = |r: &AllocationResult| -> f64 {
            r.deltas
                .iter()
                .zip(demands.iter())
                .map(|(&d, dem)| dem.weight() * d)
                .sum()
        };
        assert!(
            cost(&adaptive) <= cost(&uniform) + 1e-12,
            "adaptive {} vs uniform {}",
            cost(&adaptive),
            cost(&uniform)
        );
        // On this strongly heterogeneous fleet, strictly better.
        assert!(cost(&adaptive) < cost(&uniform));
    }

    #[test]
    fn weights_tighten_important_streams() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 0.01).collect();
        let demands = vec![
            StreamDemand::new(samples.clone(), 10.0).unwrap(), // important
            StreamDemand::new(samples, 1.0).unwrap(),          // unimportant
        ];
        let result = BudgetAllocator::allocate(&demands, 0.5).unwrap();
        assert!(
            result.deltas[0] <= result.deltas[1],
            "important stream got looser bound: {:?}",
            result.deltas
        );
    }

    #[test]
    fn uniform_allocation_is_single_delta() {
        let demands = calm_and_wild();
        let result = BudgetAllocator::allocate_uniform(&demands, 0.2).unwrap();
        assert!(result.deltas.windows(2).all(|w| w[0] == w[1]));
        assert!(result.predicted_rate <= 0.2 + 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(BudgetAllocator::allocate(&[], 1.0).is_err());
        let demands = calm_and_wild();
        assert!(BudgetAllocator::allocate(&demands, 0.0).is_err());
        assert!(BudgetAllocator::allocate_uniform(&demands, -1.0).is_err());
        assert!(BudgetAllocator::allocate_uniform(&[], 1.0).is_err());
    }

    #[test]
    fn tighter_budget_never_decreases_deltas_total() {
        let demands = calm_and_wild();
        let loose = BudgetAllocator::allocate(&demands, 1.0).unwrap();
        let tight = BudgetAllocator::allocate(&demands, 0.05).unwrap();
        let sum = |r: &AllocationResult| r.deltas.iter().sum::<f64>();
        assert!(sum(&tight) >= sum(&loose));
    }
}
