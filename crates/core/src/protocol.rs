//! Shared protocol primitives: the measurement-pinning projection and the
//! precision norm.

use kalstream_linalg::{Matrix, Vector};

use crate::Result;

/// Max-norm distance between a predicted measurement and an observation —
/// the norm the precision contract `|served − observed| ≤ δ` is defined in.
pub(crate) fn precision_norm(a: &Vector, b: &Vector) -> f64 {
    a.max_abs_diff(b)
}

/// Projects a state so that its measurement image equals `z` exactly, moving
/// the state as little as possible (minimum-norm correction):
///
/// ```text
/// x' = x + Hᵀ (H Hᵀ)⁻¹ (z − H x)      ⇒      H x' = z
/// ```
///
/// This is what makes the suppression protocol's precision guarantee *exact*
/// at sync ticks: the filter posterior can lag a fast signal by more than
/// `δ`, but the state actually shipped to the server is pinned so the served
/// value right after a sync equals the observation. Unobserved state
/// components (velocity, acceleration, quadrature) are preserved.
///
/// # Errors
/// Propagates a linear-algebra failure when `H Hᵀ` is singular (an
/// observation matrix without full row rank — rejected models never have
/// this).
pub fn pin_to_measurement(x: &Vector, h: &Matrix, z: &Vector) -> Result<Vector> {
    let hx = h.mul_vec(x).map_err(kalstream_filter::FilterError::from)?;
    let residual = z - &hx;
    let hht = h
        .matmul(&h.transpose())
        .map_err(kalstream_filter::FilterError::from)?;
    let chol = hht.cholesky().map_err(kalstream_filter::FilterError::from)?;
    let w = chol.solve_vec(&residual).map_err(kalstream_filter::FilterError::from)?;
    let correction = h
        .transpose()
        .mul_vec(&w)
        .map_err(kalstream_filter::FilterError::from)?;
    Ok(&(x.clone()) + &correction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_state_hits_measurement_exactly() {
        // Constant-velocity H = [1 0]: pinning must set position to z and
        // keep velocity untouched.
        let h = Matrix::from_rows(&[&[1.0, 0.0]]);
        let x = Vector::from_slice(&[5.0, 0.7]);
        let z = Vector::from_slice(&[6.5]);
        let pinned = pin_to_measurement(&x, &h, &z).unwrap();
        assert!((pinned[0] - 6.5).abs() < 1e-12);
        assert_eq!(pinned[1], 0.7);
    }

    #[test]
    fn pinning_2d_observation() {
        // 2-D GPS H selecting (x, y) out of [x, vx, y, vy].
        let h = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 0.0, 1.0, 0.0]]);
        let x = Vector::from_slice(&[1.0, 0.5, 2.0, -0.5]);
        let z = Vector::from_slice(&[10.0, 20.0]);
        let pinned = pin_to_measurement(&x, &h, &z).unwrap();
        assert!((pinned[0] - 10.0).abs() < 1e-12);
        assert!((pinned[2] - 20.0).abs() < 1e-12);
        assert_eq!(pinned[1], 0.5);
        assert_eq!(pinned[3], -0.5);
    }

    #[test]
    fn pinning_is_minimum_norm() {
        // With a non-trivial H the correction must be in H's row space.
        let h = Matrix::from_rows(&[&[1.0, 1.0]]);
        let x = Vector::from_slice(&[0.0, 0.0]);
        let z = Vector::from_slice(&[2.0]);
        let pinned = pin_to_measurement(&x, &h, &z).unwrap();
        // Minimum-norm solution of x0 + x1 = 2 is (1, 1).
        assert!((pinned[0] - 1.0).abs() < 1e-12);
        assert!((pinned[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pinning_noop_when_already_exact() {
        let h = Matrix::from_rows(&[&[1.0, 0.0]]);
        let x = Vector::from_slice(&[3.0, 9.0]);
        let z = Vector::from_slice(&[3.0]);
        let pinned = pin_to_measurement(&x, &h, &z).unwrap();
        assert!(pinned.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn precision_norm_is_max_norm() {
        let a = Vector::from_slice(&[1.0, 5.0]);
        let b = Vector::from_slice(&[1.5, 3.0]);
        assert_eq!(precision_norm(&a, &b), 2.0);
    }
}
