//! Shared protocol primitives: the measurement-pinning projection, the
//! precision norm, and the delivery ack tracker.

use kalstream_linalg::{Matrix, Vector};

use crate::Result;

/// Source-side bookkeeping for ack-based loss recovery.
///
/// The source assigns monotonically increasing sequence numbers (starting
/// at 1) to outgoing syncs and records the server's cumulative
/// acknowledgements. Because every full-state sync completely overwrites the
/// server filter, acks are cumulative: an ack for sequence `s` proves the
/// server state reflects sync `s`, which subsumes every earlier loss. The
/// divergence signal is therefore simply "the *newest* sync has been
/// outstanding for too long" — [`AckTracker::overdue`].
#[derive(Debug, Clone)]
pub struct AckTracker {
    /// Next sequence number to assign (sequence numbers start at 1 so that
    /// `last_acked == 0` cleanly means "nothing acked yet").
    next_seq: u64,
    /// Sequence number of the newest sync sent (0 before the first send).
    newest_seq: u64,
    /// Highest cumulative ack received from the server.
    last_acked: u64,
    /// Ticks the newest sync has been outstanding (reset on each send).
    unacked_age: u64,
}

impl Default for AckTracker {
    fn default() -> Self {
        AckTracker {
            next_seq: 1,
            newest_seq: 0,
            last_acked: 0,
            unacked_age: 0,
        }
    }
}

impl AckTracker {
    /// Creates a tracker with no syncs outstanding.
    pub fn new() -> Self {
        AckTracker::default()
    }

    /// Assigns and returns the sequence number for an outgoing sync.
    pub fn on_send(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.newest_seq = seq;
        self.unacked_age = 0;
        seq
    }

    /// Records a cumulative ack from the server. Stale (lower) acks — e.g.
    /// duplicated on a faulty reverse link — are ignored.
    pub fn on_ack(&mut self, seq: u64) {
        self.last_acked = self.last_acked.max(seq);
    }

    /// Advances the tracker by one tick, aging the outstanding window.
    pub fn tick(&mut self) {
        if self.outstanding() {
            self.unacked_age += 1;
        }
    }

    /// `true` while the newest sync has not been acknowledged.
    pub fn outstanding(&self) -> bool {
        self.newest_seq > self.last_acked
    }

    /// `true` when the newest sync has been outstanding for at least
    /// `timeout` ticks — the trigger for a forced full resync.
    pub fn overdue(&self, timeout: u64) -> bool {
        self.outstanding() && self.unacked_age >= timeout
    }

    /// Highest cumulative ack received.
    pub fn last_acked(&self) -> u64 {
        self.last_acked
    }

    /// Sequence number of the newest sync sent (0 before the first send).
    pub fn newest_seq(&self) -> u64 {
        self.newest_seq
    }
}

/// Max-norm distance between a predicted measurement and an observation —
/// the norm the precision contract `|served − observed| ≤ δ` is defined in.
pub(crate) fn precision_norm(a: &Vector, b: &Vector) -> f64 {
    a.max_abs_diff(b)
}

/// Projects a state so that its measurement image equals `z` exactly, moving
/// the state as little as possible (minimum-norm correction):
///
/// ```text
/// x' = x + Hᵀ (H Hᵀ)⁻¹ (z − H x)      ⇒      H x' = z
/// ```
///
/// This is what makes the suppression protocol's precision guarantee *exact*
/// at sync ticks: the filter posterior can lag a fast signal by more than
/// `δ`, but the state actually shipped to the server is pinned so the served
/// value right after a sync equals the observation. Unobserved state
/// components (velocity, acceleration, quadrature) are preserved.
///
/// # Errors
/// Propagates a linear-algebra failure when `H Hᵀ` is singular (an
/// observation matrix without full row rank — rejected models never have
/// this).
pub fn pin_to_measurement(x: &Vector, h: &Matrix, z: &Vector) -> Result<Vector> {
    let hx = h.mul_vec(x).map_err(kalstream_filter::FilterError::from)?;
    let residual = z - &hx;
    let hht = h
        .matmul(&h.transpose())
        .map_err(kalstream_filter::FilterError::from)?;
    let chol = hht
        .cholesky()
        .map_err(kalstream_filter::FilterError::from)?;
    let w = chol
        .solve_vec(&residual)
        .map_err(kalstream_filter::FilterError::from)?;
    let correction = h
        .transpose()
        .mul_vec(&w)
        .map_err(kalstream_filter::FilterError::from)?;
    Ok(&(x.clone()) + &correction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_state_hits_measurement_exactly() {
        // Constant-velocity H = [1 0]: pinning must set position to z and
        // keep velocity untouched.
        let h = Matrix::from_rows(&[&[1.0, 0.0]]);
        let x = Vector::from_slice(&[5.0, 0.7]);
        let z = Vector::from_slice(&[6.5]);
        let pinned = pin_to_measurement(&x, &h, &z).unwrap();
        assert!((pinned[0] - 6.5).abs() < 1e-12);
        assert_eq!(pinned[1], 0.7);
    }

    #[test]
    fn pinning_2d_observation() {
        // 2-D GPS H selecting (x, y) out of [x, vx, y, vy].
        let h = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 0.0, 1.0, 0.0]]);
        let x = Vector::from_slice(&[1.0, 0.5, 2.0, -0.5]);
        let z = Vector::from_slice(&[10.0, 20.0]);
        let pinned = pin_to_measurement(&x, &h, &z).unwrap();
        assert!((pinned[0] - 10.0).abs() < 1e-12);
        assert!((pinned[2] - 20.0).abs() < 1e-12);
        assert_eq!(pinned[1], 0.5);
        assert_eq!(pinned[3], -0.5);
    }

    #[test]
    fn pinning_is_minimum_norm() {
        // With a non-trivial H the correction must be in H's row space.
        let h = Matrix::from_rows(&[&[1.0, 1.0]]);
        let x = Vector::from_slice(&[0.0, 0.0]);
        let z = Vector::from_slice(&[2.0]);
        let pinned = pin_to_measurement(&x, &h, &z).unwrap();
        // Minimum-norm solution of x0 + x1 = 2 is (1, 1).
        assert!((pinned[0] - 1.0).abs() < 1e-12);
        assert!((pinned[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pinning_noop_when_already_exact() {
        let h = Matrix::from_rows(&[&[1.0, 0.0]]);
        let x = Vector::from_slice(&[3.0, 9.0]);
        let z = Vector::from_slice(&[3.0]);
        let pinned = pin_to_measurement(&x, &h, &z).unwrap();
        assert!(pinned.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn precision_norm_is_max_norm() {
        let a = Vector::from_slice(&[1.0, 5.0]);
        let b = Vector::from_slice(&[1.5, 3.0]);
        assert_eq!(precision_norm(&a, &b), 2.0);
    }

    #[test]
    fn ack_tracker_sequences_start_at_one() {
        let mut t = AckTracker::new();
        assert!(!t.outstanding());
        assert_eq!(t.newest_seq(), 0);
        assert_eq!(t.on_send(), 1);
        assert_eq!(t.on_send(), 2);
        assert_eq!(t.newest_seq(), 2);
        assert!(t.outstanding());
    }

    #[test]
    fn ack_clears_outstanding_cumulatively() {
        let mut t = AckTracker::new();
        t.on_send();
        t.on_send();
        t.on_send(); // 1, 2, 3 outstanding
        t.on_ack(3); // cumulative: clears everything
        assert!(!t.outstanding());
        assert_eq!(t.last_acked(), 3);
    }

    #[test]
    fn stale_ack_is_ignored() {
        let mut t = AckTracker::new();
        t.on_send();
        t.on_send();
        t.on_ack(2);
        t.on_ack(1); // duplicated/reordered old ack
        assert_eq!(t.last_acked(), 2);
        assert!(!t.outstanding());
    }

    #[test]
    fn overdue_after_timeout_ticks() {
        let mut t = AckTracker::new();
        t.on_send();
        for _ in 0..2 {
            t.tick();
        }
        assert!(!t.overdue(3));
        t.tick();
        assert!(t.overdue(3));
        // Partial ack of an older sync does not clear the newest.
        t.on_send();
        assert!(!t.overdue(3)); // age reset by the new send
        t.on_ack(1);
        assert!(t.outstanding());
    }

    #[test]
    fn age_does_not_accumulate_while_idle() {
        let mut t = AckTracker::new();
        for _ in 0..100 {
            t.tick(); // nothing outstanding: no aging
        }
        t.on_send();
        t.tick();
        assert!(!t.overdue(2));
        assert!(t.overdue(1));
    }
}
