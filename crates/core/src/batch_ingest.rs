//! Batch-dispatched ingest: same-model stream groups stepped through
//! structure-of-arrays fleet kernels.
//!
//! The plain ingest path advances every [`ServerEndpoint`]'s filter one at a
//! time — correct, but at fleet scale the per-stream predict dominates the
//! tick. [`BatchShardEngine`] interposes a dispatch layer: at construction
//! it groups endpoints whose filters run the **same model** at a supported
//! `(state_dim, measurement_dim)` shape (see [`DynFleetBatch::supported`])
//! with the default Joseph covariance form, moves each group's per-stream
//! state into [`DynFleetBatch`] lanes, and from then on advances whole
//! groups with one `predict_all` per tick. Everything else about the
//! endpoint — sequence bookkeeping, pending queues, counters, feedback —
//! keeps running through the [`ServerEndpoint`] exactly as before; only the
//! filter arithmetic moves.
//!
//! ## Equivalence and demotion
//!
//! For every lane the batch kernels replicate the scalar filter's
//! floating-point operation order (see `kalstream_filter::FleetBatch`), and
//! syncs are applied to lanes through the same operations in the same
//! per-stream order, so a batched ingest run produces **bit-identical
//! endpoints** to the plain path — the invariant this module's tests and
//! the workspace proptests pin down. Streams leave the batch path (are
//! *demoted* to scalar, state handed back via [`KalmanFilter::restore`])
//! when:
//!
//! * a **model sync** arrives — the replacement filter may have any shape,
//!   so the stream finishes the run scalar (re-promotion would buy little:
//!   model syncs are rare and grouping is a construction-time decision);
//! * the lane's state ends a tick **non-finite** — the scalar path owns the
//!   divergence bookkeeping from there. The check runs *after* the pending
//!   sweep, so a queued state sync can resynchronise a diverged lane and
//!   keep it batched, exactly as it would heal a scalar filter.
//!
//! Demotion swaps the group's last lane into the vacated slot
//! ([`DynFleetBatch::swap_remove_lane`]), so lanes stay dense.

use std::collections::HashMap;

use kalstream_obs::{Histogram, SpanTimer};

use kalstream_filter::{CovarianceUpdate, DynFleetBatch, KalmanFilter};

use crate::frame::FrameDecoder;
use crate::ingest::{IngestResult, ShardReport, TickIngest};
use crate::server::ServerEndpoint;
use crate::wire::{SyncMessage, WireMessage};

/// One same-model lane group.
struct BatchGroup {
    batch: DynFleetBatch,
    /// `streams[lane]` is the stream id owning that lane.
    streams: Vec<u32>,
}

/// Where a stream's filter arithmetic runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// The endpoint's own [`KalmanFilter`] (via [`ServerEndpoint::advance`]).
    Scalar,
    /// A fleet-batch lane; the endpoint's filter is dormant until demotion.
    Batched,
}

/// A shard's endpoint map with fleet-batch dispatch in front of the filter
/// arithmetic — drop-in for the plain `stream_id → endpoint` map inside a
/// shard worker or a single-threaded ingester.
pub struct BatchShardEngine {
    endpoints: HashMap<u32, ServerEndpoint>,
    groups: Vec<BatchGroup>,
    /// Scalar-routed ids in ascending order, maintained across demotions so
    /// the per-tick advance loop needs no re-sort.
    scalar_ids: Vec<u32>,
}

impl BatchShardEngine {
    /// Builds the engine, grouping every endpoint that qualifies for the
    /// batch path (supported dims, Joseph covariance form, model shared
    /// with the group) and leaving the rest scalar.
    pub fn new(endpoints: Vec<(u32, ServerEndpoint)>) -> Self {
        let mut engine = BatchShardEngine {
            endpoints: HashMap::with_capacity(endpoints.len()),
            groups: Vec::new(),
            scalar_ids: Vec::new(),
        };
        for (id, ep) in endpoints {
            let filter = ep.filter();
            let model = filter.model();
            let route = if filter.covariance_update() == CovarianceUpdate::Joseph
                && DynFleetBatch::supported(model.state_dim(), model.measurement_dim())
            {
                let group = match engine.groups.iter().position(|g| g.batch.model() == model) {
                    Some(g) => g,
                    None => {
                        let batch = DynFleetBatch::for_model(model)
                            .expect("supported dims have a batch kernel");
                        engine.groups.push(BatchGroup {
                            batch,
                            streams: Vec::new(),
                        });
                        engine.groups.len() - 1
                    }
                };
                let g = &mut engine.groups[group];
                g.batch
                    .push(
                        filter.state(),
                        filter.covariance(),
                        filter.steps_since_update(),
                    )
                    .expect("endpoint filter shape matches its own model");
                g.streams.push(id);
                Route::Batched
            } else {
                Route::Scalar
            };
            if route == Route::Scalar {
                engine.scalar_ids.push(id);
            }
            engine.endpoints.insert(id, ep);
        }
        engine.scalar_ids.sort_unstable();
        engine
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the engine holds no endpoints.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// `(batched, scalar)` stream counts — the dispatcher's coverage, worth
    /// watching next to the `linalg.heap_fallbacks` counter.
    pub fn coverage(&self) -> (usize, usize) {
        let batched: usize = self.groups.iter().map(|g| g.streams.len()).sum();
        (batched, self.endpoints.len() - batched)
    }

    /// Enqueues one decoded wire message, running the endpoint's usual
    /// sequence bookkeeping. Returns `false` for unknown streams.
    pub fn enqueue_wire(&mut self, stream_id: u32, msg: WireMessage) -> bool {
        match self.endpoints.get_mut(&stream_id) {
            Some(ep) => {
                ep.enqueue_wire(msg);
                true
            }
            None => false,
        }
    }

    /// Advances every endpoint one tick — the batch twin of calling
    /// [`ServerEndpoint::advance`] on each: batched groups predict as one
    /// fleet, scalar endpoints predict individually, then every endpoint's
    /// pending syncs apply in arrival order.
    pub fn advance_tick(&mut self) {
        // Phase 1: batched predicts. Lanes that come out non-finite get the
        // scalar path's per-tick `predict_failures` bookkeeping here;
        // whether they *stay* non-finite (→ demotion) is decided after the
        // pending sweep, since a queued state sync may resynchronise them.
        for group in self.groups.iter_mut() {
            if group.batch.predict_all() > 0 {
                for (lane, id) in group.streams.iter().enumerate() {
                    if !group.batch.lane_is_finite(lane) {
                        self.endpoints
                            .get_mut(id)
                            .expect("grouped stream has an endpoint")
                            .note_predict_failure();
                    }
                }
            }
        }
        // Phase 2: scalar endpoints take their normal advance. Streams
        // demoted during phase 3 below join this loop from the *next* tick —
        // their predict for this tick already ran in the batch.
        for id in self.scalar_ids.iter() {
            self.endpoints
                .get_mut(id)
                .expect("scalar stream has an endpoint")
                .advance();
        }
        // Phase 3: batched endpoints drain pending onto their lanes. After a
        // demotion the swapped-in lane re-runs at the same index, so no lane
        // is skipped.
        for g in 0..self.groups.len() {
            let mut lane = 0;
            while lane < self.groups[g].streams.len() {
                let id = self.groups[g].streams[lane];
                let demoted = self.drain_pending_onto_lane(g, lane, id);
                if !demoted {
                    lane += 1;
                }
            }
        }
    }

    /// Applies one batched stream's queued syncs to its lane (same
    /// operations, same order as [`ServerEndpoint::advance`]'s drain).
    /// Returns `true` when the stream was demoted (its lane is gone and the
    /// swapped-in lane, if any, now sits at `lane`).
    fn drain_pending_onto_lane(&mut self, group: usize, lane: usize, id: u32) -> bool {
        let ep = self
            .endpoints
            .get_mut(&id)
            .expect("grouped stream has an endpoint");
        let batch = &mut self.groups[group].batch;
        let mut model_swapped = false;
        while let Some(msg) = ep.pop_pending() {
            match msg {
                SyncMessage::State { x, p } => {
                    if batch.set_lane(lane, &x, &p).is_ok() {
                        ep.note_sync_applied();
                    }
                }
                SyncMessage::Measurement { z } => {
                    // On `Diverged` the lane keeps the non-finite posterior —
                    // exactly what the scalar filter leaves behind — and the
                    // finite check below demotes it. Other errors leave the
                    // lane untouched; either way the sync is not counted.
                    if batch.update_lane(lane, &z).is_ok() {
                        ep.note_sync_applied();
                    }
                }
                SyncMessage::Model { model, x, p } => {
                    // On rejection the stream simply stays batched.
                    if let Ok(kf) = KalmanFilter::with_covariance(model, x, p) {
                        *ep.filter_mut() = kf;
                        ep.note_sync_applied();
                        model_swapped = true;
                        // The stream is scalar from here: the rest of
                        // its queue applies to the replacement filter,
                        // exactly as the scalar drain would.
                        while let Some(rest) = ep.pop_pending() {
                            ep.apply(rest);
                        }
                        break;
                    }
                }
            }
        }
        if model_swapped {
            self.demote(group, lane, id, false);
            true
        } else if !self.groups[group].batch.lane_is_finite(lane) {
            self.demote(group, lane, id, true);
            true
        } else {
            false
        }
    }

    /// Removes `id`'s lane and routes it scalar. `restore_state` hands the
    /// lane's state back to the endpoint filter (skipped after a model
    /// sync, which already installed a replacement filter).
    fn demote(&mut self, group: usize, lane: usize, id: u32, restore_state: bool) {
        if restore_state {
            let (x, p, steps) = self.groups[group].batch.lane_state(lane);
            self.endpoints
                .get_mut(&id)
                .expect("grouped stream has an endpoint")
                .filter_mut()
                .restore(x, p, steps)
                .expect("lane shape matches its endpoint's model");
        }
        let g = &mut self.groups[group];
        g.batch.swap_remove_lane(lane);
        let moved = g.streams.pop().expect("demoted lane existed");
        if lane < g.streams.len() {
            g.streams[lane] = moved;
        }
        let at = self.scalar_ids.partition_point(|&s| s < id);
        self.scalar_ids.insert(at, id);
    }

    /// Every stream id this engine owns (batched and scalar), in map order —
    /// callers needing determinism sort the collected ids.
    pub(crate) fn stream_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.endpoints.keys().copied()
    }

    /// Mutable access to one stream's endpoint (feedback polling touches
    /// only ack/bound bookkeeping, which lives on the endpoint whether its
    /// filter state currently sits scalar or on a batch lane).
    pub(crate) fn endpoint_mut(&mut self, id: u32) -> Option<&mut ServerEndpoint> {
        self.endpoints.get_mut(&id)
    }

    /// Captures every endpoint's protocol state without consuming the
    /// engine — the durability layer's mid-run snapshot hook. For scalar
    /// streams the endpoint filter already holds the live state; for
    /// batched streams the live `x`/`p`/staleness sit on a fleet-batch
    /// lane, so the captured state is the endpoint's bookkeeping overlaid
    /// with the lane's triplet — exactly the bits [`BatchShardEngine::finish`]
    /// would restore, but copied instead of moved.
    pub fn snapshot_states(&self) -> Vec<(u32, crate::server::EndpointState)> {
        let mut lane_overlay: HashMap<
            u32,
            (kalstream_linalg::Vector, kalstream_linalg::Matrix, u64),
        > = HashMap::new();
        for group in self.groups.iter() {
            for (lane, id) in group.streams.iter().enumerate() {
                lane_overlay.insert(*id, group.batch.lane_state(lane));
            }
        }
        let mut states: Vec<(u32, crate::server::EndpointState)> = self
            .endpoints
            .iter()
            .map(|(id, ep)| {
                let mut state = ep.state();
                if let Some((x, p, steps)) = lane_overlay.remove(id) {
                    state.x = x;
                    state.p = p;
                    state.steps_since_update = steps;
                }
                (*id, state)
            })
            .collect();
        states.sort_by_key(|(id, _)| *id);
        states
    }

    /// Hands every remaining lane's state back to its endpoint filter and
    /// returns the endpoints sorted by stream id — the same shape (and, for
    /// the same traffic, the same bits) the plain path produces.
    pub fn finish(mut self) -> Vec<(u32, ServerEndpoint)> {
        for group in self.groups.iter() {
            for (lane, id) in group.streams.iter().enumerate() {
                let (x, p, steps) = group.batch.lane_state(lane);
                self.endpoints
                    .get_mut(id)
                    .expect("grouped stream has an endpoint")
                    .filter_mut()
                    .restore(x, p, steps)
                    .expect("lane shape matches its endpoint's model");
            }
        }
        let mut endpoints: Vec<(u32, ServerEndpoint)> = self.endpoints.into_iter().collect();
        endpoints.sort_by_key(|(id, _)| *id);
        endpoints
    }
}

/// Single-threaded ingester over a [`BatchShardEngine`] — the batch twin of
/// [`crate::SequentialIngest`], and the engine behind
/// [`crate::IngestPipeline::start_batched`]'s per-shard workers. Same tick
/// semantics, same [`IngestResult`] shape (one pseudo-shard).
pub struct BatchedIngest {
    engine: BatchShardEngine,
    decoder: FrameDecoder,
    ticks: u64,
    messages: u64,
    bytes_in: u64,
    unknown_streams: u64,
    busy: std::time::Duration,
    tick_ns: Histogram,
}

impl BatchedIngest {
    /// Builds the ingester over `endpoints`, batch-grouping the eligible
    /// ones (see [`BatchShardEngine::new`]).
    pub fn new(endpoints: Vec<(u32, ServerEndpoint)>) -> Self {
        BatchedIngest {
            engine: BatchShardEngine::new(endpoints),
            decoder: FrameDecoder::new(),
            ticks: 0,
            messages: 0,
            bytes_in: 0,
            unknown_streams: 0,
            busy: std::time::Duration::ZERO,
            tick_ns: Histogram::new(),
        }
    }

    /// `(batched, scalar)` stream counts; see [`BatchShardEngine::coverage`].
    pub fn coverage(&self) -> (usize, usize) {
        self.engine.coverage()
    }

    /// Drains one tick's batch and advances every endpoint, synchronously.
    pub fn ingest_tick(&mut self, wire: &[u8]) {
        let span = SpanTimer::start();
        self.bytes_in += wire.len() as u64;
        let engine = &mut self.engine;
        let messages = &mut self.messages;
        let unknown = &mut self.unknown_streams;
        self.decoder.for_each_wire_message(wire, |id, msg| {
            if engine.enqueue_wire(id, msg) {
                *messages += 1;
            } else {
                *unknown += 1;
            }
        });
        engine.advance_tick();
        self.ticks += 1;
        self.busy += std::time::Duration::from_nanos(span.stop(&mut self.tick_ns));
    }

    /// Collects the run into the same shape as the sharded pipeline (one
    /// pseudo-shard), restoring every lane into its endpoint filter.
    pub fn finish(self) -> IngestResult {
        let endpoints = self.engine.finish();
        let stale_drops = endpoints
            .iter()
            .map(|(_, ep)| ep.delivery().stale_drops)
            .sum();
        IngestResult {
            shards: vec![ShardReport {
                shard: 0,
                streams: endpoints.len(),
                ticks: self.ticks,
                messages: self.messages,
                bytes_in: self.bytes_in,
                decode_failures: self.decoder.decode_failures(),
                unknown_streams: self.unknown_streams,
                stale_drops,
                busy_secs: self.busy.as_secs_f64(),
                recycle_drops: 0,
                feedback_out: 0,
                feedback_drops: 0,
                queue_high_water: 0,
                tick_ns: self.tick_ns,
            }],
            endpoints,
        }
    }
}

impl TickIngest for BatchedIngest {
    fn ingest_tick(&mut self, wire: &[u8]) {
        BatchedIngest::ingest_tick(self, wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBatch;
    use crate::ingest::SequentialIngest;
    use crate::{ProtocolConfig, SessionSpec, StreamSession};
    use kalstream_filter::models;
    use kalstream_linalg::{Matrix, Vector};
    use kalstream_sim::Producer;

    /// `n_cv` constant-velocity sessions (batch-eligible: 2-state) followed
    /// by `n_scalar` default scalar sessions (1-state random walk — below
    /// the batch shape table, stays scalar), plus a recorded framed log of
    /// deterministic per-stream sinusoid traffic.
    fn record_log(
        n_cv: u32,
        n_scalar: u32,
        ticks: usize,
    ) -> (Vec<(u32, ServerEndpoint)>, Vec<Vec<u8>>) {
        let mut sources = Vec::new();
        let mut servers = Vec::new();
        for id in 0..(n_cv + n_scalar) {
            let config = ProtocolConfig::new(0.25).unwrap();
            let spec = if id < n_cv {
                SessionSpec::fixed(
                    models::constant_velocity(1.0, 0.05, 0.1),
                    Vector::zeros(2),
                    1.0,
                    config,
                )
                .unwrap()
            } else {
                SessionSpec::default_scalar(0.0, config).unwrap()
            };
            let StreamSession { source, server } = spec.build();
            sources.push((id, source));
            servers.push((id, server));
        }
        let mut log = Vec::with_capacity(ticks);
        for t in 0..ticks {
            let mut batch = FrameBatch::new();
            for (id, source) in sources.iter_mut() {
                let v = (t as f64 * 0.1 + *id as f64).sin() * (1.0 + *id as f64 * 0.01);
                if let Some(payload) = source.observe(t as u64, &[v]) {
                    batch.push_raw(*id, &payload);
                }
            }
            log.push(batch.as_bytes().to_vec());
        }
        (servers, log)
    }

    fn filter_bits(ep: &ServerEndpoint) -> Vec<u64> {
        let f = ep.filter();
        f.state()
            .iter()
            .map(|v| v.to_bits())
            .chain(f.covariance().as_slice().iter().map(|v| v.to_bits()))
            .collect()
    }

    fn assert_same_endpoints(a: &[(u32, ServerEndpoint)], b: &[(u32, ServerEndpoint)], what: &str) {
        assert_eq!(a.len(), b.len());
        for ((id_a, ea), (id_b, eb)) in a.iter().zip(b.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(filter_bits(ea), filter_bits(eb), "{what}: stream {id_a}");
            assert_eq!(ea.syncs_applied(), eb.syncs_applied(), "{what}: {id_a}");
            assert_eq!(
                ea.predict_failures(),
                eb.predict_failures(),
                "{what}: {id_a}"
            );
            assert_eq!(
                ea.filter().steps_since_update(),
                eb.filter().steps_since_update(),
                "{what}: {id_a}"
            );
        }
    }

    #[test]
    fn groups_same_model_streams_and_leaves_ineligible_ones_scalar() {
        let mut endpoints = Vec::new();
        // 1-state random walks: below the batch shape table, stay scalar.
        for id in 0..3u32 {
            let kf =
                KalmanFilter::new(models::random_walk(0.01, 0.25), Vector::zeros(1), 1.0).unwrap();
            endpoints.push((id, ServerEndpoint::new(kf)));
        }
        // 2-state constant velocity: batched, one shared group.
        for id in 3..8u32 {
            let kf = KalmanFilter::new(
                models::constant_velocity(1.0, 0.05, 0.1),
                Vector::zeros(2),
                1.0,
            )
            .unwrap();
            endpoints.push((id, ServerEndpoint::new(kf)));
        }
        // Simple covariance form: stays scalar even at supported dims.
        let mut kf = KalmanFilter::new(
            models::constant_velocity(1.0, 0.05, 0.1),
            Vector::zeros(2),
            1.0,
        )
        .unwrap();
        kf.set_covariance_update(CovarianceUpdate::Simple);
        endpoints.push((8, ServerEndpoint::new(kf)));
        let engine = BatchShardEngine::new(endpoints);
        assert_eq!(engine.coverage(), (5, 4));
        assert_eq!(engine.groups.len(), 1);
        assert_eq!(engine.scalar_ids, vec![0, 1, 2, 8]);
    }

    #[test]
    fn batched_ingest_matches_sequential_bit_for_bit() {
        let (servers, log) = record_log(12, 4, 80);
        let mut seq = SequentialIngest::new(servers.clone());
        for tick in &log {
            seq.ingest_tick(tick);
        }
        let seq_result = seq.finish();
        assert!(seq_result.total_messages() > 0, "log recorded no syncs");

        let mut batched = BatchedIngest::new(servers);
        assert_eq!(batched.coverage(), (12, 4));
        for tick in &log {
            TickIngest::ingest_tick(&mut batched, tick);
        }
        let result = batched.finish();
        assert_eq!(result.total_messages(), seq_result.total_messages());
        assert_same_endpoints(&result.endpoints, &seq_result.endpoints, "batched");
    }

    #[test]
    fn model_sync_demotes_stream_to_scalar_identically() {
        // Stream 1 (batched) receives a model sync mid-run — trailed by a
        // measurement in the same tick that must land on the replacement
        // filter — then keeps receiving ordinary traffic to the end.
        let (servers, mut log) = record_log(4, 0, 40);
        let mut extra = FrameBatch::new();
        extra.push(
            1,
            &SyncMessage::Model {
                model: models::constant_acceleration(1.0, 0.02, 0.1),
                x: Vector::from_slice(&[0.5, 0.1, 0.0]),
                p: Matrix::scalar(3, 1.0),
            },
        );
        extra.push(
            1,
            &SyncMessage::Measurement {
                z: Vector::from_slice(&[0.6]),
            },
        );
        let mut merged = extra.as_bytes().to_vec();
        merged.extend_from_slice(&log[20]);
        log[20] = merged;

        let mut seq = SequentialIngest::new(servers.clone());
        let mut batched = BatchedIngest::new(servers);
        assert_eq!(batched.coverage(), (4, 0));
        for tick in &log {
            seq.ingest_tick(tick);
            batched.ingest_tick(tick);
        }
        assert_eq!(batched.coverage(), (3, 1), "stream 1 demoted");
        let seq_result = seq.finish();
        let result = batched.finish();
        assert_same_endpoints(&result.endpoints, &seq_result.endpoints, "model-sync");
        let (_, ep1) = &result.endpoints[1];
        assert_eq!(ep1.filter().model().name(), "constant_acceleration");
    }

    #[test]
    fn state_sync_heals_a_diverged_lane_without_demotion() {
        // Poison a lane with a non-finite state sync — which set_lane
        // accepts (like set_state, it validates shape only) — and heal it
        // with a later sync *in the same tick*. The demotion check runs
        // after the whole pending drain, so the healed lane stays batched,
        // exactly as the scalar filter would simply absorb both syncs.
        let (servers, _) = record_log(2, 0, 0);
        let poison = SyncMessage::State {
            x: Vector::from_slice(&[f64::NAN, 0.0]),
            p: Matrix::scalar(2, 1.0),
        };
        let heal = SyncMessage::State {
            x: Vector::from_slice(&[1.0, -0.5]),
            p: Matrix::scalar(2, 0.5),
        };
        let mut seq = SequentialIngest::new(servers.clone());
        let mut batched = BatchedIngest::new(servers);
        let mut tick1 = FrameBatch::new();
        tick1.push(0, &poison);
        tick1.push(0, &heal);
        let quiet = FrameBatch::new();
        for tick in [tick1.as_bytes(), quiet.as_bytes(), quiet.as_bytes()] {
            seq.ingest_tick(tick);
            batched.ingest_tick(tick);
        }
        assert_eq!(batched.coverage(), (2, 0), "healed lane stays batched");
        let a = seq.finish();
        let b = batched.finish();
        assert_same_endpoints(&b.endpoints, &a.endpoints, "heal");
        let (_, ep) = &b.endpoints[0];
        assert_eq!(ep.predict_failures(), 0);
        assert!(ep.filter().state().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn unhealed_diverged_lane_is_demoted_and_keeps_scalar_bookkeeping() {
        let (servers, _) = record_log(2, 0, 0);
        let poison = SyncMessage::State {
            x: Vector::from_slice(&[f64::NAN, 0.0]),
            p: Matrix::scalar(2, 1.0),
        };
        let mut seq = SequentialIngest::new(servers.clone());
        let mut batched = BatchedIngest::new(servers);
        let mut tick1 = FrameBatch::new();
        tick1.push(0, &poison);
        let quiet = FrameBatch::new();
        seq.ingest_tick(tick1.as_bytes());
        batched.ingest_tick(tick1.as_bytes());
        assert_eq!(batched.coverage(), (1, 1), "poisoned lane demoted");
        for _ in 0..3 {
            seq.ingest_tick(quiet.as_bytes());
            batched.ingest_tick(quiet.as_bytes());
        }
        let a = seq.finish();
        let b = batched.finish();
        assert_same_endpoints(&b.endpoints, &a.endpoints, "diverged");
        // The poison sync lands *after* tick 1's predict, so only the three
        // quiet ticks predict on a non-finite state — on the scalar path the
        // demoted stream took over from tick 2 onward.
        let (_, ep) = &b.endpoints[0];
        assert_eq!(ep.predict_failures(), 3, "every later tick keeps failing");
    }

    #[test]
    fn unknown_stream_enqueue_reports_false() {
        let (servers, _) = record_log(1, 1, 0);
        let mut engine = BatchShardEngine::new(servers);
        let msg = WireMessage::Sync {
            seq: None,
            msg: SyncMessage::Measurement {
                z: Vector::from_slice(&[1.0]),
            },
        };
        assert!(engine.enqueue_wire(0, msg.clone()));
        assert!(!engine.enqueue_wire(99, msg));
    }

    #[test]
    fn sequenced_duplicates_are_deduplicated_on_the_batch_path() {
        // The endpoint's seq bookkeeping must keep working in front of the
        // lane: duplicates and stale re-deliveries never reach the batch.
        let (servers, _) = record_log(2, 0, 0);
        let state = |v: f64| SyncMessage::State {
            x: Vector::from_slice(&[v, 0.0]),
            p: Matrix::scalar(2, 0.5),
        };
        let mut seq_ref = SequentialIngest::new(servers.clone());
        let mut batched = BatchedIngest::new(servers);
        let mut batch = FrameBatch::new();
        for (seq, v) in [(1, 1.0), (2, 2.0), (2, 9.0), (1, 9.0)] {
            batch.push_raw(
                0,
                &WireMessage::Sync {
                    seq: Some(seq),
                    msg: state(v),
                }
                .encode(),
            );
        }
        seq_ref.ingest_tick(batch.as_bytes());
        batched.ingest_tick(batch.as_bytes());
        let a = seq_ref.finish();
        let b = batched.finish();
        assert_same_endpoints(&b.endpoints, &a.endpoints, "dedup");
        let (_, ep) = &b.endpoints[0];
        assert_eq!(ep.delivery().stale_drops, 2);
        assert_eq!(ep.last_seq(), 2);
        assert_eq!(ep.filter().state()[0], 2.0, "stale 9.0 never applied");
    }
}
