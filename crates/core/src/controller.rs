//! The closed-loop fleet controller: periodic re-allocation of per-stream
//! precision bounds from live rate estimates.
//!
//! [`crate::BudgetAllocator`] solves one allocation from demand curves; this
//! controller runs that solve *continuously*: every `period` ticks it reads
//! each source's live [`crate::RateEstimator`], recomputes the allocation
//! for the fleet budget, and pushes the new bounds into the sources via
//! [`crate::SourceEndpoint::set_delta`]. Streams whose volatility changes
//! mid-flight (regime switches, bursts) automatically trade precision with
//! the rest of the fleet at the next control round — the "dynamic query
//! optimization" flavour of the paper's resource-management claim.

use kalstream_obs::{Counter, Instrument, Scope};

use crate::{BudgetAllocator, CoreError, Result, SourceEndpoint, StreamDemand};

/// Periodic fleet-wide δ re-allocation.
#[derive(Debug, Clone)]
pub struct FleetController {
    /// Control period in ticks.
    period: u64,
    /// Fleet message budget (messages per tick, summed over streams).
    budget_rate: f64,
    /// Per-stream importance weights (1.0 = equal).
    weights: Vec<f64>,
    /// Floor applied to allocated bounds (a protocol δ must be positive).
    delta_floor: f64,
    ticks: u64,
    rounds: Counter,
    failed_rounds: Counter,
}

impl FleetController {
    /// Creates a controller for `n_streams` streams re-allocating every
    /// `period` ticks under `budget_rate` messages/tick.
    ///
    /// # Errors
    /// [`CoreError::BadConfig`] on a zero period, non-positive budget, or
    /// zero streams.
    pub fn new(n_streams: usize, period: u64, budget_rate: f64) -> Result<Self> {
        if period == 0 {
            return Err(CoreError::BadConfig {
                what: "period",
                reason: "must be ≥ 1".into(),
            });
        }
        if n_streams == 0 {
            return Err(CoreError::BadConfig {
                what: "n_streams",
                reason: "need at least one stream".into(),
            });
        }
        if !(budget_rate > 0.0 && budget_rate.is_finite()) {
            return Err(CoreError::BadConfig {
                what: "budget_rate",
                reason: format!("must be positive and finite, got {budget_rate}"),
            });
        }
        Ok(FleetController {
            period,
            budget_rate,
            weights: vec![1.0; n_streams],
            delta_floor: 1e-4,
            ticks: 0,
            rounds: Counter::new(),
            failed_rounds: Counter::new(),
        })
    }

    /// Retunes the fleet message budget mid-flight. The new value is
    /// validated at the next control round, not here: an invalid budget
    /// fails that round (counted in [`FleetController::failed_rounds`])
    /// rather than panicking the control loop.
    pub fn set_budget_rate(&mut self, rate: f64) {
        self.budget_rate = rate;
    }

    /// Sets per-stream importance weights (higher = keep tighter).
    ///
    /// # Errors
    /// [`CoreError::BadConfig`] when the length disagrees with the stream
    /// count or any weight is non-positive.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Result<Self> {
        if weights.len() != self.weights.len() {
            return Err(CoreError::BadConfig {
                what: "weights",
                reason: format!(
                    "expected {} weights, got {}",
                    self.weights.len(),
                    weights.len()
                ),
            });
        }
        if weights.iter().any(|w| !(w.is_finite() && *w > 0.0)) {
            return Err(CoreError::BadConfig {
                what: "weights",
                reason: "weights must be positive and finite".into(),
            });
        }
        self.weights = weights;
        Ok(self)
    }

    /// Control rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.get()
    }

    /// Control rounds that reached the allocator and failed — e.g. an
    /// invalid budget set via [`FleetController::set_budget_rate`]. A
    /// steadily growing count is the diagnostic that re-allocation is
    /// frozen; pre-fix, these failures were silently swallowed.
    pub fn failed_rounds(&self) -> u64 {
        self.failed_rounds.get()
    }

    /// Advances the controller one tick; on period boundaries, re-allocates
    /// and retunes the sources. Returns the fresh per-stream bounds when a
    /// control round ran.
    ///
    /// Sources whose rate estimator is still empty (cold start) keep their
    /// current bound; the allocation runs over the warm ones only.
    ///
    /// # Panics
    /// Panics when `sources.len()` disagrees with the configured stream
    /// count.
    pub fn tick(&mut self, sources: &mut [SourceEndpoint]) -> Option<Vec<f64>> {
        assert_eq!(sources.len(), self.weights.len(), "stream count mismatch");
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.period) {
            return None;
        }
        // Collect demands from warm sources.
        let mut warm_index = Vec::new();
        let mut demands = Vec::new();
        for (i, source) in sources.iter().enumerate() {
            let samples = source.rate_estimator().samples();
            if let Ok(demand) = StreamDemand::new(samples, self.weights[i]) {
                warm_index.push(i);
                demands.push(demand);
            }
        }
        if demands.is_empty() {
            // Cold start (no warm estimator yet) — not a failure.
            return None;
        }
        let floored = self.solve(&demands)?;
        let mut new_deltas: Vec<f64> = sources.iter().map(SourceEndpoint::delta).collect();
        for (slot, &i) in warm_index.iter().enumerate() {
            sources[i].set_delta(floored[slot]);
            new_deltas[i] = floored[slot];
        }
        self.rounds += 1;
        Some(new_deltas)
    }

    /// The consumer-side control round: advances one tick and, on period
    /// boundaries, re-allocates from caller-supplied per-stream error
    /// samples **without touching any source** — the bounds come back as a
    /// vector for the caller to deliver as [`crate::wire::WireMessage::Bound`]
    /// directives over the feedback link (via
    /// [`crate::ServerEndpoint::push_bound_directive`]).
    ///
    /// This is the path the query runtime uses: the sources live on the far
    /// side of a lossy link, so the controller cannot call
    /// [`crate::SourceEndpoint::set_delta`] directly. `samples[i]` is the
    /// recent error-magnitude window for stream `i` (any origin — server
    /// residuals, mirrored rate estimates); a stream with too few samples is
    /// cold and gets `None` (keep the current bound).
    ///
    /// # Panics
    /// Panics when `samples.len()` disagrees with the configured stream
    /// count.
    pub fn tick_demands(&mut self, samples: &[Vec<f64>]) -> Option<Vec<Option<f64>>> {
        assert_eq!(samples.len(), self.weights.len(), "stream count mismatch");
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.period) {
            return None;
        }
        let mut warm_index = Vec::new();
        let mut demands = Vec::new();
        for (i, window) in samples.iter().enumerate() {
            if let Ok(demand) = StreamDemand::new(window.clone(), self.weights[i]) {
                warm_index.push(i);
                demands.push(demand);
            }
        }
        if demands.is_empty() {
            return None;
        }
        let floored = self.solve(&demands)?;
        let mut directives = vec![None; samples.len()];
        for (slot, &i) in warm_index.iter().enumerate() {
            directives[i] = Some(floored[slot]);
        }
        self.rounds += 1;
        Some(directives)
    }

    /// One allocator solve with the bound floor applied; failures are
    /// counted, not propagated (shared by both control paths).
    fn solve(&mut self, demands: &[StreamDemand]) -> Option<Vec<f64>> {
        match BudgetAllocator::allocate(demands, self.budget_rate) {
            Ok(a) => Some(a.deltas.iter().map(|d| d.max(self.delta_floor)).collect()),
            Err(_) => {
                // Pre-fix this was `.ok()?`: a persistently failing solve
                // silently froze re-allocation forever. Count it so a frozen
                // fleet is diagnosable.
                self.failed_rounds += 1;
                None
            }
        }
    }
}

impl Instrument for FleetController {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("ticks", self.ticks);
        scope.counter("rounds", self.rounds);
        scope.counter("failed_rounds", self.failed_rounds);
        scope.gauge("budget_rate", self.budget_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtocolConfig, SessionSpec};

    fn sources(n: usize) -> Vec<SourceEndpoint> {
        (0..n)
            .map(|_| {
                SessionSpec::default_scalar(0.0, ProtocolConfig::new(1.0).unwrap())
                    .unwrap()
                    .build()
                    .split()
                    .0
            })
            .collect()
    }

    #[test]
    fn construction_validates() {
        assert!(FleetController::new(2, 0, 1.0).is_err());
        assert!(FleetController::new(0, 10, 1.0).is_err());
        assert!(FleetController::new(2, 10, 0.0).is_err());
        assert!(FleetController::new(2, 10, 1.0).is_ok());
        assert!(FleetController::new(2, 10, 1.0)
            .unwrap()
            .with_weights(vec![1.0])
            .is_err());
        assert!(FleetController::new(2, 10, 1.0)
            .unwrap()
            .with_weights(vec![1.0, -1.0])
            .is_err());
    }

    #[test]
    fn fires_only_on_period_boundaries() {
        let mut ctrl = FleetController::new(2, 5, 10.0).unwrap();
        let mut srcs = sources(2);
        // Warm the estimators.
        for t in 0..4u64 {
            for s in srcs.iter_mut() {
                s.decide(&[t as f64 * 0.1]);
            }
            assert!(ctrl.tick(&mut srcs).is_none(), "fired early at tick {t}");
        }
        for s in srcs.iter_mut() {
            s.decide(&[0.5]);
        }
        assert!(ctrl.tick(&mut srcs).is_some());
        assert_eq!(ctrl.rounds(), 1);
    }

    #[test]
    fn volatile_stream_gets_looser_bound_live() {
        let mut ctrl = FleetController::new(2, 200, 0.2).unwrap();
        let mut srcs = sources(2);
        let mut last = None;
        for t in 0..400u64 {
            // Stream 0 calm, stream 1 wild.
            srcs[0].decide(&[(t as f64 * 0.001).sin() * 0.01]);
            srcs[1].decide(&[(t as f64 * 0.9).sin() * 5.0]);
            if let Some(deltas) = ctrl.tick(&mut srcs) {
                last = Some(deltas);
            }
        }
        let deltas = last.expect("at least one control round");
        assert!(
            deltas[0] < deltas[1],
            "calm stream should get the tighter bound: {deltas:?}"
        );
        assert_eq!(srcs[0].delta(), deltas[0]);
        assert_eq!(srcs[1].delta(), deltas[1]);
    }

    #[test]
    fn cold_sources_are_skipped_gracefully() {
        let mut ctrl = FleetController::new(1, 1, 1.0).unwrap();
        let mut srcs = sources(1);
        // No decide() calls yet: estimators empty ⇒ no allocation.
        assert!(ctrl.tick(&mut srcs).is_none());
        assert_eq!(srcs[0].delta(), 1.0);
    }

    #[test]
    fn failed_allocator_rounds_are_counted_not_swallowed() {
        // Pre-fix regression: `allocate(...).ok()?` silently swallowed
        // allocator errors, so a fleet whose budget went invalid mid-flight
        // froze re-allocation forever with zero diagnostics.
        let mut ctrl = FleetController::new(1, 1, 1.0).unwrap();
        let mut srcs = sources(1);
        srcs[0].decide(&[0.5]); // warm the estimator so allocate() is reached
        ctrl.set_budget_rate(f64::NAN);
        assert!(ctrl.tick(&mut srcs).is_none());
        assert_eq!(ctrl.failed_rounds(), 1, "failure must be counted");
        assert_eq!(ctrl.rounds(), 0);
        assert_eq!(srcs[0].delta(), 1.0, "bounds untouched on failure");
        // A repaired budget resumes control.
        ctrl.set_budget_rate(1.0);
        srcs[0].decide(&[0.5]);
        assert!(ctrl.tick(&mut srcs).is_some());
        assert_eq!(ctrl.failed_rounds(), 1);
        assert_eq!(ctrl.rounds(), 1);
    }

    #[test]
    fn nan_observations_do_not_freeze_fleet_reallocation() {
        // Composed regression across source + rate + controller: pre-fix,
        // NaN observations reached the rate window, every StreamDemand
        // failed validation, and the controller never ran a round again —
        // the fleet froze. Post-fix the source rejects NaN before the
        // window, so control rounds keep running.
        let mut ctrl = FleetController::new(1, 10, 1.0).unwrap();
        let mut srcs = sources(1);
        for t in 0..30u64 {
            let v = if t.is_multiple_of(3) {
                f64::NAN
            } else {
                (t as f64 * 0.3).sin()
            };
            srcs[0].decide(&[v]);
            ctrl.tick(&mut srcs);
        }
        assert!(
            ctrl.rounds() > 0,
            "NaN observations froze the fleet controller"
        );
        assert_eq!(ctrl.failed_rounds(), 0);
        assert_eq!(srcs[0].rejected_measurements(), 10);
    }

    #[test]
    fn tick_demands_mirrors_tick_without_touching_sources() {
        // The same demand windows must yield the same bounds through both
        // control paths — the server-side path just returns them instead of
        // applying them.
        let windows: Vec<Vec<f64>> = vec![
            (0..100)
                .map(|t| ((t as f64 * 0.001).sin() * 0.01).abs())
                .collect(),
            (0..100)
                .map(|t| ((t as f64 * 0.9).sin() * 5.0).abs())
                .collect(),
        ];
        let mut direct = FleetController::new(2, 1, 0.2).unwrap();
        let mut srcs = sources(2);
        for (s, w) in srcs.iter_mut().zip(&windows) {
            for &e in w {
                // Feed the same magnitudes into the live rate estimators.
                s.decide(&[e]);
            }
        }
        let applied = direct.tick(&mut srcs).expect("control round");

        let mut via_demands = FleetController::new(2, 1, 0.2).unwrap();
        let samples: Vec<Vec<f64>> = srcs.iter().map(|s| s.rate_estimator().samples()).collect();
        let directives = via_demands.tick_demands(&samples).expect("control round");
        for (a, d) in applied.iter().zip(&directives) {
            assert_eq!(Some(*a), *d);
        }
        assert_eq!(via_demands.rounds(), 1);
    }

    #[test]
    fn tick_demands_skips_cold_streams_and_fires_on_period() {
        let mut ctrl = FleetController::new(2, 2, 1.0).unwrap();
        let warm: Vec<f64> = (0..50).map(|t| (t as f64 * 0.3).sin().abs()).collect();
        let samples = vec![warm, Vec::new()];
        assert!(
            ctrl.tick_demands(&samples).is_none(),
            "off-period tick fired"
        );
        let directives = ctrl.tick_demands(&samples).expect("period boundary");
        assert!(directives[0].is_some());
        assert_eq!(directives[1], None, "cold stream keeps its bound");
    }

    #[test]
    fn tick_demands_counts_failed_rounds() {
        let mut ctrl = FleetController::new(1, 1, 1.0).unwrap();
        ctrl.set_budget_rate(f64::NAN);
        let samples = vec![vec![0.5, 0.7, 0.2]];
        assert!(ctrl.tick_demands(&samples).is_none());
        assert_eq!(ctrl.failed_rounds(), 1);
        assert_eq!(ctrl.rounds(), 0);
    }

    #[test]
    fn weights_tighten_important_streams_live() {
        let mut ctrl = FleetController::new(2, 100, 0.5)
            .unwrap()
            .with_weights(vec![10.0, 1.0])
            .unwrap();
        let mut srcs = sources(2);
        let mut last = None;
        for t in 0..200u64 {
            // Identical streams; only the weight differs.
            let v = (t as f64 * 0.3).sin();
            srcs[0].decide(&[v]);
            srcs[1].decide(&[v]);
            if let Some(d) = ctrl.tick(&mut srcs) {
                last = Some(d);
            }
        }
        let deltas = last.expect("control round ran");
        assert!(deltas[0] <= deltas[1], "weighted stream looser: {deltas:?}");
    }
}
