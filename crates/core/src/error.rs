//! Error type for the protocol layer.

use std::fmt;

use kalstream_filter::FilterError;

/// Errors produced by protocol construction, stepping, and wire decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying filter failed.
    Filter(FilterError),
    /// A wire message could not be decoded.
    Decode {
        /// What went wrong.
        reason: String,
    },
    /// A configuration value is out of range.
    BadConfig {
        /// Which parameter.
        what: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The allocator was given an infeasible problem (e.g. budget smaller
    /// than the minimum achievable total rate).
    Infeasible {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Filter(e) => write!(f, "filter error: {e}"),
            CoreError::Decode { reason } => write!(f, "wire decode error: {reason}"),
            CoreError::BadConfig { what, reason } => write!(f, "bad config {what}: {reason}"),
            CoreError::Infeasible { reason } => write!(f, "infeasible allocation: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Filter(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FilterError> for CoreError {
    fn from(e: FilterError) -> Self {
        CoreError::Filter(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::Decode {
            reason: "truncated".into()
        }
        .to_string()
        .contains("truncated"));
        assert!(CoreError::BadConfig {
            what: "delta",
            reason: "negative".into()
        }
        .to_string()
        .contains("delta"));
        assert!(CoreError::Infeasible {
            reason: "budget too small".into()
        }
        .to_string()
        .contains("budget"));
    }

    #[test]
    fn filter_error_chains() {
        use std::error::Error;
        let e: CoreError = FilterError::EmptyBank.into();
        assert!(e.source().is_some());
    }
}
