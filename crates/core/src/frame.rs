//! Length-prefixed frame layer for batched multi-stream ingest.
//!
//! One server drains traffic from many sessions, so the unit of transfer on
//! the ingest path is not a single [`SyncMessage`] but a **batch**: many
//! messages from many streams packed back-to-back into one contiguous
//! buffer. Each message travels inside a frame:
//!
//! ```text
//! frame := stream_id:u32 len:u32 body          (little-endian)
//! batch := frame*
//! ```
//!
//! The `len` prefix is what keeps a batch robust: a frame whose *body* fails
//! to decode is skipped (`len` says exactly where the next frame starts), so
//! one corrupt message never desyncs the rest of the batch. Only a mangled
//! frame *header* — truncation mid-header or a `len` that overruns the
//! buffer — ends the walk, because there is no longer a trustworthy
//! resynchronisation point.
//!
//! [`FrameBatch`] owns a [`BytesMut`] so batches can cycle through a
//! [`BufferPool`]: in steady state every buffer has reached its high-water
//! capacity and batch assembly performs zero heap allocations.

use bytes::{BufMut, BytesMut};

use crate::wire::{SyncMessage, WireMessage};

/// Bytes of framing overhead per message: `stream_id:u32 len:u32`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// A batch of framed messages being assembled into one wire buffer.
#[derive(Debug, Default)]
pub struct FrameBatch {
    buf: BytesMut,
    frames: usize,
}

impl FrameBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        FrameBatch::default()
    }

    /// Creates an empty batch with `cap` bytes of buffer capacity.
    pub fn with_capacity(cap: usize) -> Self {
        FrameBatch {
            buf: BytesMut::with_capacity(cap),
            frames: 0,
        }
    }

    /// Wraps a recycled buffer (cleared, capacity retained) — the pooled
    /// path that keeps steady-state batch assembly allocation-free.
    pub fn from_buffer(mut buf: BytesMut) -> Self {
        buf.clear();
        FrameBatch { buf, frames: 0 }
    }

    /// Appends one message as a frame for `stream_id`.
    pub fn push(&mut self, stream_id: u32, msg: &SyncMessage) {
        let len = msg.encoded_len();
        self.buf.reserve(FRAME_HEADER_BYTES + len);
        self.buf.put_u32_le(stream_id);
        self.buf.put_u32_le(len as u32);
        msg.encode_into(&mut self.buf);
        self.frames += 1;
    }

    /// Appends an already-encoded message body as a frame for `stream_id` —
    /// the shard router uses this to re-batch frames without re-encoding.
    pub fn push_raw(&mut self, stream_id: u32, body: &[u8]) {
        self.buf.reserve(FRAME_HEADER_BYTES + body.len());
        self.buf.put_u32_le(stream_id);
        self.buf.put_u32_le(body.len() as u32);
        self.buf.put_slice(body);
        self.frames += 1;
    }

    /// Number of frames in the batch.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Total wire bytes (headers + bodies).
    pub fn wire_len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no frames have been pushed.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// The assembled wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Clears the batch, retaining buffer capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.frames = 0;
    }

    /// Unwraps the owned buffer (for sending through a channel and later
    /// recycling via [`FrameBatch::from_buffer`]).
    pub fn into_buffer(self) -> BytesMut {
        self.buf
    }
}

/// One decoded frame, borrowing the batch buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The stream this message belongs to.
    pub stream_id: u32,
    /// The message's wire encoding (what [`SyncMessage::decode`] takes).
    pub body: &'a [u8],
}

/// Stateful frame-batch decoder: walks batches and counts malformed input
/// instead of failing, mirroring [`crate::ServerEndpoint`]'s
/// drop-and-count policy for unparseable traffic.
#[derive(Debug, Default, Clone)]
pub struct FrameDecoder {
    decode_failures: u64,
}

impl FrameDecoder {
    /// Creates a decoder with zeroed failure counters.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Frames or message bodies that failed to parse (dropped, counted).
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures
    }

    /// Walks every structurally valid frame in `wire`, without decoding
    /// bodies — the shard router's path. A truncated header or a length
    /// prefix overrunning the buffer counts one failure and ends the walk
    /// (past that point there is no reliable frame boundary).
    pub fn for_each_frame(&mut self, mut wire: &[u8], mut f: impl FnMut(Frame<'_>)) {
        while !wire.is_empty() {
            if wire.len() < FRAME_HEADER_BYTES {
                self.decode_failures += 1;
                return;
            }
            let stream_id = u32::from_le_bytes(wire[0..4].try_into().unwrap());
            let len = u32::from_le_bytes(wire[4..8].try_into().unwrap()) as usize;
            let rest = &wire[FRAME_HEADER_BYTES..];
            if rest.len() < len {
                self.decode_failures += 1;
                return;
            }
            f(Frame {
                stream_id,
                body: &rest[..len],
            });
            wire = &rest[len..];
        }
    }

    /// Walks `wire` and decodes each frame's body into a [`SyncMessage`] —
    /// the shard worker's path. A body that fails to decode counts one
    /// failure and the walk **continues** with the next frame: the length
    /// prefix, not the body, carries the framing.
    pub fn for_each_message(&mut self, wire: &[u8], mut f: impl FnMut(u32, SyncMessage)) {
        let mut body_failures = 0;
        self.for_each_frame(wire, |frame| match SyncMessage::decode(frame.body) {
            Ok(msg) => f(frame.stream_id, msg),
            Err(_) => body_failures += 1,
        });
        self.decode_failures += body_failures;
    }

    /// Like [`FrameDecoder::for_each_message`] but decodes bodies as v3
    /// [`WireMessage`]s, accepting sequenced syncs and acks alongside legacy
    /// v2 bodies — the loss-tolerant ingest path.
    pub fn for_each_wire_message(&mut self, wire: &[u8], mut f: impl FnMut(u32, WireMessage)) {
        let mut body_failures = 0;
        self.for_each_frame(wire, |frame| match WireMessage::decode(frame.body) {
            Ok(msg) => f(frame.stream_id, msg),
            Err(_) => body_failures += 1,
        });
        self.decode_failures += body_failures;
    }
}

/// Upper bound on a single frame body arriving over a byte stream. Largest
/// legitimate bodies are model syncs for high-dimensional banks (a few KiB);
/// 1 MiB leaves three orders of magnitude of slack while keeping a hostile
/// or corrupt length prefix from pinning buffer memory per connection.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Fatal framing error on a byte stream: the length prefix claims a body
/// larger than [`MAX_FRAME_BYTES`]. Unlike a bad body (skippable) this means
/// the stream's framing itself cannot be trusted, so the decoder poisons
/// itself and the connection must be torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizedFrame {
    /// Stream id carried by the offending header.
    pub stream_id: u32,
    /// Claimed body length.
    pub len: usize,
}

impl std::fmt::Display for OversizedFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame for stream {} claims {} byte body (max {})",
            self.stream_id, self.len, MAX_FRAME_BYTES
        )
    }
}

impl std::error::Error for OversizedFrame {}

/// Incremental frame decoder for a continuous byte stream (a socket).
///
/// [`FrameDecoder`] assumes it sees whole batches; a socket delivers
/// arbitrary fragments — a read may end mid-header, mid-body, or contain
/// ten frames and half of an eleventh. `StreamDecoder` buffers the
/// unconsumed tail between [`StreamDecoder::feed`] calls and emits exactly
/// the frames the same bytes would produce if they had arrived in one
/// piece, no matter how the reads split them (the invariant the fuzz
/// proptest below pins down: byte-at-a-time equals one-shot).
///
/// Malformed input never panics and never mis-frames: the only
/// unrecoverable condition is a length prefix over [`MAX_FRAME_BYTES`],
/// which returns [`OversizedFrame`] and poisons the decoder (every later
/// `feed` repeats the error) so the owning connection closes instead of
/// buffering unboundedly.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so steady-state feeds
    /// don't memmove per frame.
    pos: usize,
    frames: u64,
    poisoned: Option<OversizedFrame>,
}

/// Compact the internal buffer once the dead prefix passes this many bytes.
const STREAM_COMPACT_BYTES: usize = 16 * 1024;

impl StreamDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// Appends `bytes` and emits every frame that is now complete, in order.
    ///
    /// Partial trailing input (up to a header-plus-body minus one byte) is
    /// buffered for the next call — at EOF, leftover bytes mean the peer
    /// truncated a frame ([`StreamDecoder::buffered`] exposes this).
    pub fn feed(
        &mut self,
        bytes: &[u8],
        mut f: impl FnMut(u32, &[u8]),
    ) -> Result<(), OversizedFrame> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        self.buf.extend_from_slice(bytes);
        loop {
            let avail = &self.buf[self.pos..];
            if avail.len() < FRAME_HEADER_BYTES {
                break;
            }
            let stream_id = u32::from_le_bytes(avail[0..4].try_into().unwrap());
            let len = u32::from_le_bytes(avail[4..8].try_into().unwrap()) as usize;
            if len > MAX_FRAME_BYTES {
                let err = OversizedFrame { stream_id, len };
                self.poisoned = Some(err);
                self.buf = Vec::new();
                self.pos = 0;
                return Err(err);
            }
            if avail.len() < FRAME_HEADER_BYTES + len {
                break;
            }
            f(
                stream_id,
                &avail[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len],
            );
            self.frames += 1;
            self.pos += FRAME_HEADER_BYTES + len;
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > STREAM_COMPACT_BYTES {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(())
    }

    /// Complete frames emitted so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Bytes buffered awaiting the rest of a frame (0 at any frame
    /// boundary; nonzero at EOF means the peer died mid-frame).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether a fatal framing error has been seen.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }
}

/// Default cap on pooled buffers — comfortably above the deepest in-flight
/// population any configured pipeline produces (`shards × 4` channel slots,
/// so 32 at the 8-shard maximum) while bounding worst-case retention.
pub const DEFAULT_POOL_CAP: usize = 64;

/// A capacity-ordered pool of recycled [`BytesMut`] buffers.
///
/// Buffers returned to the pool keep their capacity, and [`BufferPool::get`]
/// always hands out the **largest** one: the working set converges on the
/// buffers that have already grown to the workload's high-water batch size,
/// while undersized stragglers sink to the bottom and stop circulating
/// (instead of cycling in later and paying a growth realloc mid-steady-state).
/// Once the working set is at high water, batch assembly stops allocating
/// entirely — the property `bench_ingest`'s allocs-per-batch gate measures.
///
/// The pool holds at most `cap` buffers. At the cap, [`BufferPool::put`]
/// keeps whichever of (incoming buffer, smallest pooled buffer) has more
/// capacity and sheds the other — retention is bounded while the pool still
/// converges on the largest buffers seen.
#[derive(Debug)]
pub struct BufferPool {
    /// Sorted by capacity, ascending; `get` pops from the back.
    free: Vec<BytesMut>,
    cap: usize,
    shed: u64,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::bounded(DEFAULT_POOL_CAP)
    }
}

impl BufferPool {
    /// Creates an empty pool holding at most [`DEFAULT_POOL_CAP`] buffers.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Creates an empty pool holding at most `cap` buffers.
    ///
    /// # Panics
    /// Panics when `cap` is zero (a pool that can hold nothing is a bug at
    /// the call site, not a runtime condition).
    pub fn bounded(cap: usize) -> Self {
        assert!(cap > 0, "pool cap must be positive");
        BufferPool {
            free: Vec::new(),
            cap,
            shed: 0,
        }
    }

    /// Takes the largest-capacity cleared buffer from the pool, or a fresh
    /// one if empty.
    pub fn get(&mut self) -> BytesMut {
        self.free
            .pop()
            .map(|mut b| {
                b.clear();
                b
            })
            .unwrap_or_default()
    }

    /// Returns a buffer to the pool for reuse. At the cap, the smaller of
    /// (incoming, smallest pooled) is dropped and counted instead of growing
    /// the pool without bound.
    pub fn put(&mut self, buf: BytesMut) {
        if self.free.len() >= self.cap {
            self.shed += 1;
            if buf.capacity() <= self.free[0].capacity() {
                return; // incoming is the smallest: drop it
            }
            self.free.remove(0); // evict the smallest pooled buffer
        }
        let pos = self
            .free
            .partition_point(|b| b.capacity() <= buf.capacity());
        self.free.insert(pos, buf);
    }

    /// Buffers currently pooled.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// `true` when no buffers are pooled.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Buffers dropped at the cap instead of pooled.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_linalg::{Matrix, Vector};

    fn msg(v: f64) -> SyncMessage {
        SyncMessage::State {
            x: Vector::from_slice(&[v]),
            p: Matrix::scalar(1, 1.0),
        }
    }

    #[test]
    fn batch_roundtrip_many_streams() {
        let mut batch = FrameBatch::new();
        for id in 0..5u32 {
            batch.push(id, &msg(id as f64));
        }
        assert_eq!(batch.frames(), 5);
        let one = msg(0.0).encoded_len();
        assert_eq!(batch.wire_len(), 5 * (FRAME_HEADER_BYTES + one));

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        dec.for_each_message(batch.as_bytes(), |id, m| got.push((id, m)));
        assert_eq!(dec.decode_failures(), 0);
        assert_eq!(got.len(), 5);
        for (i, (id, m)) in got.iter().enumerate() {
            assert_eq!(*id, i as u32);
            assert_eq!(*m, msg(i as f64));
        }
    }

    #[test]
    fn push_raw_matches_push() {
        let m = msg(3.5);
        let mut a = FrameBatch::new();
        a.push(7, &m);
        let mut b = FrameBatch::new();
        b.push_raw(7, &m.encode());
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn garbage_body_skips_frame_without_desyncing() {
        let mut batch = FrameBatch::new();
        batch.push(1, &msg(1.0));
        batch.push_raw(2, b"\xFF\xFF\xFF"); // undecodable body, valid frame
        batch.push(3, &msg(3.0));

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        dec.for_each_message(batch.as_bytes(), |id, _| got.push(id));
        assert_eq!(got, vec![1, 3]); // frame 2 dropped, frame 3 survives
        assert_eq!(dec.decode_failures(), 1);
    }

    #[test]
    fn truncated_header_counts_and_stops() {
        let mut batch = FrameBatch::new();
        batch.push(1, &msg(1.0));
        let mut wire = batch.as_bytes().to_vec();
        wire.extend_from_slice(&[9, 0, 0]); // 3 stray bytes: not a header

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        dec.for_each_message(&wire, |id, _| got.push(id));
        assert_eq!(got, vec![1]);
        assert_eq!(dec.decode_failures(), 1);
    }

    #[test]
    fn overrunning_length_counts_and_stops() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&5u32.to_le_bytes());
        wire.extend_from_slice(&1000u32.to_le_bytes()); // body of 1000 bytes…
        wire.extend_from_slice(&[0; 10]); // …but only 10 present

        let mut dec = FrameDecoder::new();
        let mut count = 0;
        dec.for_each_frame(&wire, |_| count += 1);
        assert_eq!(count, 0);
        assert_eq!(dec.decode_failures(), 1);
    }

    #[test]
    fn empty_batch_decodes_to_nothing() {
        let mut dec = FrameDecoder::new();
        dec.for_each_frame(&[], |_| panic!("no frames expected"));
        assert_eq!(dec.decode_failures(), 0);
    }

    #[test]
    fn pooled_buffer_reuse_keeps_capacity() {
        let mut pool = BufferPool::new();
        let mut batch = FrameBatch::from_buffer(pool.get());
        for id in 0..8 {
            batch.push(id, &msg(id as f64));
        }
        let high_water = batch.wire_len();
        let buf = batch.into_buffer();
        let cap = buf.capacity();
        assert!(cap >= high_water);
        pool.put(buf);

        // Second fill of the same shape must not grow the buffer.
        let mut batch = FrameBatch::from_buffer(pool.get());
        for id in 0..8 {
            batch.push(id, &msg(id as f64));
        }
        assert_eq!(batch.wire_len(), high_water);
        assert_eq!(batch.into_buffer().capacity(), cap);
    }

    #[test]
    fn pool_is_capped_and_counts_shed() {
        // Pre-fix regression: `put` grew the pool without bound, so a
        // producer of buffers that never reuses them leaked memory forever.
        let mut pool = BufferPool::bounded(4);
        for i in 0..1000usize {
            pool.put(BytesMut::with_capacity(i + 1));
        }
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.shed(), 996);
        // The survivors must be the largest capacities seen.
        for _ in 0..4 {
            assert!(pool.get().capacity() >= 997);
        }
    }

    #[test]
    fn pool_cap_keeps_larger_of_incoming_and_smallest() {
        let mut pool = BufferPool::bounded(2);
        pool.put(BytesMut::with_capacity(100));
        pool.put(BytesMut::with_capacity(200));
        // Smaller than everything pooled: dropped, pool unchanged.
        pool.put(BytesMut::with_capacity(50));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.shed(), 1);
        assert!(pool.get().capacity() >= 200);
    }

    #[test]
    fn default_pool_uses_default_cap() {
        let mut pool = BufferPool::new();
        for _ in 0..(DEFAULT_POOL_CAP + 10) {
            pool.put(BytesMut::with_capacity(8));
        }
        assert_eq!(pool.len(), DEFAULT_POOL_CAP);
        assert_eq!(pool.shed(), 10);
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn zero_pool_cap_rejected() {
        let _ = BufferPool::bounded(0);
    }

    #[test]
    fn wire_message_walk_decodes_v3_and_legacy_frames() {
        let mut batch = FrameBatch::new();
        batch.push(1, &msg(1.0)); // legacy v2 body
        batch.push_raw(
            2,
            &WireMessage::Sync {
                seq: Some(9),
                msg: msg(2.0),
            }
            .encode(),
        );
        batch.push_raw(3, &WireMessage::Ack { seq: 4 }.encode());

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        dec.for_each_wire_message(batch.as_bytes(), |id, m| got.push((id, m)));
        assert_eq!(dec.decode_failures(), 0);
        assert_eq!(
            got,
            vec![
                (
                    1,
                    WireMessage::Sync {
                        seq: None,
                        msg: msg(1.0)
                    }
                ),
                (
                    2,
                    WireMessage::Sync {
                        seq: Some(9),
                        msg: msg(2.0)
                    }
                ),
                (3, WireMessage::Ack { seq: 4 }),
            ]
        );
    }

    #[test]
    fn wire_message_walk_skips_bad_body() {
        let mut batch = FrameBatch::new();
        batch.push_raw(1, b"\xFF\xFF"); // undecodable body, valid frame
        batch.push_raw(2, &WireMessage::Ack { seq: 1 }.encode());

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        dec.for_each_wire_message(batch.as_bytes(), |id, _| got.push(id));
        assert_eq!(got, vec![2]);
        assert_eq!(dec.decode_failures(), 1);
    }

    /// Frames `wire` produces when fed through a [`StreamDecoder`] in the
    /// given chunk sizes.
    fn stream_decode(wire: &[u8], chunks: impl Iterator<Item = usize>) -> Vec<(u32, Vec<u8>)> {
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        let mut rest = wire;
        for size in chunks {
            if rest.is_empty() {
                break;
            }
            let take = size.min(rest.len()).max(1);
            dec.feed(&rest[..take], |id, body| got.push((id, body.to_vec())))
                .expect("well-formed stream");
            rest = &rest[take..];
        }
        if !rest.is_empty() {
            dec.feed(rest, |id, body| got.push((id, body.to_vec())))
                .expect("well-formed stream");
        }
        assert_eq!(dec.buffered(), 0, "stream ended mid-frame");
        got
    }

    #[test]
    fn stream_decoder_byte_at_a_time_matches_one_shot() {
        let mut batch = FrameBatch::new();
        batch.push(1, &msg(1.0));
        batch.push_raw(2, b""); // zero-length body is a legal frame
        batch.push(3, &msg(3.0));
        let wire = batch.as_bytes();

        let one_shot = stream_decode(wire, std::iter::once(wire.len()));
        let trickled = stream_decode(wire, std::iter::repeat(1));
        assert_eq!(one_shot, trickled);
        assert_eq!(one_shot.len(), 3);
        assert_eq!(one_shot[1], (2, Vec::new()));
    }

    #[test]
    fn stream_decoder_split_mid_length_prefix() {
        let mut batch = FrameBatch::new();
        batch.push(9, &msg(2.0));
        let wire = batch.as_bytes();

        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        // First feed ends 6 bytes in: after stream_id, mid-way through len.
        dec.feed(&wire[..6], |id, _| got.push(id)).unwrap();
        assert!(got.is_empty());
        assert_eq!(dec.buffered(), 6);
        dec.feed(&wire[6..], |id, _| got.push(id)).unwrap();
        assert_eq!(got, vec![9]);
        assert_eq!(dec.buffered(), 0);
        assert_eq!(dec.frames(), 1);
    }

    #[test]
    fn stream_decoder_oversized_len_poisons() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&7u32.to_le_bytes());
        wire.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());

        let mut dec = StreamDecoder::new();
        let err = dec
            .feed(&wire, |_, _| panic!("no frame expected"))
            .unwrap_err();
        assert_eq!(err.stream_id, 7);
        assert_eq!(err.len, MAX_FRAME_BYTES + 1);
        assert!(dec.is_poisoned());
        // Poison is sticky: even valid bytes now error without emitting.
        let mut batch = FrameBatch::new();
        batch.push(1, &msg(1.0));
        let again = dec
            .feed(batch.as_bytes(), |_, _| panic!("poisoned decoder emitted"))
            .unwrap_err();
        assert_eq!(again, err);
    }

    #[test]
    fn stream_decoder_compacts_long_streams() {
        // Push far more than the compaction threshold through one decoder;
        // buffered() staying at 0 on frame boundaries proves the dead
        // prefix is reclaimed rather than accumulated.
        let mut batch = FrameBatch::new();
        batch.push(1, &msg(1.0));
        let wire = batch.as_bytes();
        let mut dec = StreamDecoder::new();
        let rounds = (4 * STREAM_COMPACT_BYTES / wire.len()) + 1;
        let mut count = 0u64;
        for _ in 0..rounds {
            dec.feed(wire, |_, _| count += 1).unwrap();
            assert_eq!(dec.buffered(), 0);
        }
        assert_eq!(count, rounds as u64);
        assert!(dec.buf.capacity() < 4 * STREAM_COMPACT_BYTES);
    }

    mod stream_decoder_fuzz {
        //! Fuzz-style properties for the socket-facing decoder: arbitrary
        //! split points must not change framing, and arbitrary garbage must
        //! never panic. This is the exact path raw TCP reads hit.
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_split_matches_one_shot(
                bodies in proptest::collection::vec(
                    proptest::collection::vec(0u8..=255, 0..40), 0..12),
                splits in proptest::collection::vec(1usize..17, 0..64),
            ) {
                let mut batch = FrameBatch::new();
                for (i, body) in bodies.iter().enumerate() {
                    batch.push_raw(i as u32, body);
                }
                let wire = batch.as_bytes();
                let one_shot = stream_decode(wire, std::iter::once(wire.len().max(1)));
                let split = stream_decode(wire, splits.into_iter().chain(std::iter::repeat(3)));
                prop_assert_eq!(&one_shot, &split);
                let expected: Vec<(u32, Vec<u8>)> = bodies
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (i as u32, b.clone()))
                    .collect();
                prop_assert_eq!(one_shot, expected);
            }

            #[test]
            fn garbage_never_panics_or_overbuffers(
                garbage in proptest::collection::vec(0u8..=255, 0..400),
                splits in proptest::collection::vec(1usize..9, 0..128),
            ) {
                let mut dec = StreamDecoder::new();
                let mut rest = &garbage[..];
                let mut emitted = 0usize;
                for size in splits {
                    if rest.is_empty() { break; }
                    let take = size.min(rest.len());
                    // Err (oversized len) is an acceptable outcome; panic is not.
                    if dec.feed(&rest[..take], |_, body| {
                        emitted += body.len();
                    }).is_err() {
                        prop_assert!(dec.is_poisoned());
                        prop_assert_eq!(dec.buffered(), 0);
                        return Ok(());
                    }
                    rest = &rest[take..];
                }
                // Whatever was emitted plus what waits is bounded by input.
                prop_assert!(dec.buffered() <= garbage.len());
                prop_assert!(emitted <= garbage.len());
            }
        }
    }
}
