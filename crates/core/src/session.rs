//! Session construction: installing the dynamic procedure at both ends.

use kalstream_filter::{
    models, AdaptiveConfig, AdaptiveKalmanFilter, BankConfig, KalmanFilter, ModelBank, StateModel,
};
use kalstream_linalg::Vector;

use crate::{Estimator, ProtocolConfig, Result, ServerEndpoint, SourceEndpoint};

/// Declarative description of one protocol session: which estimator runs at
/// the source, and the protocol contract. Building the spec yields a matched
/// [`SourceEndpoint`]/[`ServerEndpoint`] pair whose filters start
/// bit-identical — the protocol's core invariant.
pub struct SessionSpec {
    estimator: Estimator,
    config: ProtocolConfig,
}

impl SessionSpec {
    /// A fixed-model session.
    ///
    /// # Errors
    /// Propagates filter-construction errors (shape mismatches).
    pub fn fixed(model: StateModel, x0: Vector, p0: f64, config: ProtocolConfig) -> Result<Self> {
        let kf = KalmanFilter::new(model, x0, p0)?;
        Ok(SessionSpec {
            estimator: Estimator::Fixed(kf),
            config,
        })
    }

    /// A session whose source adapts `Q`/`R` online.
    ///
    /// # Errors
    /// Propagates filter-construction errors.
    pub fn adaptive(
        model: StateModel,
        x0: Vector,
        p0: f64,
        adapt: AdaptiveConfig,
        config: ProtocolConfig,
    ) -> Result<Self> {
        let kf = KalmanFilter::new(model, x0, p0)?;
        Ok(SessionSpec {
            estimator: Estimator::Adaptive(AdaptiveKalmanFilter::new(kf, adapt)),
            config,
        })
    }

    /// A session whose source runs a model bank.
    ///
    /// # Errors
    /// Propagates bank-construction errors (empty bank, mixed dims).
    pub fn bank(
        filters: Vec<KalmanFilter>,
        bank: BankConfig,
        config: ProtocolConfig,
    ) -> Result<Self> {
        Ok(SessionSpec {
            estimator: Estimator::Bank(ModelBank::new(filters, bank)?),
            config,
        })
    }

    /// The default scalar session the system installs when it knows nothing
    /// about a stream: an adaptive random-walk filter starting at `x0`.
    ///
    /// # Errors
    /// Propagates construction errors (none expected for valid `config`).
    pub fn default_scalar(x0: f64, config: ProtocolConfig) -> Result<Self> {
        SessionSpec::adaptive(
            models::random_walk(0.01, 0.01),
            Vector::from_slice(&[x0]),
            1.0,
            AdaptiveConfig::default(),
            config,
        )
    }

    /// A scalar model bank covering the standard stream families
    /// (walk / velocity / acceleration), each with adaptive-friendly priors.
    ///
    /// # Errors
    /// Propagates construction errors (none expected).
    pub fn standard_bank(x0: f64, r: f64, config: ProtocolConfig) -> Result<Self> {
        let walk = KalmanFilter::new(models::random_walk(0.05, r), Vector::from_slice(&[x0]), 1.0)?;
        let cv = KalmanFilter::new(
            models::constant_velocity(1.0, 0.05, r),
            Vector::from_slice(&[x0, 0.0]),
            1.0,
        )?;
        let ca = KalmanFilter::new(
            models::constant_acceleration(1.0, 0.01, r),
            Vector::from_slice(&[x0, 0.0, 0.0]),
            1.0,
        )?;
        SessionSpec::bank(vec![walk, cv, ca], BankConfig::default(), config)
    }

    /// Builds the matched endpoint pair.
    pub fn build(self) -> StreamSession {
        let server_filter = self.estimator.active().clone();
        let source = SourceEndpoint::new(self.estimator, server_filter.clone(), self.config);
        let server = ServerEndpoint::new(server_filter);
        StreamSession { source, server }
    }
}

/// A matched source/server pair for one stream.
pub struct StreamSession {
    /// The source endpoint (plugs into the simulator as the producer).
    pub source: SourceEndpoint,
    /// The server endpoint (plugs into the simulator as the consumer).
    pub server: ServerEndpoint,
}

impl StreamSession {
    /// Splits into the two endpoints.
    pub fn split(self) -> (SourceEndpoint, ServerEndpoint) {
        (self.source, self.server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(delta: f64) -> ProtocolConfig {
        ProtocolConfig::new(delta).unwrap()
    }

    #[test]
    fn endpoints_start_identical() {
        let session = SessionSpec::fixed(
            models::random_walk(0.1, 0.1),
            Vector::from_slice(&[2.0]),
            1.0,
            config(0.5),
        )
        .unwrap()
        .build();
        assert_eq!(
            session.source.estimator().active().state(),
            session.server.filter().state()
        );
        assert_eq!(
            session.source.estimator().active().model(),
            session.server.filter().model()
        );
    }

    #[test]
    fn default_scalar_builds() {
        let (source, server) = SessionSpec::default_scalar(7.0, config(1.0))
            .unwrap()
            .build()
            .split();
        assert_eq!(server.filter().state()[0], 7.0);
        assert_eq!(source.delta(), 1.0);
    }

    #[test]
    fn standard_bank_has_three_models() {
        let session = SessionSpec::standard_bank(0.0, 0.1, config(1.0))
            .unwrap()
            .build();
        match session.source.estimator() {
            Estimator::Bank(bank) => assert_eq!(bank.len(), 3),
            other => panic!("expected bank, got {other:?}"),
        }
    }

    #[test]
    fn bank_spec_rejects_empty() {
        assert!(SessionSpec::bank(vec![], BankConfig::default(), config(1.0)).is_err());
    }
}
