//! Property-based tests over the protocol layer: the suppression invariant,
//! measurement pinning, wire-format totality, and allocation feasibility —
//! for arbitrary (well-formed) inputs, not just unit-test cases.

use kalstream_core::{
    pin_to_measurement, wire::SyncMessage, BudgetAllocator, Estimator, FrameBatch, FrameDecoder,
    IngestPipeline, ProtocolConfig, SequentialIngest, ServerEndpoint, SessionSpec, SourceEndpoint,
    StreamDemand, StreamSession,
};
use kalstream_filter::{models, KalmanFilter};
use kalstream_linalg::{Matrix, Vector};
use kalstream_sim::Producer;
use proptest::prelude::*;

fn source_with(delta: f64, q: f64, r: f64) -> SourceEndpoint {
    SessionSpec::fixed(
        models::random_walk(q, r),
        Vector::zeros(1),
        1.0,
        ProtocolConfig::new(delta).unwrap(),
    )
    .unwrap()
    .build()
    .split()
    .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shadow_always_within_delta_after_decision(
        delta in 0.05..5.0f64,
        q in 1e-4..0.5f64,
        r in 1e-4..0.5f64,
        zs in prop::collection::vec(-50.0..50.0f64, 1..80),
    ) {
        // The protocol invariant at the source: after every decision, the
        // shadow (= server) prediction is within δ of the observation.
        let mut source = source_with(delta, q, r);
        for &z in &zs {
            let _ = source.decide(&[z]);
            let served = source.shadow_predicted_value();
            prop_assert!(
                (served - z).abs() <= delta * (1.0 + 1e-9) + 1e-12,
                "served {served} vs z {z} at delta {delta}"
            );
        }
    }

    #[test]
    fn sync_iff_prediction_escapes_delta(
        delta in 0.1..2.0f64,
        jump in -20.0..20.0f64,
    ) {
        // Settle on 0, then observe `jump`: a sync must happen exactly when
        // |prediction − jump| > δ, i.e. (for a settled walk) |jump| > δ.
        let mut source = source_with(delta, 0.001, 0.001);
        for _ in 0..100 {
            source.decide(&[0.0]);
        }
        let pred = {
            // Clone to peek at the would-be prediction without mutating.
            let mut probe = source.clone();
            probe.decide(&[0.0]);
            probe.shadow_predicted_value()
        };
        let synced = source.decide(&[jump]).is_some();
        let escape = (pred - jump).abs() > delta;
        prop_assert_eq!(synced, escape, "pred {} jump {} delta {}", pred, jump, delta);
    }

    #[test]
    fn pinning_contract(
        x in prop::collection::vec(-100.0..100.0f64, 2),
        z in -100.0..100.0f64,
    ) {
        let h = Matrix::from_rows(&[&[1.0, 0.0]]);
        let xv = Vector::from_slice(&x);
        let zv = Vector::from_slice(&[z]);
        let pinned = pin_to_measurement(&xv, &h, &zv).unwrap();
        // Exact in the measurement subspace, untouched elsewhere.
        prop_assert!((pinned[0] - z).abs() < 1e-9);
        prop_assert_eq!(pinned[1], x[1]);
    }

    #[test]
    fn wire_decode_never_panics(payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = SyncMessage::decode(&payload);
    }

    #[test]
    fn wire_encoded_len_is_exact(
        xs in prop::collection::vec(-1e9..1e9f64, 1..6),
    ) {
        let n = xs.len();
        let msg = SyncMessage::State {
            x: Vector::from_slice(&xs),
            p: Matrix::identity(n),
        };
        prop_assert_eq!(msg.encode().len(), msg.encoded_len());
        let model_msg = SyncMessage::Model {
            model: models::random_walk(0.1, 0.1),
            x: Vector::from_slice(&xs[..1]),
            p: Matrix::identity(1),
        };
        prop_assert_eq!(model_msg.encode().len(), model_msg.encoded_len());
        let meas_msg = SyncMessage::Measurement { z: Vector::from_slice(&xs) };
        prop_assert_eq!(meas_msg.encode().len(), meas_msg.encoded_len());
    }

    #[test]
    fn allocation_respects_budget_and_ordering(
        scales in prop::collection::vec(0.01..10.0f64, 2..8),
        budget in 0.05..3.0f64,
    ) {
        let demands: Vec<StreamDemand> = scales
            .iter()
            .map(|&s| {
                let samples: Vec<f64> = (1..=40).map(|k| s * k as f64 / 40.0).collect();
                StreamDemand::new(samples, 1.0).unwrap()
            })
            .collect();
        let result = BudgetAllocator::allocate(&demands, budget).unwrap();
        prop_assert!(result.predicted_rate <= budget + 1e-9);
        prop_assert_eq!(result.deltas.len(), demands.len());
        prop_assert!(result.deltas.iter().all(|d| d.is_finite() && *d >= 0.0));
        // Uniform comparator is also feasible and never cheaper in weighted
        // imprecision.
        let uniform = BudgetAllocator::allocate_uniform(&demands, budget).unwrap();
        prop_assert!(uniform.predicted_rate <= budget + 1e-9);
        let cost = |r: &kalstream_core::AllocationResult| r.deltas.iter().sum::<f64>();
        prop_assert!(cost(&result) <= cost(&uniform) + 1e-9);
    }

    #[test]
    fn estimator_enum_is_consistent(
        zs in prop::collection::vec(-10.0..10.0f64, 1..40),
    ) {
        let kf = KalmanFilter::new(models::random_walk(0.05, 0.05), Vector::zeros(1), 1.0)
            .unwrap();
        let mut est = Estimator::Fixed(kf);
        for &z in &zs {
            est.step(&Vector::from_slice(&[z])).unwrap();
            prop_assert_eq!(est.measurement_dim(), 1);
            prop_assert!(est.active().state().is_finite());
        }
    }
    #[test]
    fn cloned_source_replays_byte_identical_traffic(
        delta in 0.05..2.0f64,
        zs in prop::collection::vec(-20.0..20.0f64, 20..120),
    ) {
        // The suppression protocol's precision guarantee rests on a cloned
        // filter replaying *bit-identically* — including after the hot path
        // moved onto reusable scratch buffers. Run a source halfway through
        // a trace (dirtying its scratch), clone it (the clone starts with
        // empty scratch), and replay the second half on both: every wire
        // message must encode to exactly the same bytes.
        let mut original = source_with(delta, 0.01, 0.05);
        let half = zs.len() / 2;
        for &z in &zs[..half] {
            let _ = original.decide(&[z]);
        }
        let mut replica = original.clone();
        for &z in &zs[half..] {
            let a = original.decide(&[z]);
            let b = replica.decide(&[z]);
            match (a, b) {
                (None, None) => {}
                (Some(ma), Some(mb)) => {
                    prop_assert_eq!(ma.encode(), mb.encode(), "wire bytes diverged");
                }
                (a, b) => prop_assert!(false, "sync decisions diverged: {a:?} vs {b:?}"),
            }
        }
        prop_assert_eq!(
            original.shadow_predicted_value(),
            replica.shadow_predicted_value()
        );
    }

    #[test]
    fn frame_batch_roundtrips_any_messages(
        msgs in prop::collection::vec(
            (any::<u32>(), prop::collection::vec(-1e6..1e6f64, 1..5)),
            0..20,
        ),
    ) {
        let expect: Vec<(u32, SyncMessage)> = msgs
            .iter()
            .map(|(id, xs)| {
                let msg = SyncMessage::State {
                    x: Vector::from_slice(xs),
                    p: Matrix::identity(xs.len()),
                };
                (*id, msg)
            })
            .collect();
        let mut batch = FrameBatch::new();
        for (id, msg) in &expect {
            batch.push(*id, msg);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        dec.for_each_message(batch.as_bytes(), |id, m| got.push((id, m)));
        prop_assert_eq!(dec.decode_failures(), 0);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn frame_walk_never_panics_on_garbage(
        wire in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Any byte soup: the walk terminates without panicking, and running
        // it twice is deterministic — same frames, same failure count.
        let mut dec_a = FrameDecoder::new();
        let mut frames_a = 0u64;
        dec_a.for_each_message(&wire, |_, _| frames_a += 1);
        let mut dec_b = FrameDecoder::new();
        let mut frames_b = 0u64;
        dec_b.for_each_message(&wire, |_, _| frames_b += 1);
        prop_assert_eq!(frames_a, frames_b);
        prop_assert_eq!(dec_a.decode_failures(), dec_b.decode_failures());
    }

    #[test]
    fn corrupt_frame_bodies_do_not_desync_the_batch(
        garbage in prop::collection::vec(any::<u8>(), 0..64),
        xs in prop::collection::vec(-100.0..100.0f64, 1..4),
    ) {
        // valid frame / arbitrary-body frame / valid frame: whatever the
        // middle bytes are, the length prefix carries the framing, so the
        // outer frames always survive and a bad body is counted, not fatal.
        let good = SyncMessage::State {
            x: Vector::from_slice(&xs),
            p: Matrix::identity(xs.len()),
        };
        let mut batch = FrameBatch::new();
        batch.push(1, &good);
        batch.push_raw(2, &garbage);
        batch.push(3, &good);

        let mut dec = FrameDecoder::new();
        let mut ids = Vec::new();
        dec.for_each_message(batch.as_bytes(), |id, _| ids.push(id));
        prop_assert!(ids.contains(&1) && ids.contains(&3), "outer frames lost: {ids:?}");
        // The garbage body either happened to parse (rare) or was counted.
        let failures = u64::from(!ids.contains(&2));
        prop_assert_eq!(dec.decode_failures(), failures);

        // Truncating the batch anywhere must not panic either; a cut
        // mid-frame is at most one more counted failure.
        let wire = batch.as_bytes();
        let cut = garbage.len().min(wire.len().saturating_sub(1));
        let mut dec = FrameDecoder::new();
        dec.for_each_message(&wire[..wire.len() - cut], |_, _| {});
    }

    #[test]
    fn sharded_ingest_matches_sequential_for_any_shard_count(
        signals in prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 20), 2..8),
        shards in 1usize..7,
    ) {
        // Record one framed log from real sources, then drain it through the
        // sequential reference and through a sharded pipeline with an
        // arbitrary shard count: message totals and every server filter must
        // be bit-identical.
        let ticks = 20usize;
        let mut sources: Vec<SourceEndpoint> = Vec::new();
        let mut servers: Vec<(u32, ServerEndpoint)> = Vec::new();
        for id in 0..signals.len() as u32 {
            let config = ProtocolConfig::new(0.3).unwrap();
            let StreamSession { source, server } =
                SessionSpec::default_scalar(0.0, config).unwrap().build();
            sources.push(source);
            servers.push((id, server));
        }
        let mut log: Vec<Vec<u8>> = Vec::with_capacity(ticks);
        for t in 0..ticks {
            let mut batch = FrameBatch::new();
            for (id, signal) in signals.iter().enumerate() {
                if let Some(payload) = sources[id].observe(t as u64, &[signal[t]]) {
                    batch.push_raw(id as u32, &payload);
                }
            }
            log.push(batch.as_bytes().to_vec());
        }

        let mut seq = SequentialIngest::new(servers.clone());
        for tick in &log {
            seq.ingest_tick(tick);
        }
        let seq_result = seq.finish();

        let mut pipe = IngestPipeline::start(shards, servers);
        for tick in &log {
            pipe.ingest_tick(tick);
        }
        let result = pipe.finish();

        let bits = |ep: &ServerEndpoint| -> Vec<u64> {
            let f = ep.filter();
            f.state()
                .iter()
                .map(|v| v.to_bits())
                .chain(f.covariance().as_slice().iter().map(|v| v.to_bits()))
                .collect()
        };
        prop_assert_eq!(result.total_messages(), seq_result.total_messages());
        prop_assert_eq!(result.endpoints.len(), seq_result.endpoints.len());
        for ((id_a, a), (id_b, b)) in result.endpoints.iter().zip(seq_result.endpoints.iter()) {
            prop_assert_eq!(id_a, id_b);
            prop_assert_eq!(bits(a), bits(b), "stream {} diverged at {} shards", id_a, shards);
            prop_assert_eq!(a.syncs_applied(), b.syncs_applied());
        }
    }
}
