//! Property-based tests over the protocol layer: the suppression invariant,
//! measurement pinning, wire-format totality, and allocation feasibility —
//! for arbitrary (well-formed) inputs, not just unit-test cases.

use kalstream_core::{
    pin_to_measurement, wire::SyncMessage, BudgetAllocator, Estimator, ProtocolConfig,
    SessionSpec, SourceEndpoint, StreamDemand,
};
use kalstream_filter::{models, KalmanFilter};
use kalstream_linalg::{Matrix, Vector};
use proptest::prelude::*;

fn source_with(delta: f64, q: f64, r: f64) -> SourceEndpoint {
    SessionSpec::fixed(
        models::random_walk(q, r),
        Vector::zeros(1),
        1.0,
        ProtocolConfig::new(delta).unwrap(),
    )
    .unwrap()
    .build()
    .split()
    .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shadow_always_within_delta_after_decision(
        delta in 0.05..5.0f64,
        q in 1e-4..0.5f64,
        r in 1e-4..0.5f64,
        zs in prop::collection::vec(-50.0..50.0f64, 1..80),
    ) {
        // The protocol invariant at the source: after every decision, the
        // shadow (= server) prediction is within δ of the observation.
        let mut source = source_with(delta, q, r);
        for &z in &zs {
            let _ = source.decide(&[z]);
            let served = source.shadow_predicted_value();
            prop_assert!(
                (served - z).abs() <= delta * (1.0 + 1e-9) + 1e-12,
                "served {served} vs z {z} at delta {delta}"
            );
        }
    }

    #[test]
    fn sync_iff_prediction_escapes_delta(
        delta in 0.1..2.0f64,
        jump in -20.0..20.0f64,
    ) {
        // Settle on 0, then observe `jump`: a sync must happen exactly when
        // |prediction − jump| > δ, i.e. (for a settled walk) |jump| > δ.
        let mut source = source_with(delta, 0.001, 0.001);
        for _ in 0..100 {
            source.decide(&[0.0]);
        }
        let pred = {
            // Clone to peek at the would-be prediction without mutating.
            let mut probe = source.clone();
            probe.decide(&[0.0]);
            probe.shadow_predicted_value()
        };
        let synced = source.decide(&[jump]).is_some();
        let escape = (pred - jump).abs() > delta;
        prop_assert_eq!(synced, escape, "pred {} jump {} delta {}", pred, jump, delta);
    }

    #[test]
    fn pinning_contract(
        x in prop::collection::vec(-100.0..100.0f64, 2),
        z in -100.0..100.0f64,
    ) {
        let h = Matrix::from_rows(&[&[1.0, 0.0]]);
        let xv = Vector::from_slice(&x);
        let zv = Vector::from_slice(&[z]);
        let pinned = pin_to_measurement(&xv, &h, &zv).unwrap();
        // Exact in the measurement subspace, untouched elsewhere.
        prop_assert!((pinned[0] - z).abs() < 1e-9);
        prop_assert_eq!(pinned[1], x[1]);
    }

    #[test]
    fn wire_decode_never_panics(payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = SyncMessage::decode(&payload);
    }

    #[test]
    fn wire_encoded_len_is_exact(
        xs in prop::collection::vec(-1e9..1e9f64, 1..6),
    ) {
        let n = xs.len();
        let msg = SyncMessage::State {
            x: Vector::from_slice(&xs),
            p: Matrix::identity(n),
        };
        prop_assert_eq!(msg.encode().len(), msg.encoded_len());
        let model_msg = SyncMessage::Model {
            model: models::random_walk(0.1, 0.1),
            x: Vector::from_slice(&xs[..1]),
            p: Matrix::identity(1),
        };
        prop_assert_eq!(model_msg.encode().len(), model_msg.encoded_len());
    }

    #[test]
    fn allocation_respects_budget_and_ordering(
        scales in prop::collection::vec(0.01..10.0f64, 2..8),
        budget in 0.05..3.0f64,
    ) {
        let demands: Vec<StreamDemand> = scales
            .iter()
            .map(|&s| {
                let samples: Vec<f64> = (1..=40).map(|k| s * k as f64 / 40.0).collect();
                StreamDemand::new(samples, 1.0).unwrap()
            })
            .collect();
        let result = BudgetAllocator::allocate(&demands, budget).unwrap();
        prop_assert!(result.predicted_rate <= budget + 1e-9);
        prop_assert_eq!(result.deltas.len(), demands.len());
        prop_assert!(result.deltas.iter().all(|d| d.is_finite() && *d >= 0.0));
        // Uniform comparator is also feasible and never cheaper in weighted
        // imprecision.
        let uniform = BudgetAllocator::allocate_uniform(&demands, budget).unwrap();
        prop_assert!(uniform.predicted_rate <= budget + 1e-9);
        let cost = |r: &kalstream_core::AllocationResult| r.deltas.iter().sum::<f64>();
        prop_assert!(cost(&result) <= cost(&uniform) + 1e-9);
    }

    #[test]
    fn estimator_enum_is_consistent(
        zs in prop::collection::vec(-10.0..10.0f64, 1..40),
    ) {
        let kf = KalmanFilter::new(models::random_walk(0.05, 0.05), Vector::zeros(1), 1.0)
            .unwrap();
        let mut est = Estimator::Fixed(kf);
        for &z in &zs {
            est.step(&Vector::from_slice(&[z])).unwrap();
            prop_assert_eq!(est.measurement_dim(), 1);
            prop_assert!(est.active().state().is_finite());
        }
    }
    #[test]
    fn cloned_source_replays_byte_identical_traffic(
        delta in 0.05..2.0f64,
        zs in prop::collection::vec(-20.0..20.0f64, 20..120),
    ) {
        // The suppression protocol's precision guarantee rests on a cloned
        // filter replaying *bit-identically* — including after the hot path
        // moved onto reusable scratch buffers. Run a source halfway through
        // a trace (dirtying its scratch), clone it (the clone starts with
        // empty scratch), and replay the second half on both: every wire
        // message must encode to exactly the same bytes.
        let mut original = source_with(delta, 0.01, 0.05);
        let half = zs.len() / 2;
        for &z in &zs[..half] {
            let _ = original.decide(&[z]);
        }
        let mut replica = original.clone();
        for &z in &zs[half..] {
            let a = original.decide(&[z]);
            let b = replica.decide(&[z]);
            match (a, b) {
                (None, None) => {}
                (Some(ma), Some(mb)) => {
                    prop_assert_eq!(ma.encode(), mb.encode(), "wire bytes diverged");
                }
                (a, b) => prop_assert!(false, "sync decisions diverged: {a:?} vs {b:?}"),
            }
        }
        prop_assert_eq!(
            original.shadow_predicted_value(),
            replica.shadow_predicted_value()
        );
    }
}
