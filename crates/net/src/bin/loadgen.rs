//! `loadgen`: drives N concurrent connections of the canonical net
//! workload at a `kalstream-server`.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 --conns 64 --streams-per-conn 16 \
//!         --ticks 2000 [--lockstep] [--loss 0.05 --dup 0.01 \
//!         --reorder 0.02 --seed 7]
//! ```
//!
//! Connection `i` owns stream ids `[i*K, (i+1)*K)` where `K` is
//! `--streams-per-conn`; ids, endpoints, and samplers derive
//! deterministically from the id alone, matching the server's fleet.
//! Prints fleet totals and exits non-zero on any connection error.

use std::process::exit;

use kalstream_net::{workload, ClientConfig, ClientReport};
use kalstream_sim::LinkFaults;

fn arg_val(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_val(&args, "--addr").expect("--addr required");
    let conns: usize = arg_val(&args, "--conns")
        .map(|v| v.parse().expect("--conns: integer"))
        .unwrap_or(1);
    let per_conn: u32 = arg_val(&args, "--streams-per-conn")
        .map(|v| v.parse().expect("--streams-per-conn: integer"))
        .unwrap_or(16);
    let ticks: u64 = arg_val(&args, "--ticks")
        .map(|v| v.parse().expect("--ticks: integer"))
        .unwrap_or(500);
    let lockstep = args.iter().any(|a| a == "--lockstep");
    let fault = |flag: &str| -> f64 {
        arg_val(&args, flag)
            .map(|v| v.parse().expect("fault rate: float"))
            .unwrap_or(0.0)
    };
    let faults = LinkFaults {
        loss: fault("--loss"),
        dup: fault("--dup"),
        reorder: fault("--reorder"),
        seed: arg_val(&args, "--seed")
            .map(|v| v.parse().expect("--seed: integer"))
            .unwrap_or(0),
        ..LinkFaults::default()
    };

    let start = std::time::Instant::now();
    // One OS thread per connection, each with its own current-thread
    // runtime: producers are not Send, so each connection's streams are
    // built and driven entirely on its own thread.
    let handles: Vec<_> = (0..conns)
        .map(|conn| {
            let addr = addr.clone();
            let config = ClientConfig {
                ticks,
                overhead_bytes: 8,
                faults,
                lockstep,
                expect_status: false,
            };
            std::thread::spawn(move || {
                let rt = tokio::runtime::Builder::new_current_thread()
                    .enable_all()
                    .build()?;
                let base = conn as u64 * per_conn as u64;
                let ids: Vec<u32> = (0..per_conn).map(|k| base as u32 + k).collect();
                let mut streams = workload::source_streams(&ids);
                rt.block_on(kalstream_net::drive_connection(
                    &addr,
                    &mut streams,
                    base,
                    &config,
                ))
            })
        })
        .collect();
    let reports: Vec<std::io::Result<ClientReport>> = handles
        .into_iter()
        .map(|h| h.join().expect("connection thread panicked"))
        .collect();
    let wall = start.elapsed().as_secs_f64();

    let mut failed = 0usize;
    let mut total = ClientReport::default();
    for r in &reports {
        match r {
            Ok(rep) => {
                total.traffic.merge(&rep.traffic);
                total.faults.merge(&rep.faults);
                total.acks += rep.acks;
                total.bounds += rep.bounds;
                total.socket_bytes_out += rep.socket_bytes_out;
            }
            Err(e) => {
                eprintln!("connection failed: {e}");
                failed += 1;
            }
        }
    }
    println!(
        "{{\"conns\": {}, \"streams\": {}, \"ticks\": {}, \"messages\": {}, \"acks\": {}, \"bounds\": {}, \"socket_bytes_out\": {}, \"wall_secs\": {:.3}, \"failed\": {}}}",
        conns,
        conns as u64 * per_conn as u64,
        ticks,
        total.traffic.messages(),
        total.acks,
        total.bounds,
        total.socket_bytes_out,
        wall,
        failed
    );
    if failed > 0 {
        exit(1);
    }
}
