//! `kalstream-server`: the TCP ingest server over the canonical net
//! workload.
//!
//! ```text
//! kalstream-server --addr 127.0.0.1:7171 --streams 1024 --shards 8 \
//!                  --conns 64 [--batched] [--lockstep]
//! ```
//!
//! Serves stream ids `0..streams` (endpoints derived deterministically —
//! see `kalstream_net::workload`), waits for `--conns` connections to
//! drain, then prints a JSON report and exits non-zero if any feedback
//! was shed or any hello rejected.

use std::process::exit;

use kalstream_net::{workload, NetServer, NetServerConfig};

fn arg_val(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_val(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let streams: u32 = arg_val(&args, "--streams")
        .map(|v| v.parse().expect("--streams: integer"))
        .unwrap_or(64);
    let shards: usize = arg_val(&args, "--shards")
        .map(|v| v.parse().expect("--shards: integer"))
        .unwrap_or(4);
    let conns: usize = arg_val(&args, "--conns")
        .map(|v| v.parse().expect("--conns: integer"))
        .unwrap_or(1);
    let batched = args.iter().any(|a| a == "--batched");
    let lockstep = args.iter().any(|a| a == "--lockstep");

    let server = NetServer::start(
        &addr,
        workload::server_endpoints(streams),
        NetServerConfig {
            shards,
            batched,
            expected_conns: conns,
            lockstep,
            ..NetServerConfig::default()
        },
    )
    .expect("bind failed");
    eprintln!("kalstream-server listening on {}", server.addr());

    let report = server.join().expect("server failed");
    println!("{}", report.snapshot().to_json());
    if report.total_shed() > 0 || report.rejected_hellos > 0 {
        eprintln!(
            "FAIL: shed={} rejected_hellos={}",
            report.total_shed(),
            report.rejected_hellos
        );
        exit(1);
    }
}
