//! [`NetServer`]: the fleet-scale TCP front end of the sharded
//! [`IngestPipeline`].
//!
//! ```text
//!  conn 0 ──reader task──┐                       ┌─▶ shard 0
//!  conn 1 ──reader task──┼──▶ router ─ ingest ───┼─▶ shard 1
//!  conn N ──reader task──┘      │      pipeline  └─▶ …
//!            ▲                  └─ feedback ──▶ per-conn writer tasks
//!            └──────────── bounded send queues ◀─────────┘
//! ```
//!
//! Every task is a tokio task (one thread each under the thread-per-task
//! runtime): an accept loop admitting connections, one reader and one
//! writer task per connection, and the router on the server's own thread.
//!
//! **Tick discipline.** Clients delimit ticks with marker frames
//! ([`crate::codec::TICK_MARKER_STREAM`]). The router advances the global
//! tick only when every admitted, still-active connection has delivered
//! its tick segment — so a fleet over sockets replays through the pipeline
//! in exactly the per-tick batches the simulator's ingest mode produces,
//! which is what keeps the final endpoint state bit-identical to
//! [`kalstream_core::SequentialIngest`] over the same traffic.
//!
//! **Backpressure & shedding.** Feedback (acks, bound directives) rides
//! per-connection bounded queues. The router never blocks on a slow
//! client: a full or closed queue sheds the payload and *counts it* —
//! including during connection drain, where a `let _` would silently eat
//! acks. Per-connection shed counts and queue high-water marks surface in
//! the [`NetReport`] obs snapshot.
//!
//! **Lifecycle.** A connection drains by shutting down its write side;
//! the reader sees EOF, the router stops requiring its markers, and once
//! its queued ticks are applied the writer flushes and closes. When every
//! expected connection has drained, the router flushes the pipeline,
//! routes the final feedback, and tears down. The accept loop is unblocked
//! by a sentinel connection to the server's own port.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use kalstream_core::{
    IngestPipeline, IngestResult, ResizableIngest, ServerEndpoint, StreamDecoder, TickIngest,
};
use kalstream_durable::{DurableConfig, DurableIngest, DurableStats, DurableStore};
use kalstream_elastic::{ElasticConfig, ElasticIngest, ResizeKind};
use kalstream_obs::{Instrument, Registry, Scope, Snapshot};
use tokio::net::{OwnedWriteHalf, TcpListener, TcpStream};
use tokio::runtime::Builder;
use tokio::sync::mpsc;

use crate::codec::{
    decode_hello_ids, decode_hello_prefix, encode_status, feed_ticks, push_frame, push_marker,
    HelloStatus, MARKER_BYTES, MAX_HELLO_STREAMS,
};

/// Per-connection feedback queue depth. Small enough to bound server
/// memory against a stalled client, deep enough that a reading client
/// never sheds (acks are tiny and drained continuously).
pub const FEEDBACK_QUEUE_DEPTH: usize = 256;

/// How the server ingests and feeds back.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Shard workers for the ingest pipeline.
    pub shards: usize,
    /// Step eligible endpoints through the fleet-batch engine.
    pub batched: bool,
    /// Connections to admit before the first tick barrier (and to expect
    /// before finishing). The lockstep tick discipline needs the full
    /// fleet present from tick 0.
    pub expected_conns: usize,
    /// After each global tick, flush the pipeline and route every pending
    /// feedback payload before acknowledging the tick to clients (send a
    /// return marker). Deterministic — the mode the bit-identity tests
    /// and the loss-recovery protocol run in. When `false` the server
    /// never blocks on feedback: it routes whatever the shard workers
    /// have polled so far and clients read acks asynchronously — the
    /// throughput mode `bench_net` measures.
    pub lockstep: bool,
    /// Most stream ids one hello may claim before the connection is
    /// rejected. The peer's claimed count sizes a server-side read buffer,
    /// so this is checked *before* allocation; it is clamped from above by
    /// the global [`MAX_HELLO_STREAMS`] ceiling.
    pub max_hello_streams: usize,
    /// Durability: when set, every tick batch is WAL-appended before it is
    /// applied and the fleet is snapshotted at the configured cadence, so
    /// a restarted server recovers bit-identical filter state. On start
    /// the directory is recovered and replayed *before* any connection is
    /// admitted, and every accepted hello gets a [`HelloStatus`] reply
    /// (clients must set `expect_status`).
    pub durable: Option<DurableConfig>,
    /// Fault injection for the crash-recovery tests: after this many
    /// global ticks have been fully processed, `serve` aborts with
    /// `ConnectionAborted` — no drain, no final snapshot, pipeline dropped
    /// mid-flight. With `durable` set, the next start on the same
    /// directory must recover everything the aborted run applied.
    pub crash_after_ticks: Option<u64>,
    /// Elasticity: when set, the ingest pipeline is wrapped in the
    /// closed-loop [`ElasticIngest`] controller, which grows/shrinks the
    /// shard fleet from observed load. Resizes execute on the router's
    /// thread between global ticks — readers, writers, and their sockets
    /// are untouched, so no connection ever drops across a resize. `shards`
    /// becomes the *initial* count and must lie inside the controller's
    /// `[min_shards, max_shards]` range. Composes with `durable`: each
    /// resize then checkpoints at its barrier first (shape-change
    /// checkpoint reuse).
    pub elastic: Option<ElasticConfig>,
}

impl Default for NetServerConfig {
    /// Single-shard, volatile, one-connection lockstep server — the
    /// configuration the bit-identity tests run; construction sites
    /// override what they vary and inherit new knobs safely.
    fn default() -> Self {
        NetServerConfig {
            shards: 1,
            batched: false,
            expected_conns: 1,
            lockstep: true,
            max_hello_streams: MAX_HELLO_STREAMS,
            durable: None,
            crash_after_ticks: None,
            elastic: None,
        }
    }
}

/// What one connection did, reported at server teardown.
#[derive(Debug, Clone)]
pub struct ConnReport {
    /// Admission index (order of hello arrival).
    pub conn: usize,
    /// Streams the hello claimed.
    pub streams: usize,
    /// Tick segments received.
    pub ticks: u64,
    /// Wire bytes received (frames + markers).
    pub bytes_in: u64,
    /// Feedback payloads queued to this connection.
    pub feedback_sent: u64,
    /// Feedback payloads shed (queue full or connection gone) — counted
    /// on every path, including drain.
    pub shed: u64,
    /// High-water mark of the feedback queue depth.
    pub queue_high_water: u64,
}

impl Instrument for ConnReport {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("streams", self.streams as u64);
        scope.counter("ticks", self.ticks);
        scope.counter("bytes_in", self.bytes_in);
        scope.counter("feedback_sent", self.feedback_sent);
        scope.counter("shed", self.shed);
        scope.gauge("queue_high_water", self.queue_high_water as f64);
    }
}

/// Elastic-controller outcome of a served fleet, reported when the server
/// ran with an [`ElasticConfig`].
#[derive(Debug, Clone)]
pub struct ElasticNetStats {
    /// Resizes executed (grows + shrinks + rebalances).
    pub resizes: u64,
    /// Resizes that added shards.
    pub grows: u64,
    /// Resizes that removed shards.
    pub shrinks: u64,
    /// Same-count placement reshuffles.
    pub rebalances: u64,
    /// Shard count at teardown.
    pub final_shards: usize,
    /// Worst ingest stall paid at any resize barrier, in milliseconds
    /// (wall-clock — artifact material, not table material).
    pub max_stall_ms: f64,
}

impl Instrument for ElasticNetStats {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("resizes", self.resizes);
        scope.counter("grows", self.grows);
        scope.counter("shrinks", self.shrinks);
        scope.counter("rebalances", self.rebalances);
        scope.gauge("final_shards", self.final_shards as f64);
        scope.gauge("max_stall_ms", self.max_stall_ms);
    }
}

/// Aggregate outcome of a served fleet.
#[derive(Debug)]
pub struct NetReport {
    /// The ingest pipeline's own result (per-shard reports + endpoints,
    /// bit-comparable against a sequential reference).
    pub ingest: IngestResult,
    /// Per-connection accounting, admission order.
    pub conns: Vec<ConnReport>,
    /// Global ticks the router advanced through.
    pub ticks: u64,
    /// Hellos rejected (bad magic, reserved ids, oversized claims).
    pub rejected_hellos: u64,
    /// Reader/router messages that could not be delivered because the
    /// other side was already gone (either direction). Formerly silent
    /// `let _` drops; now every one is accounted.
    pub dropped_router_msgs: u64,
    /// Socket shutdowns that returned an error in the per-connection
    /// writer tasks (formerly a silent `let _`).
    pub shutdown_errors: u64,
    /// Ticks re-applied from the WAL during startup recovery.
    pub replayed_ticks: u64,
    /// Feedback payloads produced by WAL replay and discarded (their
    /// clients received them before the crash).
    pub replay_feedback_discarded: u64,
    /// Durability counters, when the server ran with a [`DurableConfig`].
    pub durable: Option<DurableStats>,
    /// Elastic-controller counters, when the server ran with an
    /// [`ElasticConfig`].
    pub elastic: Option<ElasticNetStats>,
}

impl NetReport {
    /// Total feedback payloads shed across connections. The CI smoke lane
    /// gates on this being zero.
    pub fn total_shed(&self) -> u64 {
        self.conns.iter().map(|c| c.shed).sum()
    }

    /// Obs snapshot: `net.*` aggregates plus `net.conn.<i>.*` per
    /// connection (shed counters and queue-depth gauges included).
    pub fn snapshot(&self) -> Snapshot {
        let mut reg = Registry::new();
        let mut net = reg.scope("net");
        net.counter("conns", self.conns.len() as u64);
        net.counter("ticks", self.ticks);
        net.counter("rejected_hellos", self.rejected_hellos);
        net.counter("shed", self.total_shed());
        net.counter("dropped_router_msgs", self.dropped_router_msgs);
        net.counter("shutdown_errors", self.shutdown_errors);
        net.counter("replayed_ticks", self.replayed_ticks);
        net.counter("replay_feedback_discarded", self.replay_feedback_discarded);
        if let Some(durable) = &self.durable {
            net.observe("durable", durable);
        }
        if let Some(elastic) = &self.elastic {
            net.observe("elastic", elastic);
        }
        net.counter(
            "feedback_sent",
            self.conns.iter().map(|c| c.feedback_sent).sum::<u64>(),
        );
        net.observe("ingest", &self.ingest);
        let mut conns = net.scope("conn");
        for c in &self.conns {
            conns.observe(&c.conn.to_string(), c);
        }
        reg.snapshot()
    }
}

/// Reader → router messages.
enum RouterMsg {
    Hello {
        streams: Vec<u32>,
        writer: mpsc::Sender<Bytes>,
        /// Resolved by the router with the admission index.
        conn_slot: crossbeam::channel::Sender<usize>,
    },
    HelloRejected,
    Tick {
        conn: usize,
        /// Raw frame bytes (headers + bodies, marker stripped).
        frames: Vec<u8>,
        bytes_in: u64,
    },
    Eof {
        conn: usize,
    },
}

/// Router-side connection state.
struct ConnState {
    writer: Option<mpsc::Sender<Bytes>>,
    streams: usize,
    pending: std::collections::VecDeque<Vec<u8>>,
    eof: bool,
    ticks: u64,
    bytes_in: u64,
    feedback_sent: u64,
    shed: u64,
    queue_high_water: u64,
}

/// A running TCP ingest server. [`NetServer::start`] binds and serves on a
/// background thread; [`NetServer::join`] blocks until the fleet drains
/// and returns the [`NetReport`].
pub struct NetServer {
    addr: SocketAddr,
    handle: std::thread::JoinHandle<io::Result<NetReport>>,
}

impl NetServer {
    /// Binds `127.0.0.1:0` (or `addr`) and starts serving `endpoints`.
    pub fn start(
        addr: &str,
        endpoints: Vec<(u32, ServerEndpoint)>,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let rt = Builder::new_multi_thread().enable_all().build()?;
        let listener = rt.block_on(TcpListener::bind(addr))?;
        let local = listener.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("net-server".into())
            .spawn(move || rt.block_on(serve(listener, endpoints, config)))
            .expect("failed to spawn server thread");
        Ok(NetServer {
            addr: local,
            handle,
        })
    }

    /// The bound address clients dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the fleet to drain and returns the report.
    ///
    /// # Panics
    /// Panics when the server thread panicked.
    pub fn join(self) -> io::Result<NetReport> {
        self.handle.join().expect("net-server thread panicked")
    }
}

/// The router's ingest seam: a plain pipeline, optionally wrapped in the
/// durability discipline (WAL-append before apply, cadence snapshots),
/// optionally with the elastic controller loop closed around either.
enum Ingester {
    Plain(IngestPipeline),
    Durable(DurableIngest<IngestPipeline>),
    Elastic(ElasticIngest<IngestPipeline>),
    ElasticDurable(ElasticIngest<DurableIngest<IngestPipeline>>),
}

/// Snapshots the controller-loop counters before the driver is unwrapped.
fn elastic_stats<I: ResizableIngest>(elastic: &ElasticIngest<I>) -> ElasticNetStats {
    let count =
        |kind: ResizeKind| elastic.events().iter().filter(|e| e.kind == kind).count() as u64;
    ElasticNetStats {
        resizes: elastic.events().len() as u64,
        grows: count(ResizeKind::Grow),
        shrinks: count(ResizeKind::Shrink),
        rebalances: count(ResizeKind::Rebalance),
        final_shards: elastic.inner().assignment().shards,
        max_stall_ms: elastic.max_stall_ms(),
    }
}

impl Ingester {
    /// The elastic variants go through the infallible [`TickIngest`] path:
    /// a store I/O error at a WAL append or a resize-barrier checkpoint
    /// panics the router thread (environment failure), matching the
    /// pipeline's own worker-death behavior.
    fn ingest_tick(&mut self, wire: &[u8]) -> io::Result<()> {
        match self {
            Ingester::Plain(pipeline) => {
                pipeline.ingest_tick(wire);
                Ok(())
            }
            Ingester::Durable(durable) => durable.try_ingest_tick(wire),
            Ingester::Elastic(elastic) => {
                elastic.ingest_tick(wire);
                Ok(())
            }
            Ingester::ElasticDurable(elastic) => {
                elastic.ingest_tick(wire);
                Ok(())
            }
        }
    }

    fn flush(&mut self) {
        match self {
            Ingester::Plain(pipeline) => pipeline.flush(),
            Ingester::Durable(durable) => durable.inner_mut().flush(),
            Ingester::Elastic(elastic) => elastic.inner_mut().flush(),
            Ingester::ElasticDurable(elastic) => elastic.inner_mut().inner_mut().flush(),
        }
    }

    /// Clean teardown: a durable server checkpoints at the final barrier
    /// (so the next start replays nothing), an elastic one reports its
    /// controller counters, then every variant finishes the pipeline.
    fn finish(self) -> io::Result<(IngestResult, Option<DurableStats>, Option<ElasticNetStats>)> {
        match self {
            Ingester::Plain(pipeline) => Ok((pipeline.finish(), None, None)),
            Ingester::Durable(mut durable) => {
                durable.checkpoint()?;
                let (pipeline, store) = durable.into_parts();
                Ok((pipeline.finish(), Some(store.stats().clone()), None))
            }
            Ingester::Elastic(elastic) => {
                let stats = elastic_stats(&elastic);
                Ok((elastic.into_inner().finish(), None, Some(stats)))
            }
            Ingester::ElasticDurable(elastic) => {
                let stats = elastic_stats(&elastic);
                let mut durable = elastic.into_inner();
                durable.checkpoint()?;
                let (pipeline, store) = durable.into_parts();
                Ok((pipeline.finish(), Some(store.stats().clone()), Some(stats)))
            }
        }
    }
}

async fn serve(
    listener: TcpListener,
    endpoints: Vec<(u32, ServerEndpoint)>,
    config: NetServerConfig,
) -> io::Result<NetReport> {
    let addr = listener.local_addr()?;
    let (router_tx, mut router_rx) = mpsc::channel::<RouterMsg>(config.expected_conns.max(16));
    let closing = Arc::new(AtomicBool::new(false));
    let dropped_router_msgs = Arc::new(AtomicU64::new(0));
    let shutdown_errors = Arc::new(AtomicU64::new(0));

    // ---- recovery (before any connection is admitted) -------------------
    // A durable server rebuilds the fleet from its newest valid snapshot
    // and re-applies the intact WAL suffix through the *same* pipeline
    // configuration the crashed run used — bit-identical state, then a
    // compaction snapshot so this recovery is never paid twice.
    let mut replayed_ticks = 0u64;
    let mut replay_feedback_discarded = 0u64;
    let mut status = HelloStatus::Ready;
    let (mut ingester, fb_rx) = match &config.durable {
        Some(durable_config) => {
            let mut store = DurableStore::open(&durable_config.dir)?;
            let recovery = store.recover()?;
            let (initial, resume_at) = match &recovery {
                Some(rec) => {
                    let rebuilt = rec.endpoints().map_err(|err| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("recovered snapshot rejected by filter: {err}"),
                        )
                    })?;
                    (rebuilt, rec.next_tick())
                }
                None => (endpoints, 0),
            };
            let (mut pipeline, fb_rx) =
                IngestPipeline::start_with_feedback(config.shards, initial, config.batched);
            if let Some(rec) = &recovery {
                rec.replay_into(&mut pipeline);
                pipeline.flush();
                // Feedback from replayed ticks already reached its clients
                // before the crash: discard, but never silently.
                while fb_rx.try_recv().is_ok() {
                    replay_feedback_discarded += 1;
                }
                replayed_ticks = rec.wal.len() as u64;
                if resume_at > 0 {
                    status = HelloStatus::Recovering {
                        next_tick: resume_at,
                    };
                }
            }
            let durable =
                DurableIngest::resume(pipeline, store, durable_config.snapshot_every, resume_at)?;
            let ingester = match &config.elastic {
                Some(elastic_config) => {
                    Ingester::ElasticDurable(ElasticIngest::new(durable, elastic_config.clone()))
                }
                None => Ingester::Durable(durable),
            };
            (ingester, fb_rx)
        }
        None => {
            let (pipeline, fb_rx) =
                IngestPipeline::start_with_feedback(config.shards, endpoints, config.batched);
            let ingester = match &config.elastic {
                Some(elastic_config) => {
                    Ingester::Elastic(ElasticIngest::new(pipeline, elastic_config.clone()))
                }
                None => Ingester::Plain(pipeline),
            };
            (ingester, fb_rx)
        }
    };
    // Status reply appended to each admitted connection's (empty) writer
    // queue — only when durability is on; volatile clients don't expect it.
    let status_frame: Option<Bytes> = config
        .durable
        .is_some()
        .then(|| Bytes::copy_from_slice(&encode_status(status)));

    // Accept loop: admit connections until the router signals teardown
    // (checked after each accept; a sentinel dial unblocks the last one).
    let accept_closing = closing.clone();
    let accept_tx = router_tx.clone();
    let accept_dropped = dropped_router_msgs.clone();
    let accept_shutdown_errors = shutdown_errors.clone();
    let max_hello_streams = config.max_hello_streams;
    let accept_task = tokio::spawn(async move {
        loop {
            let (stream, _) = match listener.accept().await {
                Ok(pair) => pair,
                Err(_) => break,
            };
            if accept_closing.load(Ordering::SeqCst) {
                break; // the sentinel itself: drop it and stop accepting
            }
            let tx = accept_tx.clone();
            let dropped = accept_dropped.clone();
            let shutdown_errs = accept_shutdown_errors.clone();
            tokio::spawn(async move {
                reader_task(stream, tx, max_hello_streams, dropped, shutdown_errs).await
            });
        }
    });
    drop(router_tx);

    // ---- router ---------------------------------------------------------
    let mut conns: Vec<ConnState> = Vec::new();
    let mut ticks = 0u64;
    let mut rejected_hellos = 0u64;
    let mut admitted = 0usize;
    let mut tick_wire: Vec<u8> = Vec::new();

    // Drains every feedback payload currently in the channel onto its
    // owning connection's queue. `route` maps stream → conn.
    let route_feedback =
        |conns: &mut [ConnState],
         route: &HashMap<u32, usize>,
         fb_rx: &crossbeam::channel::Receiver<(u32, Bytes)>| {
            while let Ok((stream_id, payload)) = fb_rx.try_recv() {
                let Some(&conn) = route.get(&stream_id) else {
                    continue; // stream not owned by any connection (local fleet)
                };
                let state = &mut conns[conn];
                let mut frame = Vec::with_capacity(payload.len() + MARKER_BYTES);
                push_frame(&mut frame, stream_id, &payload);
                match &state.writer {
                    Some(writer) => match writer.try_send(Bytes::from(frame)) {
                        Ok(()) => {
                            state.feedback_sent += 1;
                            state.queue_high_water =
                                state.queue_high_water.max(writer.queued() as u64);
                        }
                        Err(_) => state.shed += 1, // full or closed: count, don't block
                    },
                    // Writer already torn down (connection drained): the ack
                    // is lost — count it instead of `let _`-dropping it.
                    None => state.shed += 1,
                }
            }
        };

    let mut route: HashMap<u32, usize> = HashMap::new();
    loop {
        // Barrier check: every admitted conn is drained and idle → done.
        let fleet_present = admitted >= config.expected_conns;
        let all_drained = fleet_present && conns.iter().all(|c| c.eof && c.pending.is_empty());
        if all_drained {
            break;
        }

        // Tick-ready: the full fleet is admitted and every live conn has
        // a pending segment (drained conns contribute whatever is queued).
        let tick_ready = fleet_present
            && !conns.is_empty()
            && conns.iter().all(|c| c.eof || !c.pending.is_empty())
            && conns.iter().any(|c| !c.pending.is_empty());
        if tick_ready {
            tick_wire.clear();
            for state in conns.iter_mut() {
                if let Some(frames) = state.pending.pop_front() {
                    tick_wire.extend_from_slice(&frames);
                    state.ticks += 1;
                }
            }
            ingester.ingest_tick(&tick_wire)?;
            if config.lockstep {
                // Applied-before-acknowledged: flush, route *all* feedback
                // for this tick, then send every live conn its marker.
                ingester.flush();
                route_feedback(&mut conns, &route, &fb_rx);
                for state in conns.iter_mut() {
                    let Some(writer) = &state.writer else {
                        continue;
                    };
                    if state.eof {
                        continue;
                    }
                    let mut marker = Vec::with_capacity(MARKER_BYTES);
                    push_marker(&mut marker);
                    if writer.try_send(Bytes::from(marker)).is_err() {
                        state.shed += 1;
                    }
                }
            } else {
                route_feedback(&mut conns, &route, &fb_rx);
            }
            ticks += 1;
            if config.crash_after_ticks == Some(ticks) {
                // Injected crash: abort with no drain, no checkpoint —
                // `ingester` drops mid-flight exactly as a killed process
                // would lose it. The WAL already holds this tick (appended
                // before apply), which is what recovery tests rely on.
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    format!("injected crash after {ticks} ticks"),
                ));
            }
            continue;
        }

        // Not tick-ready: wait for reader traffic.
        let Some(msg) = router_rx.recv().await else {
            break; // accept loop and all readers gone
        };
        match msg {
            RouterMsg::Hello {
                streams,
                writer,
                conn_slot,
            } => {
                let conn = admitted;
                admitted += 1;
                for &id in &streams {
                    route.insert(id, conn);
                }
                if let Some(frame) = &status_frame {
                    // The queue is empty at admission, so this only fails
                    // if the reader died between hello and here.
                    if writer.try_send(frame.clone()).is_err() {
                        dropped_router_msgs.fetch_add(1, Ordering::Relaxed);
                    }
                }
                conns.push(ConnState {
                    writer: Some(writer),
                    streams: streams.len(),
                    pending: Default::default(),
                    eof: false,
                    ticks: 0,
                    bytes_in: 0,
                    feedback_sent: 0,
                    shed: 0,
                    queue_high_water: 0,
                });
                if conn_slot.send(conn).is_err() {
                    // Reader died before learning its slot: the connection
                    // is gone, but the admission stands (eof arrives never)
                    // — count the dropped reply rather than eat it.
                    dropped_router_msgs.fetch_add(1, Ordering::Relaxed);
                    conns[conn].eof = true;
                    conns[conn].writer = None;
                }
            }
            RouterMsg::HelloRejected => rejected_hellos += 1,
            RouterMsg::Tick {
                conn,
                frames,
                bytes_in,
            } => {
                let state = &mut conns[conn];
                state.bytes_in += bytes_in;
                state.pending.push_back(frames);
            }
            RouterMsg::Eof { conn } => {
                conns[conn].eof = true;
            }
        }
    }

    // ---- drain ----------------------------------------------------------
    ingester.flush();
    route_feedback(&mut conns, &route, &fb_rx);
    // Dropping each writer sender closes its queue; the writer task
    // drains remaining payloads, flushes, and shuts the socket down.
    for state in conns.iter_mut() {
        state.writer = None;
    }
    // Unblock the accept loop with a sentinel dial, then join it.
    closing.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr).await;
    let _ = accept_task.await;
    // Late feedback (none expected after the final flush, but a shard
    // worker could still be mid-poll): count as shed, never drop silently.
    route_feedback(&mut conns, &route, &fb_rx);

    let (ingest, durable, elastic) = ingester.finish()?;
    let conn_reports = conns
        .iter()
        .enumerate()
        .map(|(i, c)| ConnReport {
            conn: i,
            streams: c.streams,
            ticks: c.ticks,
            bytes_in: c.bytes_in,
            feedback_sent: c.feedback_sent,
            shed: c.shed,
            queue_high_water: c.queue_high_water,
        })
        .collect();
    Ok(NetReport {
        ingest,
        conns: conn_reports,
        ticks,
        rejected_hellos,
        dropped_router_msgs: dropped_router_msgs.load(Ordering::Relaxed),
        shutdown_errors: shutdown_errors.load(Ordering::Relaxed),
        replayed_ticks,
        replay_feedback_discarded,
        durable,
        elastic,
    })
}

/// Per-connection reader: hello, then marker-delimited tick segments.
/// Spawns the connection's writer task once the hello is accepted.
async fn reader_task(
    stream: TcpStream,
    router: mpsc::Sender<RouterMsg>,
    max_hello_streams: usize,
    dropped_router_msgs: Arc<AtomicU64>,
    shutdown_errors: Arc<AtomicU64>,
) {
    let _ = stream.set_nodelay(true);
    let (mut read, write) = stream.into_split();

    // A send to a closed router is a real loss of accounting, not noise.
    let report_or_count = |msg: RouterMsg, dropped: Arc<AtomicU64>| {
        let router = router.clone();
        async move {
            if router.send(msg).await.is_err() {
                dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    };

    // Hello.
    let mut prefix = [0u8; 8];
    if read.read_exact(&mut prefix).await.is_err() {
        return; // sentinel or portscan: vanish quietly
    }
    let streams = match decode_hello_prefix(&prefix, max_hello_streams) {
        Ok(count) => {
            let mut body = vec![0u8; count * 4];
            if read.read_exact(&mut body).await.is_err() {
                return;
            }
            match decode_hello_ids(&body) {
                Ok(ids) => ids,
                Err(_) => {
                    report_or_count(RouterMsg::HelloRejected, dropped_router_msgs.clone()).await;
                    return;
                }
            }
        }
        Err(_) => {
            report_or_count(RouterMsg::HelloRejected, dropped_router_msgs.clone()).await;
            return;
        }
    };

    let (writer_tx, writer_rx) = mpsc::channel::<Bytes>(FEEDBACK_QUEUE_DEPTH);
    let (slot_tx, slot_rx) = crossbeam::channel::bounded(1);
    if router
        .send(RouterMsg::Hello {
            streams,
            writer: writer_tx,
            conn_slot: slot_tx,
        })
        .await
        .is_err()
    {
        dropped_router_msgs.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let Ok(conn) = slot_rx.recv() else { return };
    let writer_shutdown_errors = shutdown_errors.clone();
    tokio::spawn(async move { writer_task(write, writer_rx, writer_shutdown_errors).await });

    // Data: accumulate frames, cut at markers.
    let mut decoder = StreamDecoder::new();
    let mut tick_buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = match read.read(&mut chunk).await {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut ticks: Vec<Vec<u8>> = Vec::new();
        match feed_ticks(&mut decoder, &chunk[..n], &mut tick_buf, |t| ticks.push(t)) {
            Ok(_) => {}
            Err(_) => break, // oversized frame: poison-close the connection
        }
        for frames in ticks {
            let bytes_in = frames.len() as u64 + MARKER_BYTES as u64;
            if router
                .send(RouterMsg::Tick {
                    conn,
                    frames,
                    bytes_in,
                })
                .await
                .is_err()
            {
                return;
            }
        }
    }
    // An undeliverable EOF means the router tore down first; its barrier
    // no longer waits on this conn, but the loss is still counted.
    report_or_count(RouterMsg::Eof { conn }, dropped_router_msgs.clone()).await;
}

/// Per-connection writer: drains the bounded feedback queue onto the
/// socket; on queue close, flushes and shuts the write side down.
async fn writer_task(
    mut write: OwnedWriteHalf,
    mut rx: mpsc::Receiver<Bytes>,
    shutdown_errors: Arc<AtomicU64>,
) {
    while let Some(frame) = rx.recv().await {
        if write.write_all(&frame).await.is_err() {
            // Peer gone: keep draining so the router's try_sends see a
            // live (then closed) queue rather than a wedged one.
            continue;
        }
    }
    if write.shutdown().await.is_err() {
        shutdown_errors.fetch_add(1, Ordering::Relaxed);
    }
}
