//! Socket-level protocol: hello handshake and tick markers on top of the
//! wire-v3 frame stream.
//!
//! A connection's byte stream is:
//!
//! ```text
//! "KSN1" | u32 stream_count | stream_count × u32 stream_id   (hello)
//! ( frame* tick_marker )*                                    (data)
//! ```
//!
//! where every `frame` is exactly [`kalstream_core`]'s batch framing —
//! `stream_id:u32 | len:u32 | body` little-endian, the same bytes
//! `FrameBatch` assembles and `StreamDecoder` re-frames — and
//! `tick_marker` is a zero-length frame on the reserved stream id
//! [`TICK_MARKER_STREAM`]. The marker is what carries the protocol's tick
//! semantics over a stream socket: everything between two markers belongs
//! to one tick, so the server can preserve the simulator's
//! "deliver-then-advance" order exactly and stay bit-identical to it.

use bytes::{BufMut, Bytes};
use kalstream_core::{OversizedFrame, StreamDecoder, FRAME_HEADER_BYTES};

/// First bytes of every connection, little protection against port scans
/// and crossed wires ("KalStream Net v1").
pub const HELLO_MAGIC: [u8; 4] = *b"KSN1";

/// Reserved stream id whose zero-length frames delimit ticks. Real streams
/// must never use it; [`kalstream_core`]'s ingest router would shard it
/// like any other id, so the net layer strips markers before batches reach
/// the pipeline.
pub const TICK_MARKER_STREAM: u32 = u32::MAX;

/// Hard cap on the stream ids one hello may claim (64 Ki) — a handshake
/// from a confused or hostile peer must not pin server memory.
pub const MAX_HELLO_STREAMS: usize = 1 << 16;

/// Encodes the hello header for a connection owning `stream_ids`.
pub fn encode_hello(stream_ids: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 4 * stream_ids.len());
    buf.put_slice(&HELLO_MAGIC);
    buf.put_u32_le(stream_ids.len() as u32);
    for &id in stream_ids {
        buf.put_u32_le(id);
    }
    buf
}

/// Hello decode failures (each closes the connection).
#[derive(Debug, PartialEq, Eq)]
pub enum HelloError {
    /// First four bytes were not [`HELLO_MAGIC`].
    BadMagic,
    /// The claimed stream count exceeds [`MAX_HELLO_STREAMS`].
    TooManyStreams(usize),
    /// A claimed id collides with [`TICK_MARKER_STREAM`].
    ReservedStream,
}

impl std::fmt::Display for HelloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HelloError::BadMagic => write!(f, "hello does not start with KSN1"),
            HelloError::TooManyStreams(n) => {
                write!(f, "hello claims {n} streams (cap {MAX_HELLO_STREAMS})")
            }
            HelloError::ReservedStream => write!(f, "hello claims the tick-marker stream id"),
        }
    }
}

impl std::error::Error for HelloError {}

/// Validates the fixed 8-byte hello prefix and returns the stream count.
pub fn decode_hello_prefix(prefix: &[u8; 8]) -> Result<usize, HelloError> {
    if prefix[..4] != HELLO_MAGIC {
        return Err(HelloError::BadMagic);
    }
    let count = u32::from_le_bytes([prefix[4], prefix[5], prefix[6], prefix[7]]) as usize;
    if count > MAX_HELLO_STREAMS {
        return Err(HelloError::TooManyStreams(count));
    }
    Ok(count)
}

/// Decodes the id list that follows the prefix (`4 * count` bytes).
pub fn decode_hello_ids(body: &[u8]) -> Result<Vec<u32>, HelloError> {
    let ids: Vec<u32> = body
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    if ids.contains(&TICK_MARKER_STREAM) {
        return Err(HelloError::ReservedStream);
    }
    Ok(ids)
}

/// Appends one `stream_id | len | body` frame to `buf`.
pub fn push_frame(buf: &mut Vec<u8>, stream_id: u32, body: &[u8]) {
    buf.put_u32_le(stream_id);
    buf.put_u32_le(body.len() as u32);
    buf.put_slice(body);
}

/// Appends the tick-marker frame to `buf`.
pub fn push_marker(buf: &mut Vec<u8>) {
    buf.put_u32_le(TICK_MARKER_STREAM);
    buf.put_u32_le(0);
}

/// Wire size of the marker frame.
pub const MARKER_BYTES: usize = FRAME_HEADER_BYTES;

/// Re-frames one socket read: feeds `chunk` into `decoder` and splits the
/// result at tick boundaries. Frames accumulate into `tick_buf` as raw
/// wire bytes (header + body, ready for `ingest_tick`); each completed
/// tick is taken out of `tick_buf` and handed to `on_tick`.
///
/// Returns the number of markers seen, or the decoder's poison error
/// (oversized frame — the caller closes the connection).
pub fn feed_ticks(
    decoder: &mut StreamDecoder,
    chunk: &[u8],
    tick_buf: &mut Vec<u8>,
    mut on_tick: impl FnMut(Vec<u8>),
) -> Result<u64, OversizedFrame> {
    let mut markers = 0u64;
    decoder.feed(chunk, |stream_id, body| {
        if stream_id == TICK_MARKER_STREAM {
            markers += 1;
            on_tick(std::mem::take(tick_buf));
        } else {
            push_frame(tick_buf, stream_id, body);
        }
    })?;
    Ok(markers)
}

/// Splits `payloads` framed as `(stream_id, payload)` pairs into wire bytes
/// terminated by a marker — one tick's worth of traffic for a connection.
pub fn encode_tick(payloads: &[(u32, Bytes)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        payloads
            .iter()
            .map(|(_, p)| FRAME_HEADER_BYTES + p.len())
            .sum::<usize>()
            + MARKER_BYTES,
    );
    for (id, payload) in payloads {
        push_frame(&mut buf, *id, payload);
    }
    push_marker(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let ids = vec![0u32, 7, 42, 1_000_000];
        let wire = encode_hello(&ids);
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&wire[..8]);
        let count = decode_hello_prefix(&prefix).unwrap();
        assert_eq!(count, ids.len());
        assert_eq!(decode_hello_ids(&wire[8..]).unwrap(), ids);
    }

    #[test]
    fn hello_rejects_bad_magic_and_reserved_ids() {
        let mut wire = encode_hello(&[1]);
        wire[0] = b'X';
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&wire[..8]);
        assert_eq!(decode_hello_prefix(&prefix), Err(HelloError::BadMagic));

        let wire = encode_hello(&[TICK_MARKER_STREAM]);
        assert_eq!(
            decode_hello_ids(&wire[8..]),
            Err(HelloError::ReservedStream)
        );

        let mut prefix = [0u8; 8];
        prefix[..4].copy_from_slice(&HELLO_MAGIC);
        prefix[4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_hello_prefix(&prefix),
            Err(HelloError::TooManyStreams(_))
        ));
    }

    #[test]
    fn feed_ticks_splits_at_markers_and_preserves_frame_bytes() {
        let tick1 = encode_tick(&[
            (3, Bytes::from_static(b"abc")),
            (9, Bytes::from_static(b"d")),
        ]);
        let tick2 = encode_tick(&[]);
        let tick3 = encode_tick(&[(1, Bytes::from_static(b"zz"))]);
        let wire: Vec<u8> = [tick1.clone(), tick2.clone(), tick3.clone()].concat();

        // Feed in awkward split positions: tick reassembly must not depend
        // on read boundaries.
        for split in [1usize, 7, 11, wire.len() / 2] {
            let mut dec = StreamDecoder::new();
            let mut tick_buf = Vec::new();
            let mut ticks: Vec<Vec<u8>> = Vec::new();
            let mut markers = 0;
            for chunk in wire.chunks(split) {
                markers += feed_ticks(&mut dec, chunk, &mut tick_buf, |t| ticks.push(t)).unwrap();
            }
            assert_eq!(markers, 3, "split {split}");
            assert_eq!(ticks.len(), 3);
            // Re-framed bytes are the original batch bytes minus the marker.
            assert_eq!(ticks[0], tick1[..tick1.len() - MARKER_BYTES]);
            assert!(ticks[1].is_empty());
            assert_eq!(ticks[2], tick3[..tick3.len() - MARKER_BYTES]);
        }
    }
}
