//! Socket-level protocol: hello handshake and tick markers on top of the
//! wire-v3 frame stream.
//!
//! A connection's byte stream is:
//!
//! ```text
//! "KSN1" | u32 stream_count | stream_count × u32 stream_id   (hello)
//! ( frame* tick_marker )*                                    (data)
//! ```
//!
//! where every `frame` is exactly [`kalstream_core`]'s batch framing —
//! `stream_id:u32 | len:u32 | body` little-endian, the same bytes
//! `FrameBatch` assembles and `StreamDecoder` re-frames — and
//! `tick_marker` is a zero-length frame on the reserved stream id
//! [`TICK_MARKER_STREAM`]. The marker is what carries the protocol's tick
//! semantics over a stream socket: everything between two markers belongs
//! to one tick, so the server can preserve the simulator's
//! "deliver-then-advance" order exactly and stay bit-identical to it.

use bytes::{BufMut, Bytes};
use kalstream_core::{OversizedFrame, StreamDecoder, FRAME_HEADER_BYTES};

/// First bytes of every connection, little protection against port scans
/// and crossed wires ("KalStream Net v1").
pub const HELLO_MAGIC: [u8; 4] = *b"KSN1";

/// Reserved stream id whose zero-length frames delimit ticks. Real streams
/// must never use it; [`kalstream_core`]'s ingest router would shard it
/// like any other id, so the net layer strips markers before batches reach
/// the pipeline.
pub const TICK_MARKER_STREAM: u32 = u32::MAX;

/// Hard ceiling on the stream ids one hello may claim (64 Ki) — a
/// handshake from a confused or hostile peer must not pin server memory.
/// Servers pass their own (usually much smaller) configured cap to
/// [`decode_hello_prefix`]; this constant only bounds it from above, so a
/// misconfigured cap can never re-open the allocation hole.
pub const MAX_HELLO_STREAMS: usize = 1 << 16;

/// Encodes the hello header for a connection owning `stream_ids`.
pub fn encode_hello(stream_ids: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 4 * stream_ids.len());
    buf.put_slice(&HELLO_MAGIC);
    buf.put_u32_le(stream_ids.len() as u32);
    for &id in stream_ids {
        buf.put_u32_le(id);
    }
    buf
}

/// Hello decode failures (each closes the connection).
#[derive(Debug, PartialEq, Eq)]
pub enum HelloError {
    /// First four bytes were not [`HELLO_MAGIC`].
    BadMagic,
    /// The claimed stream count exceeds the server's configured cap.
    TooManyStreams {
        /// Streams the peer's hello claimed.
        claimed: usize,
        /// The cap it was checked against (configured, already clamped to
        /// [`MAX_HELLO_STREAMS`]).
        cap: usize,
    },
    /// A claimed id collides with [`TICK_MARKER_STREAM`].
    ReservedStream,
}

impl std::fmt::Display for HelloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HelloError::BadMagic => write!(f, "hello does not start with KSN1"),
            HelloError::TooManyStreams { claimed, cap } => {
                write!(f, "hello claims {claimed} streams (cap {cap})")
            }
            HelloError::ReservedStream => write!(f, "hello claims the tick-marker stream id"),
        }
    }
}

impl std::error::Error for HelloError {}

/// Validates the fixed 8-byte hello prefix and returns the stream count.
///
/// The count is the *peer's* claim and sizes the server's id-list read
/// buffer, so it is checked against the server's configured `max_streams`
/// before a single byte gets allocated — never trusted outright, and never
/// checked only against the global [`MAX_HELLO_STREAMS`] ceiling (64 Ki
/// ids from each of a few thousand connections is still an allocation
/// attack on a server expecting 8 streams per conn).
pub fn decode_hello_prefix(prefix: &[u8; 8], max_streams: usize) -> Result<usize, HelloError> {
    if prefix[..4] != HELLO_MAGIC {
        return Err(HelloError::BadMagic);
    }
    let cap = max_streams.min(MAX_HELLO_STREAMS);
    let count = u32::from_le_bytes([prefix[4], prefix[5], prefix[6], prefix[7]]) as usize;
    if count > cap {
        return Err(HelloError::TooManyStreams {
            claimed: count,
            cap,
        });
    }
    Ok(count)
}

/// Decodes the id list that follows the prefix (`4 * count` bytes).
pub fn decode_hello_ids(body: &[u8]) -> Result<Vec<u32>, HelloError> {
    let ids: Vec<u32> = body
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    if ids.contains(&TICK_MARKER_STREAM) {
        return Err(HelloError::ReservedStream);
    }
    Ok(ids)
}

/// First bytes of the server's reply on a durable connection
/// ("KalStream Ack v1"): a fixed-size status telling the client whether
/// the server is fresh or resumed from a recovered barrier.
pub const STATUS_MAGIC: [u8; 4] = *b"KSA1";

/// Wire size of the hello-status reply: magic, kind byte, next-tick u64.
pub const STATUS_BYTES: usize = 13;

/// What a durable server tells each client right after accepting its
/// hello, *before* any feedback frames. Sent only when durability is
/// configured — clients of volatile servers would misparse the 13 bytes
/// as a frame header, so reading it is opt-in on both ends
/// (`NetServerConfig::durable` ⇄ `ClientConfig::expect_status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelloStatus {
    /// Fresh state: no snapshot existed, the fleet starts from tick 0.
    Ready,
    /// State recovered from snapshot + WAL replay; the server's filters
    /// already reflect every tick before `next_tick`, so a resuming
    /// client must not re-send them.
    Recovering {
        /// First tick the server has not yet applied.
        next_tick: u64,
    },
}

/// Encodes the hello-status reply.
pub fn encode_status(status: HelloStatus) -> [u8; STATUS_BYTES] {
    let mut buf = [0u8; STATUS_BYTES];
    buf[..4].copy_from_slice(&STATUS_MAGIC);
    let (kind, next_tick) = match status {
        HelloStatus::Ready => (0u8, 0u64),
        HelloStatus::Recovering { next_tick } => (1, next_tick),
    };
    buf[4] = kind;
    buf[5..].copy_from_slice(&next_tick.to_le_bytes());
    buf
}

/// Hello-status decode failures (each closes the connection).
#[derive(Debug, PartialEq, Eq)]
pub enum StatusError {
    /// First four bytes were not [`STATUS_MAGIC`].
    BadMagic,
    /// Unknown status kind byte.
    BadKind(u8),
}

impl std::fmt::Display for StatusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatusError::BadMagic => write!(f, "status does not start with KSA1"),
            StatusError::BadKind(k) => write!(f, "unknown status kind {k}"),
        }
    }
}

impl std::error::Error for StatusError {}

/// Decodes the hello-status reply.
pub fn decode_status(buf: &[u8; STATUS_BYTES]) -> Result<HelloStatus, StatusError> {
    if buf[..4] != STATUS_MAGIC {
        return Err(StatusError::BadMagic);
    }
    let next_tick = u64::from_le_bytes(buf[5..].try_into().expect("8 status bytes"));
    match buf[4] {
        0 => Ok(HelloStatus::Ready),
        1 => Ok(HelloStatus::Recovering { next_tick }),
        k => Err(StatusError::BadKind(k)),
    }
}

/// Appends one `stream_id | len | body` frame to `buf`.
pub fn push_frame(buf: &mut Vec<u8>, stream_id: u32, body: &[u8]) {
    buf.put_u32_le(stream_id);
    buf.put_u32_le(body.len() as u32);
    buf.put_slice(body);
}

/// Appends the tick-marker frame to `buf`.
pub fn push_marker(buf: &mut Vec<u8>) {
    buf.put_u32_le(TICK_MARKER_STREAM);
    buf.put_u32_le(0);
}

/// Wire size of the marker frame.
pub const MARKER_BYTES: usize = FRAME_HEADER_BYTES;

/// Re-frames one socket read: feeds `chunk` into `decoder` and splits the
/// result at tick boundaries. Frames accumulate into `tick_buf` as raw
/// wire bytes (header + body, ready for `ingest_tick`); each completed
/// tick is taken out of `tick_buf` and handed to `on_tick`.
///
/// Returns the number of markers seen, or the decoder's poison error
/// (oversized frame — the caller closes the connection).
pub fn feed_ticks(
    decoder: &mut StreamDecoder,
    chunk: &[u8],
    tick_buf: &mut Vec<u8>,
    mut on_tick: impl FnMut(Vec<u8>),
) -> Result<u64, OversizedFrame> {
    let mut markers = 0u64;
    decoder.feed(chunk, |stream_id, body| {
        if stream_id == TICK_MARKER_STREAM {
            markers += 1;
            on_tick(std::mem::take(tick_buf));
        } else {
            push_frame(tick_buf, stream_id, body);
        }
    })?;
    Ok(markers)
}

/// Splits `payloads` framed as `(stream_id, payload)` pairs into wire bytes
/// terminated by a marker — one tick's worth of traffic for a connection.
pub fn encode_tick(payloads: &[(u32, Bytes)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        payloads
            .iter()
            .map(|(_, p)| FRAME_HEADER_BYTES + p.len())
            .sum::<usize>()
            + MARKER_BYTES,
    );
    for (id, payload) in payloads {
        push_frame(&mut buf, *id, payload);
    }
    push_marker(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix_claiming(count: u32) -> [u8; 8] {
        let mut prefix = [0u8; 8];
        prefix[..4].copy_from_slice(&HELLO_MAGIC);
        prefix[4..].copy_from_slice(&count.to_le_bytes());
        prefix
    }

    #[test]
    fn hello_roundtrip() {
        let ids = vec![0u32, 7, 42, 1_000_000];
        let wire = encode_hello(&ids);
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&wire[..8]);
        let count = decode_hello_prefix(&prefix, MAX_HELLO_STREAMS).unwrap();
        assert_eq!(count, ids.len());
        assert_eq!(decode_hello_ids(&wire[8..]).unwrap(), ids);
    }

    #[test]
    fn hello_rejects_bad_magic_and_reserved_ids() {
        let mut wire = encode_hello(&[1]);
        wire[0] = b'X';
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&wire[..8]);
        assert_eq!(
            decode_hello_prefix(&prefix, MAX_HELLO_STREAMS),
            Err(HelloError::BadMagic)
        );

        let wire = encode_hello(&[TICK_MARKER_STREAM]);
        assert_eq!(
            decode_hello_ids(&wire[8..]),
            Err(HelloError::ReservedStream)
        );

        assert!(matches!(
            decode_hello_prefix(&prefix_claiming(u32::MAX), MAX_HELLO_STREAMS),
            Err(HelloError::TooManyStreams { .. })
        ));
    }

    /// The pre-fix hole: a claim *under* the 64 Ki hard ceiling but far
    /// over what this server expects sailed through the old global-only
    /// check — every such hello pinned `4 * count` bytes before a single
    /// stream id was validated. The cap must be the server's own.
    #[test]
    fn hello_cap_is_the_configured_one_not_just_the_hard_ceiling() {
        let claimed = 1 << 12; // 4 Ki streams: fine globally, absurd here
        assert!(claimed < MAX_HELLO_STREAMS);
        assert_eq!(
            decode_hello_prefix(&prefix_claiming(claimed as u32), 8),
            Err(HelloError::TooManyStreams { claimed, cap: 8 })
        );
        // At or under the configured cap: accepted.
        assert_eq!(decode_hello_prefix(&prefix_claiming(8), 8), Ok(8));
        // A misconfigured cap cannot re-open the hole past the ceiling.
        assert_eq!(
            decode_hello_prefix(&prefix_claiming(u32::MAX), usize::MAX),
            Err(HelloError::TooManyStreams {
                claimed: u32::MAX as usize,
                cap: MAX_HELLO_STREAMS,
            })
        );
    }

    #[test]
    fn status_roundtrip_and_rejects_garbage() {
        for status in [
            HelloStatus::Ready,
            HelloStatus::Recovering { next_tick: 0 },
            HelloStatus::Recovering {
                next_tick: u64::MAX,
            },
        ] {
            let wire = encode_status(status);
            assert_eq!(decode_status(&wire), Ok(status));
        }
        let mut wire = encode_status(HelloStatus::Ready);
        wire[0] = b'X';
        assert_eq!(decode_status(&wire), Err(StatusError::BadMagic));
        let mut wire = encode_status(HelloStatus::Ready);
        wire[4] = 9;
        assert_eq!(decode_status(&wire), Err(StatusError::BadKind(9)));
    }

    #[test]
    fn feed_ticks_splits_at_markers_and_preserves_frame_bytes() {
        let tick1 = encode_tick(&[
            (3, Bytes::from_static(b"abc")),
            (9, Bytes::from_static(b"d")),
        ]);
        let tick2 = encode_tick(&[]);
        let tick3 = encode_tick(&[(1, Bytes::from_static(b"zz"))]);
        let wire: Vec<u8> = [tick1.clone(), tick2.clone(), tick3.clone()].concat();

        // Feed in awkward split positions: tick reassembly must not depend
        // on read boundaries.
        for split in [1usize, 7, 11, wire.len() / 2] {
            let mut dec = StreamDecoder::new();
            let mut tick_buf = Vec::new();
            let mut ticks: Vec<Vec<u8>> = Vec::new();
            let mut markers = 0;
            for chunk in wire.chunks(split) {
                markers += feed_ticks(&mut dec, chunk, &mut tick_buf, |t| ticks.push(t)).unwrap();
            }
            assert_eq!(markers, 3, "split {split}");
            assert_eq!(ticks.len(), 3);
            // Re-framed bytes are the original batch bytes minus the marker.
            assert_eq!(ticks[0], tick1[..tick1.len() - MARKER_BYTES]);
            assert!(ticks[1].is_empty());
            assert_eq!(ticks[2], tick3[..tick3.len() - MARKER_BYTES]);
        }
    }
}
