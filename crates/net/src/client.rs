//! Source-side connection driver: pushes a set of streams' wire traffic
//! through one TCP connection, with sim-identical client-side fault
//! injection.
//!
//! The driver reproduces [`kalstream_sim::run_fleet_ingest_faulty`]'s
//! source semantics exactly — per-stream zero-latency [`Link`]s seeded
//! `faults.seed ^ global_index`, sample → observe → send → deliver each
//! tick — so a fleet driven over sockets is bit-comparable, stream for
//! stream, against the same fleet run through the simulator into a
//! [`kalstream_core::SequentialIngest`] reference.

use std::io;

use bytes::Bytes;
use kalstream_core::wire::WireMessage;
use kalstream_core::StreamDecoder;
use kalstream_sim::{FaultCounters, IngestStream, Link, LinkFaults, TrafficMetrics};
use tokio::net::{OwnedReadHalf, OwnedWriteHalf, TcpStream};

use crate::codec::{
    decode_status, encode_hello, push_frame, push_marker, HelloStatus, STATUS_BYTES,
    TICK_MARKER_STREAM,
};

/// How one connection drives its streams.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Ticks to run.
    pub ticks: u64,
    /// Per-message accounted overhead on each stream's link.
    pub overhead_bytes: usize,
    /// Fault profile; stream `i` (global index) seeds `faults.seed ^ i`.
    pub faults: LinkFaults,
    /// Wait for the server's return marker each tick (deterministic
    /// feedback delivery — requires the server's lockstep mode). When
    /// `false` a detached task drains feedback asynchronously instead.
    pub lockstep: bool,
    /// Read the server's 13-byte [`HelloStatus`] reply right after the
    /// hello. Must match the server: durable servers always send it,
    /// volatile servers never do (the bytes would be misparsed as a frame
    /// header by whichever side got it wrong — that's why it's explicit
    /// on both ends rather than sniffed).
    pub expect_status: bool,
}

/// Source-side outcome of one connection.
#[derive(Debug, Default, Clone)]
pub struct ClientReport {
    /// Traffic summed over this connection's streams (link accounting —
    /// what the sim reference charges, not raw socket bytes).
    pub traffic: TrafficMetrics,
    /// Fault injections summed over this connection's streams.
    pub faults: FaultCounters,
    /// Acks read off the feedback direction.
    pub acks: u64,
    /// Bound directives read off the feedback direction.
    pub bounds: u64,
    /// Raw bytes written to the socket (hello + frames + markers).
    pub socket_bytes_out: u64,
    /// The server's hello-status reply, when
    /// [`ClientConfig::expect_status`] was set: [`HelloStatus::Recovering`]
    /// carries the first tick the recovered server has *not* applied, so a
    /// resuming source knows where to rejoin without re-sending ticks the
    /// durable state already reflects.
    pub status: Option<HelloStatus>,
}

/// The per-connection source state: streams plus their fault links.
struct Driver<'s, 'a> {
    streams: &'s mut [IngestStream<'a>],
    links: Vec<Link>,
    observed: Vec<Vec<f64>>,
    truth: Vec<Vec<f64>>,
    wire: Vec<u8>,
}

impl<'s, 'a> Driver<'s, 'a> {
    fn new(streams: &'s mut [IngestStream<'a>], global_base: u64, config: &ClientConfig) -> Self {
        let links = (0..streams.len())
            .map(|i| {
                Link::with_faults(
                    0,
                    config.overhead_bytes,
                    LinkFaults {
                        seed: config.faults.seed ^ (global_base + i as u64),
                        ..config.faults
                    },
                )
            })
            .collect();
        let observed: Vec<Vec<f64>> = streams
            .iter()
            .map(|s| vec![0.0; s.producer.dim()])
            .collect();
        let truth = observed.clone();
        Driver {
            streams,
            links,
            observed,
            truth,
            wire: Vec::new(),
        }
    }

    /// One tick: sample every stream, pass what ships through its fault
    /// link, frame what the link delivers, close with a marker.
    async fn write_tick(
        &mut self,
        now: u64,
        write: &mut OwnedWriteHalf,
        report: &mut ClientReport,
    ) -> io::Result<()> {
        self.wire.clear();
        for (i, stream) in self.streams.iter_mut().enumerate() {
            (stream.sampler)(&mut self.observed[i], &mut self.truth[i]);
            if let Some(payload) = stream.producer.observe(now, &self.observed[i]) {
                self.links[i].send_tagged(now, stream.stream_id, payload);
            }
            for msg in self.links[i].deliver(now) {
                push_frame(&mut self.wire, msg.stream_id, &msg.payload);
            }
        }
        push_marker(&mut self.wire);
        report.socket_bytes_out += self.wire.len() as u64;
        write.write_all(&self.wire).await
    }

    fn finish(self, report: &mut ClientReport) {
        for link in &self.links {
            report.traffic.merge(link.traffic());
            report.faults.merge(&link.fault_counters());
        }
    }
}

async fn open(
    addr: &str,
    ids: &[u32],
    report: &mut ClientReport,
) -> io::Result<(OwnedReadHalf, OwnedWriteHalf)> {
    let stream = TcpStream::connect(addr).await?;
    stream.set_nodelay(true)?;
    let (read, mut write) = stream.into_split();
    let hello = encode_hello(ids);
    write.write_all(&hello).await?;
    report.socket_bytes_out += hello.len() as u64;
    Ok((read, write))
}

/// Connects, says hello for the streams' ids, and drives every tick.
///
/// `global_base` is the fleet-wide index of `streams[0]` (fault seeds are
/// per *fleet* stream index, matching the sim reference). The write side
/// shuts down after the last tick. In lockstep mode each tick blocks on
/// the server's return marker (reading that tick's feedback); otherwise a
/// detached drain task reads feedback until the server closes.
pub async fn drive_connection(
    addr: &str,
    streams: &mut [IngestStream<'_>],
    global_base: u64,
    config: &ClientConfig,
) -> io::Result<ClientReport> {
    let ids: Vec<u32> = streams.iter().map(|s| s.stream_id).collect();
    let mut report = ClientReport::default();
    let (mut read, mut write) = open(addr, &ids, &mut report).await?;
    if config.expect_status {
        let mut buf = [0u8; STATUS_BYTES];
        read.read_exact(&mut buf).await?;
        let status =
            decode_status(&buf).map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
        report.status = Some(status);
    }
    let mut driver = Driver::new(streams, global_base, config);

    if config.lockstep {
        let mut decoder = StreamDecoder::new();
        let mut chunk = [0u8; 4096];
        for now in 0..config.ticks {
            driver.write_tick(now, &mut write, &mut report).await?;
            read_feedback_tick(&mut read, &mut decoder, &mut chunk, &mut report).await;
        }
        write.shutdown().await?;
        // Late feedback until the server closes its side.
        loop {
            let n = match read.read(&mut chunk).await {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            count_feedback(&mut decoder, &chunk[..n], &mut report);
        }
    } else {
        let drain = tokio::spawn(discard_feedback(read));
        for now in 0..config.ticks {
            driver.write_tick(now, &mut write, &mut report).await?;
        }
        write.shutdown().await?;
        let (acks, bounds) = drain.await.unwrap_or((0, 0));
        report.acks = acks;
        report.bounds = bounds;
    }
    driver.finish(&mut report);
    Ok(report)
}

async fn read_feedback_tick(
    read: &mut OwnedReadHalf,
    decoder: &mut StreamDecoder,
    chunk: &mut [u8],
    report: &mut ClientReport,
) {
    loop {
        let n = match read.read(chunk).await {
            Ok(0) | Err(_) => return, // server gone: treat as end of tick
            Ok(n) => n,
        };
        if count_feedback(decoder, &chunk[..n], report) {
            return;
        }
    }
}

/// Feeds a feedback chunk, counting acks/bounds; `true` once a tick
/// marker was seen.
fn count_feedback(decoder: &mut StreamDecoder, chunk: &[u8], report: &mut ClientReport) -> bool {
    let mut marker = false;
    decoder
        .feed(chunk, |stream_id, body| {
            if stream_id == TICK_MARKER_STREAM {
                marker = true;
                return;
            }
            match WireMessage::decode(body) {
                Ok(WireMessage::Ack { .. }) => report.acks += 1,
                Ok(WireMessage::Bound { .. }) => report.bounds += 1,
                _ => {}
            }
        })
        .expect("server sent an oversized feedback frame");
    marker
}

/// Reads and discards feedback until EOF, counting payloads — the
/// throughput-mode companion that keeps the server's per-connection queue
/// drained (zero sheds) while the write side blasts ticks. Returns
/// `(acks, bounds)` read before the server closed.
pub async fn discard_feedback(mut read: OwnedReadHalf) -> (u64, u64) {
    let mut decoder = StreamDecoder::new();
    let mut chunk = [0u8; 4096];
    let mut report = ClientReport::default();
    loop {
        let n = match read.read(&mut chunk).await {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        count_feedback(&mut decoder, &chunk[..n], &mut report);
    }
    (report.acks, report.bounds)
}

/// Raw feedback payloads of one lockstep connection tick, for callers
/// that need the decoded directives rather than counts (the
/// loss-recovery tests).
pub fn decode_feedback(frames: &[(u32, Bytes)]) -> Vec<(u32, WireMessage)> {
    frames
        .iter()
        .filter_map(|(id, p)| WireMessage::decode(p).ok().map(|m| (*id, m)))
        .collect()
}
