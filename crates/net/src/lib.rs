//! # kalstream-net
//!
//! Real network transport for the suppression protocol: wire-v3 frames
//! over TCP sockets, behind the same [`kalstream_sim::Transport`]
//! abstraction the deterministic simulator implements.
//!
//! Three layers:
//!
//! * [`codec`] — the socket protocol: a `KSN1` hello claiming stream ids,
//!   then wire-v3 frames with zero-length tick-marker frames delimiting
//!   ticks, so stream sockets carry the simulator's tick semantics.
//! * [`TcpTransport`] — a single-session loopback transport that is
//!   *bit-identical* to [`kalstream_sim::SimTransport`]: fault injection
//!   (loss/dup/reorder/jitter) runs through the very same [`Link`]
//!   machinery with the same seeds *before* bytes hit the socket, so the
//!   socket adds real framing, reassembly, and (via
//!   [`TcpTransport::kill_at`]) connection death — without perturbing the
//!   deterministic schedule the proptests compare against.
//! * [`NetServer`] / [`drive_connection`] — the fleet path: a
//!   multi-threaded accept/read/route server feeding the sharded
//!   [`kalstream_core::IngestPipeline`], and the matching source-side
//!   connection driver. Per-connection feedback queues are bounded; sheds
//!   are counted (including during drain) and exported through
//!   `kalstream-obs` snapshots. With `NetServerConfig::durable` set the
//!   server runs behind `kalstream-durable`'s WAL-append-before-apply
//!   discipline: a killed server restarts on the same directory, replays
//!   to bit-identical filter state, and tells each reconnecting client
//!   where to resume via the [`codec::HelloStatus`] hello reply.
//!
//! [`Link`]: kalstream_sim::Link

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
pub mod codec;
mod server;
mod transport;
pub mod workload;

pub use client::{decode_feedback, discard_feedback, drive_connection, ClientConfig, ClientReport};
pub use codec::HelloStatus;
pub use server::{
    ConnReport, ElasticNetStats, NetReport, NetServer, NetServerConfig, FEEDBACK_QUEUE_DEPTH,
};
pub use transport::TcpTransport;
