//! [`TcpTransport`]: the [`Transport`] seam carried over a real TCP
//! socket pair.
//!
//! Both ends live in the calling process — the producer writes wire-v3
//! frames into one loopback socket, the consumer reads them back out of
//! the accepted peer — so a single [`kalstream_sim::Session`] tick loop
//! drives real kernel sockets, real framing, and real byte-stream
//! reassembly ([`StreamDecoder`]) while keeping the deterministic tick
//! clock the protocol's precision contract is stated in.
//!
//! Determinism under faults: TCP never loses or reorders bytes, so fault
//! injection happens *before* the socket, in the exact [`Link`] machinery
//! the simulator uses (same seeds, same RNG draw order). What goes over
//! the wire is what a lossy network would have delivered; the socket adds
//! real framing, buffering, and reassembly on top. That is what makes
//! `SimTransport` vs `TcpTransport` bit-identity testable: for the same
//! fault profile both deliver the same payloads at the same ticks, and the
//! proptests in `tests/bit_identity.rs` hold them to it.
//!
//! Connection failure is modeled explicitly: [`TcpTransport::kill_at`]
//! schedules ticks at which the transport tears down its socket pair
//! mid-stream — every frame due that tick dies with the connection — and
//! transparently reconnects. The seq/ack layer above must then detect the
//! gap and resync, which `tests/loss_recovery.rs` (root package) asserts.

use bytes::Bytes;
use tokio::net::{OwnedReadHalf, OwnedWriteHalf, TcpListener, TcpStream};
use tokio::runtime::{Builder, Runtime};

use kalstream_core::StreamDecoder;
use kalstream_sim::{Link, LinkFaults, Tick, Transport, TransportStats, ACK_SEED_OFFSET};

use crate::codec::{feed_ticks, push_frame, push_marker, TICK_MARKER_STREAM};

/// The four socket halves of one established producer↔consumer pair.
struct Halves {
    /// Producer side: forward frames out.
    client_write: OwnedWriteHalf,
    /// Producer side: feedback frames in.
    client_read: OwnedReadHalf,
    /// Consumer side: forward frames in.
    server_read: OwnedReadHalf,
    /// Consumer side: feedback frames out.
    server_write: OwnedWriteHalf,
}

/// A [`Transport`] over a real loopback TCP connection, with sim-identical
/// fault scheduling in front of the socket. See the module docs.
pub struct TcpTransport {
    rt: Runtime,
    listener: TcpListener,
    halves: Halves,
    forward: Link,
    feedback: Link,
    fwd_decoder: StreamDecoder,
    fb_decoder: StreamDecoder,
    /// Ticks at which the connection dies mid-tick (ascending; consumed
    /// front to back).
    kill_at: Vec<Tick>,
    reconnects: u64,
    shutdown_errors: u64,
    socket_bytes_out: u64,
    socket_bytes_in: u64,
    write_buf: Vec<u8>,
}

impl TcpTransport {
    /// Establishes a reliable loopback transport with `latency` ticks of
    /// delay and `overhead_bytes` of accounted per-message framing.
    pub fn connect(latency: Tick, overhead_bytes: usize) -> std::io::Result<Self> {
        TcpTransport::with_faults(latency, overhead_bytes, LinkFaults::default())
    }

    /// Like [`TcpTransport::connect`], with the given fault profile on the
    /// forward path; the feedback path seeds from
    /// `faults.seed ^ ACK_SEED_OFFSET`, exactly like
    /// [`kalstream_sim::SimTransport::with_faults`].
    pub fn with_faults(
        latency: Tick,
        overhead_bytes: usize,
        faults: LinkFaults,
    ) -> std::io::Result<Self> {
        let rt = Builder::new_current_thread().enable_all().build()?;
        let listener = rt.block_on(TcpListener::bind("127.0.0.1:0"))?;
        let halves = establish(&rt, &listener)?;
        Ok(TcpTransport {
            rt,
            listener,
            halves,
            forward: Link::with_faults(latency, overhead_bytes, faults),
            feedback: Link::with_faults(
                latency,
                overhead_bytes,
                LinkFaults {
                    seed: faults.seed ^ ACK_SEED_OFFSET,
                    ..faults
                },
            ),
            fwd_decoder: StreamDecoder::new(),
            fb_decoder: StreamDecoder::new(),
            kill_at: Vec::new(),
            reconnects: 0,
            shutdown_errors: 0,
            socket_bytes_out: 0,
            socket_bytes_in: 0,
            write_buf: Vec::new(),
        })
    }

    /// Schedules connection kills: at each listed tick the socket pair is
    /// torn down (losing every frame due that tick) and re-established.
    pub fn kill_at(mut self, mut ticks: Vec<Tick>) -> Self {
        ticks.sort_unstable();
        self.kill_at = ticks;
        self
    }

    /// Connections re-established after scheduled kills.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Shuts down both write directions, surfacing the first error — the
    /// fallible form of [`Transport::shutdown`]. Both halves are attempted
    /// even when the first fails (the second's result is reported only if
    /// the first succeeded), so one dead direction never strands the other.
    pub fn close(&mut self) -> std::io::Result<()> {
        let client = self.rt.block_on(self.halves.client_write.shutdown());
        let server = self.rt.block_on(self.halves.server_write.shutdown());
        client.and(server)
    }

    /// Shutdown errors swallowed by the infallible [`Transport::shutdown`]
    /// path (callers who can propagate should use [`TcpTransport::close`]).
    pub fn shutdown_errors(&self) -> u64 {
        self.shutdown_errors
    }

    /// Raw bytes written to sockets (frames + markers, both directions).
    pub fn socket_bytes_out(&self) -> u64 {
        self.socket_bytes_out
    }

    /// Raw bytes read from sockets.
    pub fn socket_bytes_in(&self) -> u64 {
        self.socket_bytes_in
    }

    /// Reads one marker-delimited tick segment from `read`, sinking every
    /// non-marker frame. EOF before the marker means the connection died
    /// mid-tick: whatever arrived is delivered, the rest is lost.
    fn read_tick(
        rt: &Runtime,
        read: &mut OwnedReadHalf,
        decoder: &mut StreamDecoder,
        bytes_in: &mut u64,
        sink: &mut dyn FnMut(u32, Bytes),
    ) {
        let mut chunk = [0u8; 4096];
        let mut tick_buf: Vec<u8> = Vec::new();
        loop {
            let n = match rt.block_on(read.read(&mut chunk)) {
                Ok(0) | Err(_) => break, // dead connection: lose the tail
                Ok(n) => n,
            };
            *bytes_in += n as u64;
            let mut done = false;
            // Frames were already re-framed once by `decoder`; re-parsing
            // the accumulated tick bytes is what `StreamDecoder`'s
            // split-invariance proptest licences.
            let markers = feed_ticks(decoder, &chunk[..n], &mut tick_buf, |tick| {
                let mut one_shot = StreamDecoder::new();
                one_shot
                    .feed(&tick, |id, body| {
                        debug_assert_ne!(id, TICK_MARKER_STREAM);
                        sink(id, Bytes::copy_from_slice(body));
                    })
                    .expect("tick re-parse of already-validated frames");
                done = true;
            })
            .expect("peer sent an oversized frame");
            debug_assert!(markers <= 1, "one marker per tick read");
            if done {
                break;
            }
        }
    }

    /// Writes every frame due at `now` on `link` plus the tick marker.
    fn write_due(&mut self, now: Tick, forward: bool) {
        self.write_buf.clear();
        let link = if forward {
            &mut self.forward
        } else {
            &mut self.feedback
        };
        for msg in link.deliver(now) {
            push_frame(&mut self.write_buf, msg.stream_id, &msg.payload);
        }
        push_marker(&mut self.write_buf);
        self.socket_bytes_out += self.write_buf.len() as u64;
        let write = if forward {
            &mut self.halves.client_write
        } else {
            &mut self.halves.server_write
        };
        self.rt
            .block_on(write.write_all(&self.write_buf))
            .expect("loopback write failed");
    }
}

/// Dials the listener and accepts the peer — one established pair.
fn establish(rt: &Runtime, listener: &TcpListener) -> std::io::Result<Halves> {
    let addr = listener.local_addr()?;
    // Loopback connect completes from the listener's backlog, so a single
    // thread can dial then accept without deadlock.
    let client = rt.block_on(TcpStream::connect(addr))?;
    client.set_nodelay(true)?;
    let (server, _) = rt.block_on(listener.accept())?;
    let (client_read, client_write) = client.into_split();
    let (server_read, server_write) = server.into_split();
    Ok(Halves {
        client_write,
        client_read,
        server_read,
        server_write,
    })
}

impl Transport for TcpTransport {
    fn send(&mut self, now: Tick, stream_id: u32, payload: Bytes) {
        self.forward.send_tagged(now, stream_id, payload);
    }

    fn recv(&mut self, now: Tick, sink: &mut dyn FnMut(u32, Bytes)) {
        let _ = now;
        TcpTransport::read_tick(
            &self.rt,
            &mut self.halves.server_read,
            &mut self.fwd_decoder,
            &mut self.socket_bytes_in,
            sink,
        );
    }

    fn send_feedback(&mut self, now: Tick, stream_id: u32, payload: Bytes) {
        self.feedback.send_tagged(now, stream_id, payload);
    }

    fn recv_feedback(&mut self, now: Tick, sink: &mut dyn FnMut(u32, Bytes)) {
        // The feedback direction flushes lazily: due frames are written
        // here (consumer side), then immediately read back (producer side)
        // — within one tick, matching the sim's same-tick ack delivery.
        self.write_due(now, false);
        TcpTransport::read_tick(
            &self.rt,
            &mut self.halves.client_read,
            &mut self.fb_decoder,
            &mut self.socket_bytes_in,
            sink,
        );
    }

    fn end_tick(&mut self, now: Tick) {
        if self.kill_at.first() == Some(&now) {
            self.kill_at.remove(0);
            // Everything due this tick was "on the wire" when the
            // connection died: drain and discard, then reconnect. Frames
            // scheduled for later ticks are still in the sender's queue
            // and survive, like any buffered-but-unsent data would.
            let lost: usize = self.forward.deliver(now).count();
            let _ = lost;
            let fresh = establish(&self.rt, &self.listener).expect("reconnect failed");
            // Old halves drop here: write directions shut down, reader
            // sides vanish with them — unread bytes are gone for good.
            self.halves = fresh;
            self.fwd_decoder = StreamDecoder::new();
            self.fb_decoder = StreamDecoder::new();
            self.reconnects += 1;
        }
        self.write_due(now, true);
    }

    fn shutdown(&mut self) {
        // The trait signature is infallible (the sim transport cannot
        // fail); an error here is still an event, not noise — count it.
        if self.close().is_err() {
            self.shutdown_errors += 1;
        }
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            forward: self.forward.traffic().clone(),
            feedback: self.feedback.traffic().clone(),
            faults: self.forward.fault_counters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_sim::SimTransport;

    fn payload(b: &[u8]) -> Bytes {
        Bytes::copy_from_slice(b)
    }

    /// A `(tick, stream_id, payload)` delivery log, one per direction.
    type DeliveryLog = Vec<(Tick, u32, Bytes)>;

    /// Drives both transports through the same schedule and collects
    /// per-tick deliveries.
    fn drive(t: &mut dyn Transport, ticks: Tick) -> (DeliveryLog, DeliveryLog) {
        let mut fwd = Vec::new();
        let mut fb = Vec::new();
        for now in 0..ticks {
            if now % 3 != 2 {
                t.send(now, now as u32, payload(format!("m{now}").as_bytes()));
            }
            t.end_tick(now);
            t.recv(now, &mut |id, p| fwd.push((now, id, p)));
            if now % 4 == 1 {
                t.send_feedback(now, now as u32, payload(b"ack"));
            }
            t.recv_feedback(now, &mut |id, p| fb.push((now, id, p)));
        }
        t.shutdown();
        (fwd, fb)
    }

    #[test]
    fn reliable_tcp_matches_sim_exactly() {
        for latency in [0u64, 1, 3] {
            let mut sim = SimTransport::new(latency, 4);
            let mut tcp = TcpTransport::connect(latency, 4).unwrap();
            let (sim_fwd, sim_fb) = drive(&mut sim, 40);
            let (tcp_fwd, tcp_fb) = drive(&mut tcp, 40);
            assert_eq!(sim_fwd, tcp_fwd, "forward deliveries at latency {latency}");
            assert_eq!(sim_fb, tcp_fb, "feedback deliveries at latency {latency}");
            assert_eq!(sim.stats(), tcp.stats());
        }
    }

    #[test]
    fn faulty_tcp_matches_sim_exactly() {
        let faults = LinkFaults {
            loss: 0.25,
            dup: 0.1,
            reorder: 0.2,
            seed: 99,
            ..LinkFaults::default()
        };
        let mut sim = SimTransport::with_faults(1, 0, faults);
        let mut tcp = TcpTransport::with_faults(1, 0, faults).unwrap();
        let (sim_fwd, sim_fb) = drive(&mut sim, 120);
        let (tcp_fwd, tcp_fb) = drive(&mut tcp, 120);
        assert_eq!(sim_fwd, tcp_fwd);
        assert_eq!(sim_fb, tcp_fb);
        assert_eq!(sim.stats(), tcp.stats());
    }

    #[test]
    fn killed_connection_loses_the_due_tick_and_recovers() {
        let mut tcp = TcpTransport::connect(0, 0).unwrap().kill_at(vec![5]);
        let mut got = Vec::new();
        for now in 0..10u64 {
            tcp.send(now, now as u32, payload(b"x"));
            tcp.end_tick(now);
            tcp.recv(now, &mut |id, _| got.push(id));
            tcp.recv_feedback(now, &mut |_, _| {});
        }
        assert_eq!(tcp.reconnects(), 1);
        // Tick 5's frame died with the connection; everything else landed.
        assert_eq!(got, vec![0, 1, 2, 3, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn close_surfaces_shutdown_results() {
        let mut tcp = TcpTransport::connect(0, 0).unwrap();
        tcp.close().expect("closing a live pair succeeds");
        assert_eq!(tcp.shutdown_errors(), 0);
        // The infallible trait path swallows-but-counts; on an
        // already-closed pair it must at least not panic.
        Transport::shutdown(&mut tcp);
        let _ = tcp.shutdown_errors();
    }
}
