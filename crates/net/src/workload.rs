//! The canonical fleet workload both net binaries build independently.
//!
//! `kalstream-server` and `loadgen` are separate processes: the server
//! needs every stream's [`ServerEndpoint`] and the client needs the
//! matching [`SourceEndpoint`] producer plus sampler. They cannot hand
//! objects to each other, so both derive the pair *deterministically from
//! the stream id alone* — same spec, same first sample, same seeds — and
//! the protocol keeps the two ends bit-identical from there.

use kalstream_core::{ProtocolConfig, ServerEndpoint, SessionSpec, SourceEndpoint};
use kalstream_gen::{
    synthetic::{OrnsteinUhlenbeck, RandomWalk, Sinusoid},
    Stream,
};
use kalstream_sim::IngestStream;

/// Precision bound per stream family (≈ one natural step of the process).
fn delta_for(id: u32) -> f64 {
    match id % 3 {
        0 => 0.5,  // random walk
        1 => 0.35, // sinusoid
        _ => 0.5,  // mean-reverting
    }
}

/// The deterministic generator for stream `id`: a three-family scalar mix.
fn make_generator(id: u32) -> Box<dyn Stream + Send> {
    let seed = 90_000 + id as u64;
    match id % 3 {
        0 => Box::new(RandomWalk::new(0.0, 0.0, 0.5, 0.1, seed)),
        1 => Box::new(Sinusoid::new(
            10.0,
            core::f64::consts::TAU / 200.0,
            0.0,
            0.0,
            0.2,
            seed,
        )),
        _ => Box::new(OrnsteinUhlenbeck::new(0.0, 0.1, 0.0, 0.5, 1.0, 0.1, seed)),
    }
}

/// Builds stream `id`'s matched endpoint pair plus its generator, primed
/// with the first sample (which seeds the filters at both ends).
fn build_stream(
    id: u32,
    ack_timeout: Option<u64>,
) -> (
    SourceEndpoint,
    ServerEndpoint,
    Box<dyn Stream + Send>,
    Vec<f64>,
) {
    let mut gen = make_generator(id);
    let first = gen.next_sample();
    let mut config = ProtocolConfig::new(delta_for(id)).expect("valid delta");
    if let Some(t) = ack_timeout {
        config = config.with_ack_timeout(t).expect("valid ack timeout");
    }
    let session = SessionSpec::default_scalar(first.observed[0], config)
        .expect("valid session spec")
        .build();
    (session.source, session.server, gen, first.observed)
}

/// Server side of the canonical workload: `(id, endpoint)` pairs for ids
/// `0..n`, ready for [`kalstream_core::IngestPipeline`].
pub fn server_endpoints(n: u32) -> Vec<(u32, ServerEndpoint)> {
    (0..n).map(|id| (id, build_stream(id, None).1)).collect()
}

/// [`server_endpoints`] with ack-based loss recovery enabled — every sync
/// is sequenced and acknowledged.
pub fn server_endpoints_acked(n: u32, ack_timeout: u64) -> Vec<(u32, ServerEndpoint)> {
    (0..n)
        .map(|id| (id, build_stream(id, Some(ack_timeout)).1))
        .collect()
}

/// Source side of the canonical workload: ingest streams for `ids`, each
/// replaying its first (endpoint-seeding) sample on tick 0.
pub fn source_streams(ids: &[u32]) -> Vec<IngestStream<'static>> {
    source_streams_inner(ids, None)
}

/// [`source_streams`] with ack-based loss recovery enabled, matching
/// [`server_endpoints_acked`].
pub fn source_streams_acked(ids: &[u32], ack_timeout: u64) -> Vec<IngestStream<'static>> {
    source_streams_inner(ids, Some(ack_timeout))
}

fn source_streams_inner(ids: &[u32], ack_timeout: Option<u64>) -> Vec<IngestStream<'static>> {
    ids.iter()
        .map(|&id| {
            let (source, _, mut gen, first) = build_stream(id, ack_timeout);
            let dim = gen.dim();
            let mut first_pending = Some(first);
            IngestStream {
                stream_id: id,
                producer: Box::new(source),
                sampler: Box::new(move |obs: &mut [f64], tru: &mut [f64]| {
                    if let Some(f) = first_pending.take() {
                        obs[..dim].copy_from_slice(&f);
                        tru[..dim].copy_from_slice(&f);
                    } else {
                        gen.next_into(obs, tru);
                    }
                }),
            }
        })
        .collect()
}

/// Every filter bit of one server endpoint (state + covariance), the
/// currency of the transport bit-identity gates.
pub fn endpoint_bits(ep: &ServerEndpoint) -> Vec<u64> {
    let f = ep.filter();
    f.state()
        .iter()
        .map(|v| v.to_bits())
        .chain(f.covariance().as_slice().iter().map(|v| v.to_bits()))
        .collect()
}

/// Bit-identity between two ingest outcomes: same applied messages, same
/// stream set, and per stream the same sync count and filter bits.
pub fn ingest_identical(
    a: &kalstream_core::IngestResult,
    b: &kalstream_core::IngestResult,
) -> bool {
    a.total_messages() == b.total_messages()
        && a.endpoints.len() == b.endpoints.len()
        && a.endpoints
            .iter()
            .zip(b.endpoints.iter())
            .all(|((ia, ea), (ib, eb))| {
                ia == ib
                    && ea.syncs_applied() == eb.syncs_applied()
                    && endpoint_bits(ea) == endpoint_bits(eb)
            })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_derive_the_same_fleet() {
        // The server's endpoint for id i must be the endpoint the source's
        // producer shadows — run a few ticks sequentially and check the
        // protocol holds (no violations ⇒ the pair really is matched).
        let mut streams = source_streams(&[0, 1, 2, 3, 4, 5]);
        let endpoints = server_endpoints(6);
        let mut sink =
            kalstream_core::FramingSink::new(kalstream_core::SequentialIngest::new(endpoints));
        let report = kalstream_sim::run_fleet_ingest(&mut streams, 64, 8, &mut sink);
        assert_eq!(report.ticks, 64);
        assert!(report.total_traffic.messages() > 0);
        let result = sink.into_inner().finish();
        assert_eq!(result.shards[0].ticks, 64);
        assert!(result.total_messages() > 0);
    }
}
