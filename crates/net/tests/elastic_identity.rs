//! Elastic serving: a fleet over real TCP connections with the
//! closed-loop controller enabled keeps every connection alive across
//! resizes (they execute on the router thread between global ticks) and
//! converges to exactly the filter state the simulator's sequential
//! reference produces — growth is invisible to the protocol.

use kalstream_core::{FramingSink, IngestResult, SequentialIngest};
use kalstream_elastic::{ControllerConfig, ElasticConfig};
use kalstream_net::{workload, ClientConfig, NetServer, NetServerConfig};
use kalstream_sim::{run_fleet_ingest, LinkFaults};

const OVERHEAD: usize = 8;
const STREAMS: u32 = 12;
const CONNS: usize = 4;
const TICKS: u64 = 60;

fn reference() -> IngestResult {
    let ids: Vec<u32> = (0..STREAMS).collect();
    let mut fleet = workload::source_streams(&ids);
    let mut sink = FramingSink::new(SequentialIngest::new(workload::server_endpoints(STREAMS)));
    run_fleet_ingest(&mut fleet, TICKS, OVERHEAD, &mut sink);
    sink.into_inner().finish()
}

/// An eager controller: one frame per tick saturates a shard, so the
/// canonical workload's offered load forces growth off the single initial
/// shard within a couple of sample windows.
fn eager_elastic() -> ElasticConfig {
    let mut controller = ControllerConfig::new(1, 4, 1.0);
    controller.grow_after = 2;
    controller.cooldown = 1;
    ElasticConfig::new(controller, 5)
}

#[test]
fn elastic_tcp_fleet_grows_without_dropping_connections_and_stays_bit_identical() {
    let per_conn = STREAMS as usize / CONNS;
    let server = NetServer::start(
        "127.0.0.1:0",
        workload::server_endpoints(STREAMS),
        NetServerConfig {
            shards: 1,
            expected_conns: CONNS,
            lockstep: true,
            elastic: Some(eager_elastic()),
            ..NetServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let client_threads: Vec<_> = (0..CONNS)
        .map(|conn| {
            let addr = addr.clone();
            let config = ClientConfig {
                ticks: TICKS,
                overhead_bytes: OVERHEAD,
                faults: LinkFaults::default(),
                lockstep: true,
                expect_status: false,
            };
            std::thread::spawn(move || {
                let rt = tokio::runtime::Builder::new_current_thread()
                    .enable_all()
                    .build()
                    .expect("runtime");
                let base = (conn * per_conn) as u64;
                let ids: Vec<u32> = (0..per_conn).map(|k| base as u32 + k as u32).collect();
                let mut fleet = workload::source_streams(&ids);
                rt.block_on(kalstream_net::drive_connection(
                    &addr, &mut fleet, base, &config,
                ))
                .expect("connection survives every resize")
            })
        })
        .collect();
    for t in client_threads {
        t.join().expect("client thread");
    }
    let report = server.join().expect("server");

    // Every connection was admitted, saw every tick, and drained cleanly.
    assert_eq!(report.rejected_hellos, 0);
    assert_eq!(report.total_shed(), 0);
    assert_eq!(report.ticks, TICKS);
    assert_eq!(report.conns.len(), CONNS);
    for c in &report.conns {
        assert_eq!(
            c.ticks, TICKS,
            "conn {} missed ticks across a resize",
            c.conn
        );
    }

    // The controller really resized the pipeline mid-serve.
    let elastic = report.elastic.as_ref().expect("elastic stats reported");
    assert!(
        elastic.grows >= 1,
        "eager controller must grow: {elastic:?}"
    );
    assert!(elastic.final_shards > 1, "fleet ended on {elastic:?}");

    // And none of it is visible in the filter arithmetic.
    assert!(
        workload::ingest_identical(&report.ingest, &reference()),
        "elastic TCP fleet diverged from the sequential sim reference"
    );

    // The obs snapshot carries the controller counters for the CI lane.
    let snap = report.snapshot();
    assert_eq!(snap.counter("net.elastic.grows"), Some(elastic.grows));
    assert!(snap.gauge("net.elastic.final_shards").is_some());
}
