//! A connection dying *between* a stream frame and its tick marker is the
//! nastiest spot on the wire: the server holds half a tick it must never
//! apply. These tests pin the contract — a half-delivered tick is fully
//! discarded, and a reconnect's retransmission applies exactly once —
//! with raw `std::net::TcpStream` clients so the torn byte boundary is
//! under test control, not the driver's.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use kalstream_core::frame::FrameBatch;
use kalstream_core::wire::{SyncMessage, WireMessage};
use kalstream_core::SequentialIngest;
use kalstream_linalg::{Matrix, Vector};
use kalstream_net::codec::{encode_hello, push_marker};
use kalstream_net::{workload, NetServer, NetServerConfig};

const STREAMS: u32 = 2;

/// One sequenced sync frame's wire bytes (header + body) for `id`.
fn sync_frame(id: u32, seq: u64, value: f64) -> Vec<u8> {
    let mut batch = FrameBatch::new();
    let wire = WireMessage::Sync {
        seq: Some(seq),
        msg: SyncMessage::State {
            x: Vector::from_slice(&[value]),
            p: Matrix::scalar(1, 0.3),
        },
    }
    .encode();
    batch.push_raw(id, &wire);
    batch.into_buffer().to_vec()
}

/// The full tick both tests deal in: one sync per stream, then the marker.
fn full_tick() -> Vec<u8> {
    let mut wire = Vec::new();
    wire.extend_from_slice(&sync_frame(0, 1, 0.75));
    wire.extend_from_slice(&sync_frame(1, 1, -0.25));
    push_marker(&mut wire);
    wire
}

/// The torn prefix: stream 0's frame arrived, the marker (and stream 1's
/// frame) never did.
fn half_tick() -> Vec<u8> {
    sync_frame(0, 1, 0.75)
}

fn start_server(expected_conns: usize) -> NetServer {
    NetServer::start(
        "127.0.0.1:0",
        workload::server_endpoints(STREAMS),
        NetServerConfig {
            shards: 2,
            expected_conns,
            lockstep: false,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback")
}

#[test]
fn half_delivered_tick_is_fully_discarded() {
    let server = start_server(1);
    let addr = server.addr();

    let mut conn = TcpStream::connect(addr).expect("dial");
    conn.write_all(&encode_hello(&[0, 1])).expect("hello");
    conn.write_all(&half_tick()).expect("torn tick");
    drop(conn); // EOF before the marker: the tick never completed

    let report = server.join().expect("server");
    assert_eq!(report.ticks, 0, "a torn tick must not advance the barrier");
    assert_eq!(report.conns[0].ticks, 0);

    // Not partially applied either: state is bit-identical to a fleet
    // that ingested nothing at all.
    let untouched = SequentialIngest::new(workload::server_endpoints(STREAMS)).finish();
    assert!(
        workload::ingest_identical(&report.ingest, &untouched),
        "half a tick leaked into the filters"
    );
}

#[test]
fn reconnect_mid_tick_replays_the_tick_exactly_once() {
    let server = start_server(2);
    let addr = server.addr();

    // First connection dies mid-tick: frame for stream 0 on the wire, no
    // marker. From the protocol's point of view this tick was never sent.
    let mut first = TcpStream::connect(addr).expect("dial");
    first.write_all(&encode_hello(&[0, 1])).expect("hello");
    first.write_all(&half_tick()).expect("torn tick");
    drop(first);
    // Let the first hello win admission so the route map's final owner is
    // deterministic (the tick discipline itself is order-independent).
    std::thread::sleep(Duration::from_millis(100));

    // The reconnect claims the same streams and retransmits the whole
    // tick — the client-side recovery rule: an unacknowledged tick is
    // re-sent in full, never resumed from its torn middle.
    let mut second = TcpStream::connect(addr).expect("redial");
    second.write_all(&encode_hello(&[0, 1])).expect("hello");
    second.write_all(&full_tick()).expect("full tick");
    drop(second);

    let report = server.join().expect("server");
    assert_eq!(report.ticks, 1, "the retransmitted tick applies once");
    assert_eq!(report.conns[0].ticks, 0, "the torn half never applied");
    assert_eq!(report.conns[1].ticks, 1);

    // Exactly-once: identical to a reference that ingested the tick once.
    let mut reference = SequentialIngest::new(workload::server_endpoints(STREAMS));
    let tick = full_tick();
    reference.ingest_tick(&tick[..tick.len() - kalstream_net::codec::MARKER_BYTES]);
    assert!(
        workload::ingest_identical(&report.ingest, &reference.finish()),
        "mid-tick reconnect was not exactly-once"
    );
}
