//! The tentpole guarantee, property-tested: a protocol session run over
//! the real TCP transport converges to *exactly* the consumer filter
//! state — every state and covariance bit, every suppression verdict,
//! every delivery count — that the deterministic sim transport produces,
//! for arbitrary fault profiles (loss, duplication, reordering, jitter),
//! latencies, and ack configurations.

use kalstream_core::{ProtocolConfig, ServerEndpoint, SessionSpec, SourceEndpoint};
use kalstream_gen::{synthetic::RandomWalk, Stream};
use kalstream_net::TcpTransport;
use kalstream_sim::{Session, SessionConfig, SessionReport, SimTransport, Transport};
use proptest::prelude::*;

/// A boxed sampler filling `(observed, truth)` slices each tick.
type Sampler = Box<dyn FnMut(&mut [f64], &mut [f64])>;

/// One matched endpoint pair + sampler, rebuilt identically per transport.
fn build(
    seed: u64,
    delta: f64,
    ack_timeout: Option<u64>,
) -> (SourceEndpoint, ServerEndpoint, Sampler) {
    let mut gen = RandomWalk::new(0.0, 0.0, 0.5, 0.1, seed);
    let first = gen.next_sample();
    let mut config = ProtocolConfig::new(delta).expect("valid delta");
    if let Some(t) = ack_timeout {
        config = config.with_ack_timeout(t).expect("valid ack timeout");
    }
    let session = SessionSpec::default_scalar(first.observed[0], config)
        .expect("valid spec")
        .build();
    let mut first_pending = Some(first);
    let sampler = Box::new(move |obs: &mut [f64], tru: &mut [f64]| {
        if let Some(f) = first_pending.take() {
            obs[0] = f.observed[0];
            tru[0] = f.truth[0];
        } else {
            gen.next_into(obs, tru);
        }
    });
    (session.source, session.server, sampler)
}

fn run_over(
    transport: &mut dyn Transport,
    config: &SessionConfig,
    seed: u64,
    ack_timeout: Option<u64>,
) -> (SessionReport, ServerEndpoint, u64) {
    let (mut source, mut server, sampler) = build(seed, config.delta, ack_timeout);
    let report = Session::run_with_transport(
        config,
        transport,
        sampler,
        &mut source,
        &mut server,
        &mut (),
    );
    let syncs = server.syncs_applied();
    (report, server, syncs)
}

fn filter_bits(ep: &ServerEndpoint) -> Vec<u64> {
    kalstream_net::workload::endpoint_bits(ep)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tcp_session_is_bit_identical_to_sim_session(
        seed in 0u64..1_000,
        latency in 0u64..3,
        loss in 0u32..40,
        dup in 0u32..20,
        reorder in 0u32..30,
        jitter in 0u64..3,
        acked in any::<bool>(),
    ) {
        let config = SessionConfig {
            ticks: 60,
            delta: 0.5,
            latency,
            overhead_bytes: 28,
            loss_prob: loss as f64 / 100.0,
            loss_seed: seed.wrapping_mul(0x9E37_79B9),
            dup_prob: dup as f64 / 100.0,
            reorder_prob: reorder as f64 / 100.0,
            jitter,
        };
        // Ack recovery needs the gap to be coverable; only meaningful with
        // sequenced syncs, and exercised under every fault profile.
        let ack_timeout = acked.then_some(6);

        let mut sim = SimTransport::with_faults(
            config.latency, config.overhead_bytes, config.faults());
        let (sim_report, sim_server, sim_syncs) =
            run_over(&mut sim, &config, seed, ack_timeout);

        let mut tcp = TcpTransport::with_faults(
            config.latency, config.overhead_bytes, config.faults())
            .expect("loopback transport");
        let (tcp_report, tcp_server, tcp_syncs) =
            run_over(&mut tcp, &config, seed, ack_timeout);

        // Suppression verdicts: identical send schedule and byte volume.
        prop_assert_eq!(&sim_report.traffic, &tcp_report.traffic);
        prop_assert_eq!(&sim_report.ack_traffic, &tcp_report.ack_traffic);
        // Delivery accounting (stale drops, applied syncs) agrees.
        prop_assert_eq!(&sim_report.delivery, &tcp_report.delivery);
        prop_assert_eq!(sim_syncs, tcp_syncs);
        // Precision scoring agrees to the bit.
        prop_assert_eq!(
            sim_report.error_vs_observed.max_abs().to_bits(),
            tcp_report.error_vs_observed.max_abs().to_bits()
        );
        prop_assert_eq!(
            sim_report.error_vs_observed.violations(),
            tcp_report.error_vs_observed.violations()
        );
        // The consumer's filter converged to the same bits: state and
        // covariance both.
        prop_assert_eq!(filter_bits(&sim_server), filter_bits(&tcp_server));
        // And the transports charged identical traffic.
        prop_assert_eq!(sim.stats(), tcp.stats());
    }
}
