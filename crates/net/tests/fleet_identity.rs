//! Fleet-level bit-identity: a fleet driven over real TCP connections
//! through [`NetServer`]'s sharded pipeline converges to exactly the
//! filter state the simulator's ingest mode produces through the
//! sequential reference — reliable or lossy, lockstep or throughput mode.

use kalstream_core::{FramingSink, IngestResult, SequentialIngest};
use kalstream_net::{workload, ClientConfig, NetServer, NetServerConfig};
use kalstream_sim::{run_fleet_ingest_faulty, LinkFaults};

const OVERHEAD: usize = 8;

/// The simulator reference: the same workload through per-stream faulty
/// links into the sequential ingester.
fn reference(streams: u32, ticks: u64, faults: LinkFaults) -> IngestResult {
    let ids: Vec<u32> = (0..streams).collect();
    let mut fleet = workload::source_streams(&ids);
    let mut sink = FramingSink::new(SequentialIngest::new(workload::server_endpoints(streams)));
    run_fleet_ingest_faulty(&mut fleet, ticks, OVERHEAD, faults, &mut sink);
    sink.into_inner().finish()
}

/// The system under test: the same workload over `conns` real TCP
/// connections into a running [`NetServer`].
fn over_tcp(
    streams: u32,
    conns: usize,
    ticks: u64,
    faults: LinkFaults,
    lockstep: bool,
    shards: usize,
    batched: bool,
) -> kalstream_net::NetReport {
    over_tcp_inner(
        streams, conns, ticks, faults, lockstep, shards, batched, None,
    )
}

/// [`over_tcp`] with sequenced syncs + ack feedback enabled, lockstep.
fn over_tcp_acked(
    streams: u32,
    conns: usize,
    ticks: u64,
    ack_timeout: u64,
) -> kalstream_net::NetReport {
    over_tcp_inner(
        streams,
        conns,
        ticks,
        LinkFaults::default(),
        true,
        2,
        false,
        Some(ack_timeout),
    )
}

#[allow(clippy::too_many_arguments)]
fn over_tcp_inner(
    streams: u32,
    conns: usize,
    ticks: u64,
    faults: LinkFaults,
    lockstep: bool,
    shards: usize,
    batched: bool,
    ack_timeout: Option<u64>,
) -> kalstream_net::NetReport {
    assert_eq!(streams as usize % conns, 0);
    let per_conn = streams as usize / conns;
    let endpoints = match ack_timeout {
        Some(t) => workload::server_endpoints_acked(streams, t),
        None => workload::server_endpoints(streams),
    };
    let server = NetServer::start(
        "127.0.0.1:0",
        endpoints,
        NetServerConfig {
            shards,
            batched,
            expected_conns: conns,
            lockstep,
            ..NetServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let client_threads: Vec<_> = (0..conns)
        .map(|conn| {
            let addr = addr.clone();
            let config = ClientConfig {
                ticks,
                overhead_bytes: OVERHEAD,
                faults,
                lockstep,
                expect_status: false,
            };
            std::thread::spawn(move || {
                let rt = tokio::runtime::Builder::new_current_thread()
                    .enable_all()
                    .build()
                    .expect("runtime");
                let base = (conn * per_conn) as u64;
                let ids: Vec<u32> = (0..per_conn).map(|k| base as u32 + k as u32).collect();
                let mut fleet = match ack_timeout {
                    Some(t) => workload::source_streams_acked(&ids, t),
                    None => workload::source_streams(&ids),
                };
                rt.block_on(kalstream_net::drive_connection(
                    &addr, &mut fleet, base, &config,
                ))
                .expect("connection")
            })
        })
        .collect();
    for t in client_threads {
        t.join().expect("client thread");
    }
    server.join().expect("server")
}

fn assert_clean_and_identical(report: &kalstream_net::NetReport, reference: &IngestResult) {
    assert_eq!(report.rejected_hellos, 0);
    assert_eq!(report.total_shed(), 0, "feedback shed on a reading fleet");
    assert!(
        workload::ingest_identical(&report.ingest, reference),
        "TCP fleet state diverged from the sequential sim reference"
    );
}

#[test]
fn reliable_fleet_over_tcp_is_bit_identical_to_sim() {
    let reference = reference(12, 50, LinkFaults::default());
    for (lockstep, shards, batched) in [(true, 3, false), (false, 3, false), (false, 2, true)] {
        let report = over_tcp(12, 4, 50, LinkFaults::default(), lockstep, shards, batched);
        assert_clean_and_identical(&report, &reference);
        assert_eq!(report.ticks, 50);
    }
}

#[test]
fn lossy_fleet_over_tcp_is_bit_identical_to_sim() {
    let faults = LinkFaults {
        loss: 0.2,
        dup: 0.05,
        reorder: 0.1,
        seed: 42,
        ..LinkFaults::default()
    };
    let reference = reference(12, 80, faults);
    for lockstep in [true, false] {
        let report = over_tcp(12, 3, 80, faults, lockstep, 3, false);
        assert_clean_and_identical(&report, &reference);
    }
}

#[test]
fn lockstep_fleet_receives_acks() {
    // Sequenced feedback flows back over the sockets: in lockstep mode
    // every ack is routed before the tick is acknowledged, so none shed.
    let report = over_tcp_acked(6, 2, 40, 8);
    let sent: u64 = report.conns.iter().map(|c| c.feedback_sent).sum();
    let polled: u64 = report.ingest.shards.iter().map(|s| s.feedback_out).sum();
    assert!(polled > 0, "pipeline polled no feedback");
    assert_eq!(sent, polled, "every polled payload reached a conn queue");
    assert_eq!(report.total_shed(), 0);
    // And the snapshot exposes the per-conn gauges the obs layer gates on.
    let snap = report.snapshot();
    assert_eq!(snap.counter("net.shed"), Some(0));
    assert_eq!(snap.counter("net.conns"), Some(2));
    assert!(snap.gauge("net.conn.0.queue_high_water").is_some());
}
