//! [`ElasticIngest`]: the loop closure between the controller and a
//! resizable ingester.
//!
//! The driver sits on the tick path. Each tick it counts the offered
//! frames per shard (a pure function of the traffic and the live
//! assignment — no clocks), forwards the tick, and every `sample_every`
//! ticks hands the controller a [`LoadSample`]. Non-hold decisions are
//! executed immediately through [`ResizableIngest::reassign`], which
//! quiesces at the tick barrier — so a resize can only ever land *between*
//! ticks, never inside one, and the run stays bit-identical to an
//! unresized one.

use kalstream_core::{FrameDecoder, ResizableIngest, ShardAssignment, SnapshotSource, TickIngest};
use kalstream_obs::{Instrument, Scope};

use crate::controller::{ControllerConfig, Decision, ElasticController, LoadSample};

/// Tuning for [`ElasticIngest`].
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// The controller policy.
    pub controller: ControllerConfig,
    /// Ticks per observation window. Must be ≥ 1.
    pub sample_every: u64,
    /// Feed live queue depths into the controller. Depths are
    /// timing-dependent, so experiments that gate exact decision counts
    /// turn this off; servers under real load leave it on.
    pub use_queue_signal: bool,
}

impl ElasticConfig {
    /// A config sampling every `sample_every` ticks with the queue signal
    /// enabled.
    pub fn new(controller: ControllerConfig, sample_every: u64) -> Self {
        assert!(
            sample_every >= 1,
            "sample window must cover at least 1 tick"
        );
        ElasticConfig {
            controller,
            sample_every,
            use_queue_signal: true,
        }
    }
}

/// Which way a resize went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeKind {
    /// More shards.
    Grow,
    /// Fewer shards.
    Shrink,
    /// Same count, new placement salt.
    Rebalance,
}

/// One executed resize, for experiment tables and artifacts.
#[derive(Debug, Clone, Copy)]
pub struct ResizeEvent {
    /// Tick at whose barrier the resize executed.
    pub tick: u64,
    /// Grow, shrink, or rebalance.
    pub kind: ResizeKind,
    /// Assignment before.
    pub from: ShardAssignment,
    /// Assignment after.
    pub to: ShardAssignment,
    /// Wall-clock ingest stall paid at the drain barrier. Reported in
    /// artifacts only, never in deterministic tables.
    pub stall: std::time::Duration,
}

/// A resizable ingester with the controller loop closed around it.
pub struct ElasticIngest<I: ResizableIngest> {
    inner: I,
    controller: ElasticController,
    sample_every: u64,
    use_queue_signal: bool,
    decoder: FrameDecoder,
    /// Offered frames per live shard, accumulated over the open window.
    offered: Vec<u64>,
    window_ticks: u64,
    ticks: u64,
    /// Last salt handed out for a rebalance, so each reshuffle is new.
    salt_epoch: u64,
    events: Vec<ResizeEvent>,
}

impl<I: ResizableIngest> ElasticIngest<I> {
    /// Closes the loop around `inner`. The controller starts believing
    /// whatever shape `inner` is actually in.
    ///
    /// # Panics
    /// Panics when `inner`'s shard count lies outside the controller's
    /// `[min_shards, max_shards]` range.
    pub fn new(inner: I, config: ElasticConfig) -> Self {
        assert!(
            config.sample_every >= 1,
            "sample window must cover at least 1 tick"
        );
        let assignment = inner.assignment();
        let controller = ElasticController::new(config.controller, assignment.shards);
        ElasticIngest {
            inner,
            controller,
            sample_every: config.sample_every,
            use_queue_signal: config.use_queue_signal,
            decoder: FrameDecoder::new(),
            offered: vec![0; assignment.shards],
            window_ticks: 0,
            ticks: 0,
            salt_epoch: assignment.salt,
            events: Vec::new(),
        }
    }

    /// Ticks ingested through the driver.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The controller (stats, believed shape).
    pub fn controller(&self) -> &ElasticController {
        &self.controller
    }

    /// Every resize executed so far, in order.
    pub fn events(&self) -> &[ResizeEvent] {
        &self.events
    }

    /// Worst ingest stall paid at any resize barrier so far, in
    /// milliseconds. Wall-clock — artifact material, not table material.
    pub fn max_stall_ms(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.stall.as_secs_f64() * 1e3)
            .fold(0.0, f64::max)
    }

    /// The wrapped ingester.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Mutable access to the wrapped ingester (flush, snapshot hooks).
    pub fn inner_mut(&mut self) -> &mut I {
        &mut self.inner
    }

    /// Unwraps the ingester (to call its `finish`).
    pub fn into_inner(self) -> I {
        self.inner
    }

    /// Closes the observation window: samples the controller and executes
    /// its decision at the current tick barrier.
    fn sample_and_act(&mut self) {
        let depths = if self.use_queue_signal {
            self.inner.queue_depths()
        } else {
            Vec::new()
        };
        let decision = self.controller.observe(&LoadSample {
            per_shard_offered: &self.offered,
            ticks: self.window_ticks,
            queue_depths: &depths,
            busy_frac: None,
        });
        let from = self.inner.assignment();
        let target = match decision {
            Decision::Hold => None,
            Decision::Grow { to } => Some((
                ResizeKind::Grow,
                ShardAssignment {
                    shards: to,
                    salt: from.salt,
                },
            )),
            Decision::Shrink { to } => Some((
                ResizeKind::Shrink,
                ShardAssignment {
                    shards: to,
                    salt: from.salt,
                },
            )),
            Decision::Rebalance => {
                self.salt_epoch += 1;
                Some((
                    ResizeKind::Rebalance,
                    ShardAssignment {
                        shards: from.shards,
                        salt: self.salt_epoch,
                    },
                ))
            }
        };
        if let Some((kind, to)) = target {
            let transition = self.inner.reassign(to);
            // The executor has the final word (the sequential reference
            // refuses); believe what actually happened.
            let live = self.inner.assignment();
            self.controller.sync_shards(live.shards);
            self.events.push(ResizeEvent {
                tick: self.ticks,
                kind,
                from: transition.from,
                to: transition.to,
                stall: transition.stall,
            });
        }
        let live_shards = self.inner.assignment().shards;
        self.offered.clear();
        self.offered.resize(live_shards, 0);
        self.window_ticks = 0;
    }
}

impl<I: ResizableIngest> TickIngest for ElasticIngest<I> {
    fn ingest_tick(&mut self, wire: &[u8]) {
        let assignment = self.inner.assignment();
        let offered = &mut self.offered;
        self.decoder.for_each_frame(wire, |frame| {
            offered[assignment.route(frame.stream_id)] += 1;
        });
        self.inner.ingest_tick(wire);
        self.ticks += 1;
        self.window_ticks += 1;
        if self.window_ticks >= self.sample_every {
            self.sample_and_act();
        }
    }
}

impl<I: ResizableIngest + SnapshotSource> SnapshotSource for ElasticIngest<I> {
    fn snapshot_states(&mut self) -> Vec<(u32, kalstream_core::EndpointState)> {
        self.inner.snapshot_states()
    }
}

impl<I: ResizableIngest> Instrument for ElasticIngest<I> {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.observe("controller", self.controller.stats());
        scope.counter("resizes", self.events.len() as u64);
        scope.gauge("max_stall_ms", self.max_stall_ms());
        scope.gauge("shards", self.inner.assignment().shards as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_core::{
        FrameBatch, IngestPipeline, ProtocolConfig, SequentialIngest, ServerEndpoint, SessionSpec,
        StreamSession,
    };
    use kalstream_sim::Producer;

    /// `n` scalar sessions and a framed log whose per-tick message volume
    /// follows `active(t)`: only the first `active(t)` sources get a
    /// volatile signal that tick (the rest see a constant and suppress), so
    /// offered load swings with `active` while every stream stays in
    /// lockstep.
    fn record_swing_log(
        n: u32,
        ticks: u64,
        active: impl Fn(u64) -> u32,
    ) -> (Vec<(u32, ServerEndpoint)>, Vec<Vec<u8>>) {
        let mut sources = Vec::new();
        let mut servers = Vec::new();
        for id in 0..n {
            let config = ProtocolConfig::new(0.2).unwrap();
            let StreamSession { source, server } =
                SessionSpec::default_scalar(0.0, config).unwrap().build();
            sources.push((id, source));
            servers.push((id, server));
        }
        let mut log = Vec::new();
        for t in 0..ticks {
            let hot = active(t);
            let mut batch = FrameBatch::new();
            for (id, source) in sources.iter_mut() {
                let v = if *id < hot {
                    ((t as f64) * 1.3 + *id as f64).sin() * 10.0
                } else {
                    0.0
                };
                if let Some(payload) = source.observe(t, &[v]) {
                    batch.push_raw(*id, &payload);
                }
            }
            log.push(batch.as_bytes().to_vec());
        }
        (servers, log)
    }

    fn filter_bits(ep: &ServerEndpoint) -> Vec<u64> {
        let f = ep.filter();
        f.state()
            .iter()
            .map(|v| v.to_bits())
            .chain(f.covariance().as_slice().iter().map(|v| v.to_bits()))
            .collect()
    }

    fn elastic_config() -> ElasticConfig {
        let mut controller = ControllerConfig::new(1, 4, 3.0);
        controller.grow_after = 2;
        controller.shrink_after = 2;
        controller.cooldown = 1;
        let mut config = ElasticConfig::new(controller, 5);
        config.use_queue_signal = false; // deterministic decisions
        config
    }

    #[test]
    fn controller_tracks_a_load_swing_and_stays_bit_identical() {
        // Step load: quiet → all 12 streams hot → quiet again.
        let active = |t: u64| -> u32 {
            if (40..120).contains(&t) {
                12
            } else {
                1
            }
        };
        let (servers, log) = record_swing_log(12, 160, active);
        let mut seq = SequentialIngest::new(servers.clone());
        for tick in &log {
            seq.ingest_tick(tick);
        }
        let seq_result = seq.finish();
        assert!(seq_result.total_messages() > 0);

        let mut elastic =
            ElasticIngest::new(IngestPipeline::start(1, servers.clone()), elastic_config());
        for tick in &log {
            elastic.ingest_tick(tick);
        }
        let stats = elastic.controller().stats().clone();
        assert!(stats.grows >= 1, "hot phase must grow: {stats:?}");
        assert!(stats.shrinks >= 1, "quiet tail must shrink: {stats:?}");
        let result = elastic.into_inner().finish();
        assert_eq!(result.total_messages(), seq_result.total_messages());
        for ((id_a, a), (id_b, b)) in result.endpoints.iter().zip(seq_result.endpoints.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(filter_bits(a), filter_bits(b), "stream {id_a} diverged");
        }
    }

    #[test]
    fn decisions_are_reproducible_run_to_run() {
        let active = |t: u64| -> u32 {
            if t >= 30 {
                12
            } else {
                1
            }
        };
        let run = || {
            let (servers, log) = record_swing_log(12, 90, active);
            let mut elastic =
                ElasticIngest::new(IngestPipeline::start(1, servers), elastic_config());
            for tick in &log {
                elastic.ingest_tick(tick);
            }
            let events: Vec<(u64, usize, usize)> = elastic
                .events()
                .iter()
                .map(|e| (e.tick, e.from.shards, e.to.shards))
                .collect();
            elastic.into_inner().finish();
            events
        };
        let first = run();
        assert!(!first.is_empty());
        assert_eq!(first, run(), "same traffic must produce same decisions");
    }

    #[test]
    fn sequential_reference_refuses_resizes_gracefully() {
        let active = |_t: u64| -> u32 { 6 };
        let (servers, log) = record_swing_log(6, 40, active);
        let mut elastic = ElasticIngest::new(SequentialIngest::new(servers), elastic_config());
        for tick in &log {
            elastic.ingest_tick(tick);
        }
        // Decisions may fire, but the executor stays at one pseudo-shard
        // and the controller's belief follows it.
        assert_eq!(elastic.controller().shards(), 1);
        for event in elastic.events() {
            assert_eq!(event.from.shards, event.to.shards);
        }
    }

    #[test]
    fn obs_export_names_are_stable() {
        let (servers, _) = record_swing_log(2, 0, |_| 0);
        let elastic = ElasticIngest::new(IngestPipeline::start(1, servers), elastic_config());
        let mut registry = kalstream_obs::Registry::new();
        registry.observe("elastic", &elastic);
        let snap = registry.snapshot();
        assert!(snap.counter("elastic.controller.grows").is_some());
        assert!(snap.counter("elastic.resizes").is_some());
        assert!(snap.gauge("elastic.shards").is_some());
        elastic.into_inner().finish();
    }
}
