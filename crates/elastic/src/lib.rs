//! # kalstream-elastic
//!
//! Closed-loop elastic shard scaling for the ingest pipeline — the paper's
//! "self-managing DBMS" behavior, in the style of DRS-style dynamic
//! resource scheduling for stream systems (Fu et al.).
//!
//! Two layers:
//!
//! * [`ElasticController`] — the pure decision function. It consumes
//!   [`LoadSample`]s (offered frames per shard per window, plus live queue
//!   depth / busy-fraction signals when available) and emits
//!   [`Decision`]s: grow, shrink, rebalance, or hold. A target-utilization
//!   band with hysteresis (consecutive-sample runs) and a post-action
//!   cooldown keeps it from thrashing under sawtooth load.
//! * [`ElasticIngest`] — the driver that closes the loop around any
//!   [`kalstream_core::ResizableIngest`]: it counts each tick's offered
//!   frames per shard, samples the controller on a cadence, and executes
//!   its decisions through `reassign` — which quiesces at a tick barrier,
//!   so every resize is provably invisible to filter arithmetic.
//!
//! Determinism: decisions driven purely by offered load are a function of
//! the traffic, so experiment canaries can gate exact decision counts.
//! The queue-depth signal is timing-dependent; drivers that need exact
//! reproducibility disable it via [`ElasticConfig::use_queue_signal`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod controller;
mod driver;

pub use controller::{ControllerConfig, ControllerStats, Decision, ElasticController, LoadSample};
pub use driver::{ElasticConfig, ElasticIngest, ResizeEvent, ResizeKind};
