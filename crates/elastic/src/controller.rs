//! The elastic scaling decision function: target-utilization band,
//! hysteresis, cooldown, and an imbalance-triggered rebalancer.

use kalstream_obs::{Instrument, Scope};

/// Tuning for [`ElasticController`].
///
/// Utilization is *offered load over capacity*: with `per_tick` frames
/// arriving per tick across the fleet, utilization is
/// `per_tick / (shards × capacity_per_shard)`. The controller holds it
/// inside `[low_utilization, high_utilization]` by resizing toward the
/// band's midpoint, and only acts after a watermark has been breached for
/// a configured run of consecutive samples (hysteresis), never during the
/// post-action cooldown (anti-thrash).
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Smallest fleet the controller will shrink to. Always ≥ 1.
    pub min_shards: usize,
    /// Largest fleet the controller will grow to.
    pub max_shards: usize,
    /// Frames per tick one shard absorbs at utilization 1.0 — the
    /// operator's capacity model, and the only unit the controller needs.
    pub capacity_per_shard: f64,
    /// Shrink watermark: utilization below this arms the shrink run.
    pub low_utilization: f64,
    /// Grow watermark: utilization above this arms the grow run.
    pub high_utilization: f64,
    /// Consecutive over-watermark samples before a grow fires.
    pub grow_after: u32,
    /// Consecutive under-watermark samples before a shrink fires.
    pub shrink_after: u32,
    /// Samples to hold after any action, regardless of signals.
    pub cooldown: u32,
    /// Max-shard/mean-shard offered-load ratio that arms the rebalancer;
    /// `0.0` disables rebalancing.
    pub rebalance_imbalance: f64,
    /// Consecutive imbalanced samples before a rebalance fires.
    pub rebalance_after: u32,
    /// Job-queue capacity per shard, for turning live queue depths into a
    /// pressure fraction (the sharded pipeline's bound is 64).
    pub queue_capacity: usize,
}

impl ControllerConfig {
    /// A conservative default band over `[min_shards, max_shards]` with the
    /// given capacity model: grow above 0.85 after 2 samples, shrink below
    /// 0.5 after 3, cooldown 2, rebalancer disabled.
    ///
    /// # Panics
    /// Panics when `min_shards` is 0, `max_shards < min_shards`, or
    /// `capacity_per_shard` is not positive.
    pub fn new(min_shards: usize, max_shards: usize, capacity_per_shard: f64) -> Self {
        assert!(min_shards >= 1, "need at least one shard");
        assert!(max_shards >= min_shards, "max_shards below min_shards");
        assert!(
            capacity_per_shard > 0.0,
            "capacity_per_shard must be positive"
        );
        ControllerConfig {
            min_shards,
            max_shards,
            capacity_per_shard,
            low_utilization: 0.5,
            high_utilization: 0.85,
            grow_after: 2,
            shrink_after: 3,
            cooldown: 2,
            rebalance_imbalance: 0.0,
            rebalance_after: 0,
            queue_capacity: 64,
        }
    }
}

/// One observation window handed to [`ElasticController::observe`].
#[derive(Debug, Clone, Copy)]
pub struct LoadSample<'a> {
    /// Frames offered to each live shard over the window — the
    /// deterministic load signal (a pure function of traffic + routing).
    pub per_shard_offered: &'a [u64],
    /// Window length in ticks. Must be ≥ 1.
    pub ticks: u64,
    /// Live job-queue depths per shard, when the driver has them; empty
    /// when unavailable. Timing-dependent — see the crate docs.
    pub queue_depths: &'a [usize],
    /// Fraction of the window the busiest shard spent on CPU, when the
    /// driver can measure it (wall-clock derived; `None` otherwise).
    pub busy_frac: Option<f64>,
}

/// What the controller wants done after a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Stay at the current shape.
    Hold,
    /// Grow to `to` shards (always strictly more than current).
    Grow {
        /// Target shard count.
        to: usize,
    },
    /// Shrink to `to` shards (always strictly fewer than current).
    Shrink {
        /// Target shard count.
        to: usize,
    },
    /// Keep the shard count but reshuffle stream placement (new salt).
    Rebalance,
}

/// Decision counters and last-seen signal gauges, exported through obs so
/// a dashboard — and `check_regression` — can see what the controller did.
#[derive(Debug, Clone, Default)]
pub struct ControllerStats {
    /// Samples observed.
    pub samples: u64,
    /// Grow decisions emitted.
    pub grows: u64,
    /// Shrink decisions emitted.
    pub shrinks: u64,
    /// Rebalance decisions emitted.
    pub rebalances: u64,
    /// Holds because signals were in band (or runs not yet satisfied).
    pub holds: u64,
    /// Holds forced by the post-action cooldown.
    pub cooldown_holds: u64,
    /// Utilization seen at the last sample.
    pub last_utilization: f64,
    /// Max/mean offered-load imbalance seen at the last sample.
    pub last_imbalance: f64,
    /// Shard count the controller currently believes is live.
    pub shards: usize,
}

impl Instrument for ControllerStats {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("samples", self.samples);
        scope.counter("grows", self.grows);
        scope.counter("shrinks", self.shrinks);
        scope.counter("rebalances", self.rebalances);
        scope.counter("holds", self.holds);
        scope.counter("cooldown_holds", self.cooldown_holds);
        scope.gauge("last_utilization", self.last_utilization);
        scope.gauge("last_imbalance", self.last_imbalance);
        scope.gauge("shards", self.shards as f64);
    }
}

/// The closed-loop scaling policy. Pure arithmetic — no clocks, no I/O —
/// so identical samples always produce identical decisions.
#[derive(Debug, Clone)]
pub struct ElasticController {
    config: ControllerConfig,
    shards: usize,
    high_run: u32,
    low_run: u32,
    imbalance_run: u32,
    cooldown_left: u32,
    stats: ControllerStats,
}

impl ElasticController {
    /// A controller believing `initial_shards` are live.
    ///
    /// # Panics
    /// Panics when `initial_shards` is outside `[min_shards, max_shards]`
    /// or the config is inconsistent (see [`ControllerConfig::new`]).
    pub fn new(config: ControllerConfig, initial_shards: usize) -> Self {
        assert!(config.min_shards >= 1, "need at least one shard");
        assert!(
            config.max_shards >= config.min_shards,
            "max_shards below min_shards"
        );
        assert!(
            config.capacity_per_shard > 0.0,
            "capacity_per_shard must be positive"
        );
        assert!(
            config.low_utilization <= config.high_utilization,
            "utilization band inverted"
        );
        assert!(
            (config.min_shards..=config.max_shards).contains(&initial_shards),
            "initial_shards outside [min_shards, max_shards]"
        );
        let stats = ControllerStats {
            shards: initial_shards,
            ..ControllerStats::default()
        };
        ElasticController {
            config,
            shards: initial_shards,
            high_run: 0,
            low_run: 0,
            imbalance_run: 0,
            cooldown_left: 0,
            stats,
        }
    }

    /// Shard count the controller believes is live.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Decision counters and last-seen gauges.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The configuration this controller runs.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Tells the controller what shape is *actually* live after a decision
    /// was executed — the executor may clamp or refuse (the sequential
    /// reference is un-resizable). Resets nothing else.
    pub fn sync_shards(&mut self, live: usize) {
        self.shards = live.clamp(self.config.min_shards, self.config.max_shards);
        self.stats.shards = self.shards;
    }

    /// Shard count that would put the offered load at the middle of the
    /// utilization band.
    fn target_for(&self, per_tick: f64) -> usize {
        let mid = (self.config.low_utilization + self.config.high_utilization) / 2.0;
        let denominator = (self.config.capacity_per_shard * mid).max(f64::MIN_POSITIVE);
        let ideal = (per_tick / denominator).ceil();
        let ideal = if ideal.is_finite() && ideal >= 1.0 {
            ideal as usize
        } else {
            1
        };
        ideal.clamp(self.config.min_shards, self.config.max_shards)
    }

    /// Consumes one observation window and decides. The caller is expected
    /// to execute non-[`Decision::Hold`] decisions, then report the applied
    /// shape via [`ElasticController::sync_shards`].
    ///
    /// # Panics
    /// Panics when the sample's `ticks` is 0.
    pub fn observe(&mut self, sample: &LoadSample<'_>) -> Decision {
        assert!(
            sample.ticks >= 1,
            "sample window must cover at least 1 tick"
        );
        self.stats.samples += 1;

        let total: u64 = sample.per_shard_offered.iter().sum();
        let per_tick = total as f64 / sample.ticks as f64;
        let offered_util = per_tick / (self.shards as f64 * self.config.capacity_per_shard);
        let queue_pressure = sample
            .queue_depths
            .iter()
            .copied()
            .max()
            .map(|d| d as f64 / self.config.queue_capacity.max(1) as f64)
            .unwrap_or(0.0);
        let utilization = offered_util
            .max(queue_pressure)
            .max(sample.busy_frac.unwrap_or(0.0));
        let max_shard = sample.per_shard_offered.iter().copied().max().unwrap_or(0);
        let mean_shard = total as f64 / sample.per_shard_offered.len().max(1) as f64;
        let imbalance = if total == 0 {
            1.0
        } else {
            max_shard as f64 / mean_shard
        };
        self.stats.last_utilization = utilization;
        self.stats.last_imbalance = imbalance;

        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            self.stats.cooldown_holds += 1;
            return Decision::Hold;
        }

        if utilization > self.config.high_utilization {
            self.high_run = self.high_run.saturating_add(1);
            self.low_run = 0;
        } else if utilization < self.config.low_utilization {
            self.low_run = self.low_run.saturating_add(1);
            self.high_run = 0;
        } else {
            self.high_run = 0;
            self.low_run = 0;
        }
        let rebalancing = self.config.rebalance_imbalance > 0.0 && self.shards > 1;
        if rebalancing && imbalance > self.config.rebalance_imbalance {
            self.imbalance_run = self.imbalance_run.saturating_add(1);
        } else {
            self.imbalance_run = 0;
        }

        if self.high_run >= self.config.grow_after && self.shards < self.config.max_shards {
            let to = self
                .target_for(per_tick)
                .max(self.shards + 1)
                .min(self.config.max_shards);
            self.act();
            self.shards = to;
            self.stats.shards = to;
            self.stats.grows += 1;
            return Decision::Grow { to };
        }
        if self.low_run >= self.config.shrink_after && self.shards > self.config.min_shards {
            let to = self
                .target_for(per_tick)
                .min(self.shards - 1)
                .max(self.config.min_shards);
            self.act();
            self.shards = to;
            self.stats.shards = to;
            self.stats.shrinks += 1;
            return Decision::Shrink { to };
        }
        if rebalancing && self.imbalance_run >= self.config.rebalance_after.max(1) {
            self.act();
            self.stats.rebalances += 1;
            return Decision::Rebalance;
        }
        self.stats.holds += 1;
        Decision::Hold
    }

    /// Common bookkeeping for any non-hold decision: start the cooldown and
    /// restart every hysteresis run.
    fn act(&mut self) {
        self.cooldown_left = self.config.cooldown;
        self.high_run = 0;
        self.low_run = 0;
        self.imbalance_run = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ControllerConfig {
        // capacity 10 frames/tick/shard, band [0.5, 0.85], grow after 2,
        // shrink after 3, cooldown 2.
        ControllerConfig::new(1, 4, 10.0)
    }

    fn observe(ctl: &mut ElasticController, per_shard: &[u64], ticks: u64) -> Decision {
        ctl.observe(&LoadSample {
            per_shard_offered: per_shard,
            ticks,
            queue_depths: &[],
            busy_frac: None,
        })
    }

    #[test]
    fn grow_needs_a_sustained_run_then_fires_at_target() {
        let mut ctl = ElasticController::new(config(), 1);
        // 30 frames/tick at capacity 10 → utilization 3.0, way over band.
        assert_eq!(observe(&mut ctl, &[30], 1), Decision::Hold, "run of 1");
        // Second consecutive high sample: fire, sized to the band midpoint
        // (30 / (10 × 0.675) = 4.4 → ceil 5 → clamped to max 4).
        assert_eq!(observe(&mut ctl, &[30], 1), Decision::Grow { to: 4 });
        assert_eq!(ctl.shards(), 4);
        assert_eq!(ctl.stats().grows, 1);
    }

    #[test]
    fn sawtooth_load_never_resizes() {
        let mut ctl = ElasticController::new(config(), 2);
        // Alternating over/under the band every sample: neither run ever
        // reaches its threshold, so hysteresis holds the shape.
        for _ in 0..20 {
            assert_eq!(observe(&mut ctl, &[20, 20], 1), Decision::Hold);
            assert_eq!(observe(&mut ctl, &[1, 1], 1), Decision::Hold);
        }
        assert_eq!(ctl.shards(), 2);
        assert_eq!(ctl.stats().grows + ctl.stats().shrinks, 0);
    }

    #[test]
    fn cooldown_blocks_back_to_back_actions() {
        let mut ctl = ElasticController::new(config(), 1);
        assert_eq!(observe(&mut ctl, &[12], 1), Decision::Hold);
        assert!(matches!(observe(&mut ctl, &[12], 1), Decision::Grow { .. }));
        // Still hot, but the next `cooldown` samples must hold.
        assert_eq!(observe(&mut ctl, &[40], 1), Decision::Hold);
        assert_eq!(observe(&mut ctl, &[40], 1), Decision::Hold);
        assert_eq!(ctl.stats().cooldown_holds, 2);
        // After cooldown the grow run restarts from zero.
        assert_eq!(observe(&mut ctl, &[40], 1), Decision::Hold);
        assert!(matches!(observe(&mut ctl, &[40], 1), Decision::Grow { .. }));
    }

    #[test]
    fn shrinks_step_down_to_min_one_shard() {
        let mut ctl = ElasticController::new(config(), 2);
        // 2 frames/tick over 2 shards at capacity 10 → utilization 0.1.
        for _ in 0..2 {
            assert_eq!(observe(&mut ctl, &[1, 1], 1), Decision::Hold);
        }
        assert_eq!(observe(&mut ctl, &[1, 1], 1), Decision::Shrink { to: 1 });
        assert_eq!(ctl.shards(), 1);
        // At min there is nothing left to shrink; quiet samples hold.
        for _ in 0..10 {
            assert_eq!(observe(&mut ctl, &[0], 1), Decision::Hold);
        }
        assert_eq!(ctl.shards(), 1);
        assert_eq!(ctl.stats().shrinks, 1);
    }

    #[test]
    fn rebalance_fires_only_when_enabled_and_sustained() {
        let mut skewed = config();
        skewed.rebalance_imbalance = 1.5;
        skewed.rebalance_after = 2;
        let mut ctl = ElasticController::new(skewed, 2);
        // All load on one shard (imbalance 2.0) but utilization in band:
        // 12/tick over 2 shards at capacity 10 → 0.6.
        assert_eq!(observe(&mut ctl, &[12, 0], 1), Decision::Hold);
        assert_eq!(observe(&mut ctl, &[12, 0], 1), Decision::Rebalance);
        assert_eq!(ctl.stats().rebalances, 1);

        // Disabled by default: the same skew never fires.
        let mut ctl = ElasticController::new(config(), 2);
        for _ in 0..10 {
            assert_eq!(observe(&mut ctl, &[12, 0], 1), Decision::Hold);
        }
    }

    #[test]
    fn queue_pressure_alone_can_trigger_growth() {
        let mut ctl = ElasticController::new(config(), 1);
        // Offered load is tiny, but the live queue is nearly full — the
        // queue-depth signal must be able to demand capacity on its own.
        let pressured = LoadSample {
            per_shard_offered: &[1],
            ticks: 1,
            queue_depths: &[60],
            busy_frac: None,
        };
        assert_eq!(ctl.observe(&pressured), Decision::Hold);
        assert_eq!(ctl.observe(&pressured), Decision::Grow { to: 2 });
    }

    #[test]
    fn sync_shards_overrides_belief_after_refused_resize() {
        let mut ctl = ElasticController::new(config(), 1);
        observe(&mut ctl, &[30], 1);
        assert!(matches!(observe(&mut ctl, &[30], 1), Decision::Grow { .. }));
        // Executor could not grow (e.g. sequential reference): belief must
        // track reality, clamped into the configured range.
        ctl.sync_shards(1);
        assert_eq!(ctl.shards(), 1);
    }
}
