//! Store-level crash/recover cycles: kill a durable ingester after every
//! possible tick, recover from disk, and demand bit-identity with an
//! uncrashed reference — plus torn-tail and corrupt-snapshot fallbacks.

use kalstream_core::frame::FrameBatch;
use kalstream_core::wire::{SyncMessage, WireMessage};
use kalstream_core::{ProtocolConfig, SequentialIngest, ServerEndpoint, SessionSpec};
use kalstream_durable::{DurableIngest, DurableStore};
use kalstream_linalg::{Matrix, Vector};

const STREAMS: u32 = 6;
const TICKS: u64 = 24;
const SNAPSHOT_EVERY: u64 = 5;

fn endpoints() -> Vec<(u32, ServerEndpoint)> {
    (0..STREAMS)
        .map(|id| {
            let config = ProtocolConfig::new(0.5).expect("valid delta");
            let server = SessionSpec::default_scalar(id as f64 * 0.1, config)
                .expect("valid spec")
                .build()
                .server;
            (id, server)
        })
        .collect()
}

/// Deterministic synthetic traffic: one framed batch per tick, a sparse
/// mix of sequenced state syncs (so seq/ack bookkeeping is exercised) with
/// some quiet ticks (predict-only, empty batches).
fn traffic() -> Vec<Vec<u8>> {
    let mut seqs = vec![0u64; STREAMS as usize];
    (0..TICKS)
        .map(|tick| {
            let mut batch = FrameBatch::new();
            for id in 0..STREAMS {
                if (tick * 7 + id as u64 * 13).is_multiple_of(3) {
                    seqs[id as usize] += 1;
                    let v = (tick as f64 * 0.05 + id as f64).sin();
                    let wire = WireMessage::Sync {
                        seq: Some(seqs[id as usize]),
                        msg: SyncMessage::State {
                            x: Vector::from_slice(&[v]),
                            p: Matrix::scalar(1, 0.3),
                        },
                    }
                    .encode();
                    batch.push_raw(id, &wire);
                }
            }
            batch.into_buffer().to_vec()
        })
        .collect()
}

/// Per-stream fingerprint: id, state bits, covariance bits, last seq,
/// syncs applied, staleness.
type FleetBits = Vec<(u32, Vec<u64>, Vec<u64>, u64, u64, u64)>;

/// Bit-level fingerprint of a fleet: per stream, state and covariance bits
/// plus the protocol bookkeeping that steers future behaviour.
fn fleet_bits(endpoints: &[(u32, ServerEndpoint)]) -> FleetBits {
    endpoints
        .iter()
        .map(|(id, ep)| {
            (
                *id,
                ep.filter()
                    .state()
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
                ep.filter()
                    .covariance()
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
                ep.last_seq(),
                ep.syncs_applied(),
                ep.staleness(),
            )
        })
        .collect()
}

fn reference_bits(ticks: &[Vec<u8>]) -> FleetBits {
    let mut seq = SequentialIngest::new(endpoints());
    for wire in ticks {
        seq.ingest_tick(wire);
    }
    fleet_bits(&seq.finish().endpoints)
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kalstream-durable-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs a durable ingester up to `kill_tick`, drops it cold (process-death
/// stand-in: all in-memory state gone), recovers from the directory alone,
/// finishes the run, and returns the final fleet bits.
fn crash_recover_finish(dir: &std::path::Path, ticks: &[Vec<u8>], kill_tick: u64) -> FleetBits {
    let store = DurableStore::open(dir).expect("open store");
    let mut durable = DurableIngest::new(SequentialIngest::new(endpoints()), store, SNAPSHOT_EVERY)
        .expect("genesis snapshot");
    for wire in &ticks[..kill_tick as usize] {
        durable.try_ingest_tick(wire).expect("append + apply");
    }
    drop(durable); // crash: every in-memory endpoint is gone

    let mut store = DurableStore::open(dir).expect("reopen store");
    let rec = store
        .recover()
        .expect("recover I/O")
        .expect("a genesis snapshot always exists");
    assert!(
        rec.snapshot_ticks <= kill_tick,
        "snapshot barrier cannot pass the kill point"
    );
    let mut inner = SequentialIngest::new(rec.endpoints().expect("rebuild endpoints"));
    rec.replay_into(&mut inner);
    assert_eq!(rec.next_tick(), kill_tick, "replay reaches the kill point");
    let mut durable = DurableIngest::resume(inner, store, SNAPSHOT_EVERY, rec.next_tick())
        .expect("compaction snapshot");
    for wire in &ticks[kill_tick as usize..] {
        durable.try_ingest_tick(wire).expect("append + apply");
    }
    let (inner, _store) = durable.into_parts();
    fleet_bits(&inner.finish().endpoints)
}

#[test]
fn kill_at_every_tick_recovers_bit_identically() {
    let ticks = traffic();
    let reference = reference_bits(&ticks);
    let dir = tmp_dir("every-tick");
    for kill_tick in 0..=TICKS {
        let _ = std::fs::remove_dir_all(&dir);
        let recovered = crash_recover_finish(&dir, &ticks, kill_tick);
        assert_eq!(
            recovered, reference,
            "kill after tick {kill_tick}: recovered fleet diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_crash_recovers_bit_identically() {
    // Crash, recover, crash again mid-replay-shadowed region, recover again.
    let ticks = traffic();
    let reference = reference_bits(&ticks);
    let dir = tmp_dir("double");
    let _ = std::fs::remove_dir_all(&dir);

    let store = DurableStore::open(&dir).expect("open");
    let mut durable = DurableIngest::new(SequentialIngest::new(endpoints()), store, SNAPSHOT_EVERY)
        .expect("genesis");
    for wire in &ticks[..13] {
        durable.try_ingest_tick(wire).expect("tick");
    }
    drop(durable); // first crash

    let mut store = DurableStore::open(&dir).expect("reopen");
    let rec = store.recover().expect("io").expect("snapshot");
    let mut inner = SequentialIngest::new(rec.endpoints().expect("rebuild"));
    rec.replay_into(&mut inner);
    let mut durable =
        DurableIngest::resume(inner, store, SNAPSHOT_EVERY, rec.next_tick()).expect("resume");
    for wire in &ticks[13..17] {
        durable.try_ingest_tick(wire).expect("tick");
    }
    drop(durable); // second crash

    let mut store = DurableStore::open(&dir).expect("reopen 2");
    let rec = store.recover().expect("io").expect("snapshot");
    let mut inner = SequentialIngest::new(rec.endpoints().expect("rebuild"));
    rec.replay_into(&mut inner);
    assert_eq!(rec.next_tick(), 17);
    for wire in &ticks[17..] {
        inner.ingest_tick(wire);
    }
    assert_eq!(fleet_bits(&inner.finish().endpoints), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_discarded_and_refed_ticks_reconverge() {
    let ticks = traffic();
    let reference = reference_bits(&ticks);
    let dir = tmp_dir("torn");
    let _ = std::fs::remove_dir_all(&dir);

    let store = DurableStore::open(&dir).expect("open");
    let mut durable = DurableIngest::new(SequentialIngest::new(endpoints()), store, SNAPSHOT_EVERY)
        .expect("genesis");
    for wire in &ticks[..13] {
        durable.try_ingest_tick(wire).expect("tick");
    }
    drop(durable);

    // Tear the open segment's tail: chop bytes off the last record, as a
    // crash mid-write would.
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("wal-"))
        .collect();
    segments.sort();
    let tail = segments.last().expect("open segment exists");
    let bytes = std::fs::read(tail).unwrap();
    std::fs::write(tail, &bytes[..bytes.len() - 3]).unwrap();

    let mut store = DurableStore::open(&dir).expect("reopen");
    let rec = store.recover().expect("io").expect("snapshot");
    // The torn record is tick 12 (never "applied" as far as disk knows):
    // recovery stops one short of the kill point and counts the tear.
    assert_eq!(rec.next_tick(), 12);
    assert_eq!(store.stats().torn_records.get(), 1);
    let mut inner = SequentialIngest::new(rec.endpoints().expect("rebuild"));
    rec.replay_into(&mut inner);
    let mut durable =
        DurableIngest::resume(inner, store, SNAPSHOT_EVERY, rec.next_tick()).expect("resume");
    // The client re-sends from tick 12 (ack/timeout recovery): re-feed it.
    for wire in &ticks[12..] {
        durable.try_ingest_tick(wire).expect("tick");
    }
    let (inner, _store) = durable.into_parts();
    assert_eq!(fleet_bits(&inner.finish().endpoints), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_falls_back_to_the_previous_barrier() {
    let ticks = traffic();
    let reference = reference_bits(&ticks);
    let dir = tmp_dir("fallback");
    let _ = std::fs::remove_dir_all(&dir);

    let store = DurableStore::open(&dir).expect("open");
    let mut durable = DurableIngest::new(SequentialIngest::new(endpoints()), store, SNAPSHOT_EVERY)
        .expect("genesis");
    for wire in &ticks[..12] {
        durable.try_ingest_tick(wire).expect("tick");
    }
    drop(durable);

    // Corrupt the newest snapshot (snap at tick 10); recovery must fall
    // back to the previous one (tick 5) and replay twice as far.
    let mut snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("snap-")
        })
        .collect();
    snaps.sort();
    let newest = snaps.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(newest, &bytes).unwrap();

    let mut store = DurableStore::open(&dir).expect("reopen");
    let rec = store.recover().expect("io").expect("fallback snapshot");
    assert_eq!(rec.snapshot_ticks, 5, "fell back to the previous barrier");
    assert_eq!(rec.next_tick(), 12, "WAL still rolls forward to the crash");
    assert_eq!(store.stats().corrupt_snapshots.get(), 1);
    let mut inner = SequentialIngest::new(rec.endpoints().expect("rebuild"));
    rec.replay_into(&mut inner);
    for wire in &ticks[12..] {
        inner.ingest_tick(wire);
    }
    assert_eq!(fleet_bits(&inner.finish().endpoints), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retention_keeps_two_snapshots_and_their_wal() {
    let ticks = traffic();
    let dir = tmp_dir("retention");
    let _ = std::fs::remove_dir_all(&dir);
    let store = DurableStore::open(&dir).expect("open");
    let mut durable = DurableIngest::new(SequentialIngest::new(endpoints()), store, SNAPSHOT_EVERY)
        .expect("genesis");
    for wire in &ticks {
        durable.try_ingest_tick(wire).expect("tick");
    }
    let (_, store) = durable.into_parts();
    let names: Vec<String> = std::fs::read_dir(store.dir())
        .unwrap()
        .map(|e| e.unwrap().file_name().to_str().unwrap().to_string())
        .collect();
    let snaps = names.iter().filter(|n| n.starts_with("snap-")).count();
    let wals = names.iter().filter(|n| n.starts_with("wal-")).count();
    assert_eq!(snaps, 2, "newest snapshot plus one fallback: {names:?}");
    assert!(
        wals <= 2,
        "only segments since the fallback barrier survive: {names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_pipeline_crash_recovers_into_sequential_reference() {
    // The pipeline and the sequential ingester must be interchangeable
    // across a crash: kill a 3-shard durable pipeline, recover into a
    // sequential ingester (and vice versa makes no difference — states are
    // engine-agnostic), and match the uncrashed reference exactly.
    use kalstream_core::IngestPipeline;
    let ticks = traffic();
    let reference = reference_bits(&ticks);
    let dir = tmp_dir("pipeline");
    for kill_tick in [1u64, 7, 13, 23] {
        let _ = std::fs::remove_dir_all(&dir);
        let store = DurableStore::open(&dir).expect("open");
        let pipeline = IngestPipeline::start(3, endpoints());
        let mut durable = DurableIngest::new(pipeline, store, SNAPSHOT_EVERY).expect("genesis");
        for wire in &ticks[..kill_tick as usize] {
            durable.try_ingest_tick(wire).expect("tick");
        }
        // Crash: finish() is never called — shard threads are dropped with
        // their engines, exactly the state loss a kill -9 causes.
        let (pipeline, _store) = durable.into_parts();
        drop(pipeline);

        let mut store = DurableStore::open(&dir).expect("reopen");
        let rec = store.recover().expect("io").expect("snapshot");
        let mut inner = SequentialIngest::new(rec.endpoints().expect("rebuild"));
        rec.replay_into(&mut inner);
        assert_eq!(rec.next_tick(), kill_tick);
        for wire in &ticks[kill_tick as usize..] {
            inner.ingest_tick(wire);
        }
        assert_eq!(
            fleet_bits(&inner.finish().endpoints),
            reference,
            "kill after tick {kill_tick}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
