//! Snapshot encoding: a versioned, checksummed capture of every endpoint's
//! [`EndpointState`] at one tick barrier.
//!
//! ## Format
//!
//! ```text
//! "KSD1" | version:u16 | reserved:u16 | ticks_applied:u64 | count:u32
//! count × ( stream_id:u32 | body_len:u32 | body )
//! crc:u32                                  (CRC-32/IEEE over all prior bytes)
//! ```
//!
//! and each entry `body` is:
//!
//! ```text
//! filter_len:u32 | filter                  (wire-v3 Model sync: model, x, p)
//! steps_since_update:u64 | cov_update:u8
//! last_seq:u64 | ack_due:u8
//! bound_flag:u8 | bound_bits:u64           (f64 bits; zero when flag = 0)
//! syncs_applied:u64 | decode_failures:u64 | predict_failures:u64 | bounds_sent:u64
//! stale_drops:u64 | seq_gaps:u64 | shed:u64
//! pending_count:u32 | pending_count × ( len:u32 | sync_message )
//! ```
//!
//! All integers little-endian, floats carried as raw bits — the decoder
//! reconstructs every f64 with `from_bits`, which is what lets a recovered
//! server be *bit*-identical rather than merely close. The filter triplet
//! rides inside a [`SyncMessage::Model`] wire body: the exact encoding the
//! protocol already trusts to move models and covariances losslessly
//! (triangle-packed symmetric matrices included), so the snapshot format
//! inherits wire-v3's packing and its tests instead of inventing a second
//! matrix codec.

use bytes::BufMut;
use kalstream_core::wire::SyncMessage;
use kalstream_core::EndpointState;
use kalstream_filter::CovarianceUpdate;
use kalstream_sim::DeliveryStats;

/// First bytes of every snapshot file ("KalStream Durable v1").
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"KSD1";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Snapshot decode failures. Any of them invalidates the *whole* snapshot
/// file — recovery falls back to an older snapshot rather than trusting a
/// partially readable one.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// File does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// Version field is newer than this build understands.
    BadVersion(u16),
    /// The trailing CRC does not match the bytes on disk.
    BadChecksum,
    /// The file ends mid-structure.
    Truncated,
    /// An entry body failed to decode (bad sync payload, bad enum tag).
    BadEntry,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot does not start with KSD1"),
            SnapshotError::BadVersion(v) => {
                write!(
                    f,
                    "snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::BadEntry => write!(f, "snapshot entry failed to decode"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32/IEEE (reflected, the zlib/Ethernet polynomial), table-driven.
/// Hand-rolled because the workspace takes no new dependencies; the
/// 256-entry table is built once per process.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

fn push_endpoint_state(buf: &mut Vec<u8>, state: &EndpointState) {
    // The filter triplet as a Model sync — wire-v3 does the heavy lifting.
    let filter = SyncMessage::Model {
        model: state.model.clone(),
        x: state.x.clone(),
        p: state.p.clone(),
    }
    .encode();
    buf.put_u32_le(filter.len() as u32);
    buf.put_slice(&filter);
    buf.put_u64_le(state.steps_since_update);
    buf.put_u8(match state.cov_update {
        CovarianceUpdate::Joseph => 0,
        CovarianceUpdate::Simple => 1,
    });
    buf.put_u64_le(state.last_seq);
    buf.put_u8(u8::from(state.ack_due));
    match state.bound_due {
        Some(delta) => {
            buf.put_u8(1);
            buf.put_u64_le(delta.to_bits());
        }
        None => {
            buf.put_u8(0);
            buf.put_u64_le(0);
        }
    }
    buf.put_u64_le(state.syncs_applied);
    buf.put_u64_le(state.decode_failures);
    buf.put_u64_le(state.predict_failures);
    buf.put_u64_le(state.bounds_sent);
    buf.put_u64_le(state.delivery.stale_drops);
    buf.put_u64_le(state.delivery.seq_gaps);
    buf.put_u64_le(state.delivery.shed);
    buf.put_u32_le(state.pending.len() as u32);
    for msg in &state.pending {
        let wire = msg.encode();
        buf.put_u32_le(wire.len() as u32);
        buf.put_slice(&wire);
    }
}

/// Encodes one snapshot: the fleet's states as captured at a tick barrier
/// after `ticks_applied` ticks.
pub fn encode_snapshot(ticks_applied: u64, states: &[(u32, EndpointState)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + states.len() * 256);
    buf.put_slice(&SNAPSHOT_MAGIC);
    buf.put_u16_le(SNAPSHOT_VERSION);
    buf.put_u16_le(0);
    buf.put_u64_le(ticks_applied);
    buf.put_u32_le(states.len() as u32);
    let mut body = Vec::new();
    for (id, state) in states {
        body.clear();
        push_endpoint_state(&mut body, state);
        buf.put_u32_le(*id);
        buf.put_u32_le(body.len() as u32);
        buf.put_slice(&body);
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf
}

/// A little-endian read cursor over a byte slice; every read is
/// bounds-checked so corrupt input surfaces as [`SnapshotError::Truncated`]
/// instead of a panic.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() < n {
            return Err(SnapshotError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

fn read_endpoint_state(cur: &mut Cursor<'_>) -> Result<EndpointState, SnapshotError> {
    let filter_len = cur.u32()? as usize;
    let filter_wire = cur.take(filter_len)?;
    let (model, x, p) = match SyncMessage::decode(filter_wire) {
        Ok(SyncMessage::Model { model, x, p }) => (model, x, p),
        _ => return Err(SnapshotError::BadEntry),
    };
    let steps_since_update = cur.u64()?;
    let cov_update = match cur.u8()? {
        0 => CovarianceUpdate::Joseph,
        1 => CovarianceUpdate::Simple,
        _ => return Err(SnapshotError::BadEntry),
    };
    let last_seq = cur.u64()?;
    let ack_due = match cur.u8()? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::BadEntry),
    };
    let bound_flag = cur.u8()?;
    let bound_bits = cur.u64()?;
    let bound_due = match bound_flag {
        0 => None,
        1 => Some(f64::from_bits(bound_bits)),
        _ => return Err(SnapshotError::BadEntry),
    };
    let syncs_applied = cur.u64()?;
    let decode_failures = cur.u64()?;
    let predict_failures = cur.u64()?;
    let bounds_sent = cur.u64()?;
    let delivery = DeliveryStats {
        stale_drops: cur.u64()?,
        seq_gaps: cur.u64()?,
        shed: cur.u64()?,
    };
    let pending_count = cur.u32()? as usize;
    let mut pending = Vec::with_capacity(pending_count.min(1024));
    for _ in 0..pending_count {
        let len = cur.u32()? as usize;
        let wire = cur.take(len)?;
        pending.push(SyncMessage::decode(wire).map_err(|_| SnapshotError::BadEntry)?);
    }
    Ok(EndpointState {
        model,
        x,
        p,
        steps_since_update,
        cov_update,
        pending,
        syncs_applied,
        decode_failures,
        predict_failures,
        last_seq,
        ack_due,
        bound_due,
        bounds_sent,
        delivery,
    })
}

/// Decodes a snapshot file, verifying magic, version, structure, and CRC.
/// Returns `(ticks_applied, states)`.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Vec<(u32, EndpointState)>), SnapshotError> {
    if bytes.len() < 4 + 2 + 2 + 8 + 4 + 4 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    // Checksum first: a corrupt version/count field must not steer parsing.
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(payload) != stored {
        return Err(SnapshotError::BadChecksum);
    }
    let mut cur = Cursor { buf: &payload[4..] };
    let version = cur.u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let _reserved = cur.u16()?;
    let ticks_applied = cur.u64()?;
    let count = cur.u32()? as usize;
    let mut states = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let id = cur.u32()?;
        let body_len = cur.u32()? as usize;
        let body = cur.take(body_len)?;
        let mut body_cur = Cursor { buf: body };
        let state = read_endpoint_state(&mut body_cur)?;
        if !body_cur.is_empty() {
            return Err(SnapshotError::BadEntry);
        }
        states.push((id, state));
    }
    if !cur.is_empty() {
        return Err(SnapshotError::BadEntry);
    }
    Ok((ticks_applied, states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalstream_core::{ProtocolConfig, ServerEndpoint, SessionSpec};
    use kalstream_linalg::Vector;

    /// A non-trivial endpoint: driven through real traffic so every state
    /// field is exercised by the roundtrip.
    fn endpoint() -> ServerEndpoint {
        use kalstream_sim::Consumer;
        let config = ProtocolConfig::new(0.5).expect("valid delta");
        let mut server = SessionSpec::default_scalar(0.25, config)
            .expect("valid spec")
            .build()
            .server;
        let mut out = [0.0];
        for tick in 0..5u64 {
            server.receive(
                tick,
                &kalstream_core::wire::WireMessage::Sync {
                    seq: Some(tick + 1),
                    msg: SyncMessage::State {
                        x: Vector::from_slice(&[tick as f64 * 0.3]),
                        p: kalstream_linalg::Matrix::scalar(1, 0.4),
                    },
                }
                .encode(),
            );
            server.estimate(tick, &mut out);
        }
        server.push_bound_directive(0.125);
        // Leave one sync pending: snapshots must capture mid-tick queues.
        server.enqueue(SyncMessage::Measurement {
            z: Vector::from_slice(&[1.5]),
        });
        server
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let states: Vec<(u32, EndpointState)> =
            vec![(3, endpoint().state()), (9, endpoint().state())];
        let wire = encode_snapshot(42, &states);
        let (ticks, decoded) = decode_snapshot(&wire).expect("decode");
        assert_eq!(ticks, 42);
        assert_eq!(decoded, states);
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let states = vec![(0u32, endpoint().state())];
        let wire = encode_snapshot(7, &states);
        // Flip one bit at a time across the whole file: the CRC (or, for
        // bytes inside the CRC itself, the mismatch) must catch each one.
        for pos in 0..wire.len() {
            let mut bad = wire.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode_snapshot(&bad).is_err(),
                "single-bit corruption at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let states = vec![(0u32, endpoint().state())];
        let wire = encode_snapshot(7, &states);
        for len in 0..wire.len() {
            assert!(
                decode_snapshot(&wire[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let states = vec![(0u32, endpoint().state())];
        let mut wire = encode_snapshot(7, &states);
        wire[4] = 9; // version field
        let fixed = crc32(&wire[..wire.len() - 4]).to_le_bytes();
        let n = wire.len();
        wire[n - 4..].copy_from_slice(&fixed);
        assert_eq!(decode_snapshot(&wire), Err(SnapshotError::BadVersion(9)));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
