//! The sync-message WAL: one record per tick, segmented at snapshot
//! barriers.
//!
//! ## Format
//!
//! Each segment file is:
//!
//! ```text
//! "KSWL" | version:u16 | reserved:u16
//! record*
//! ```
//!
//! and each record is:
//!
//! ```text
//! payload_len:u32 | tick:u64 | crc:u32 | payload
//! ```
//!
//! where `payload` is **exactly** one tick's framed wire batch — the same
//! bytes `IngestPipeline::ingest_tick` consumes, captured *before* they
//! are applied. The tick barrier is the natural truncation point: the
//! protocol already delimits ticks on the wire (`TICK_MARKER_STREAM`), so
//! a record boundary never splits a message, and replaying records in
//! order reproduces the exact `ingest_tick` call sequence.
//!
//! `crc` covers `tick || payload`. A record that fails its length, CRC, or
//! tick-continuity check ends the readable prefix of the segment: the
//! append-before-apply discipline means a torn tail is a tick that was
//! **never applied** by the crashed process, so discarding it is not data
//! loss — the client's ack/timeout machinery re-sends anything the server
//! never saw (the PR 7 loss-recovery path, unchanged).

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use bytes::BufMut;

use crate::snapshot::crc32;

/// First bytes of every WAL segment ("KalStream WAL").
pub const WAL_MAGIC: [u8; 4] = *b"KSWL";

/// Current WAL format version.
pub const WAL_VERSION: u16 = 1;

/// Fixed bytes per record before the payload.
const RECORD_HEADER_BYTES: usize = 4 + 8 + 4;

/// Appender over one open segment file. Records are written with a single
/// `write_all` each, so a crash tears at most the final record — which the
/// reader detects and discards.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    records: u64,
    bytes: u64,
}

impl WalWriter {
    /// Creates a fresh segment at `path` and writes its header.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(8);
        header.put_slice(&WAL_MAGIC);
        header.put_u16_le(WAL_VERSION);
        header.put_u16_le(0);
        file.write_all(&header)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            records: 0,
            bytes: header.len() as u64,
        })
    }

    /// Appends one tick's wire batch as a single record.
    pub fn append(&mut self, tick: u64, payload: &[u8]) -> io::Result<()> {
        let mut record = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        record.put_u32_le(payload.len() as u32);
        record.put_u64_le(tick);
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.put_u64_le(tick);
        crc_input.put_slice(payload);
        record.put_u32_le(crc32(&crc_input));
        record.put_slice(payload);
        self.file.write_all(&record)?;
        self.records += 1;
        self.bytes += record.len() as u64;
        Ok(())
    }

    /// Records appended to this segment.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes written to this segment (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Everything read back from one segment.
pub struct SegmentRead {
    /// Intact records, in file order: `(tick, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// 1 when the segment ended in a torn or corrupt record (everything
    /// after it is discarded), 0 for a clean tail.
    pub torn: u64,
}

/// Reads a segment, returning its intact record prefix. A missing or
/// malformed header yields an empty, torn read rather than an error: the
/// recovery path treats any unreadable tail state as "the crash got here".
pub fn read_segment(path: &Path) -> io::Result<SegmentRead> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < 8 || buf[..4] != WAL_MAGIC {
        return Ok(SegmentRead {
            records: Vec::new(),
            torn: 1,
        });
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != WAL_VERSION {
        return Ok(SegmentRead {
            records: Vec::new(),
            torn: 1,
        });
    }
    let mut records = Vec::new();
    let mut pos = 8usize;
    let mut torn = 0u64;
    while pos < buf.len() {
        if buf.len() - pos < RECORD_HEADER_BYTES {
            torn = 1;
            break;
        }
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        let tick = u64::from_le_bytes([
            buf[pos + 4],
            buf[pos + 5],
            buf[pos + 6],
            buf[pos + 7],
            buf[pos + 8],
            buf[pos + 9],
            buf[pos + 10],
            buf[pos + 11],
        ]);
        let stored_crc =
            u32::from_le_bytes([buf[pos + 12], buf[pos + 13], buf[pos + 14], buf[pos + 15]]);
        let body_start = pos + RECORD_HEADER_BYTES;
        if buf.len() - body_start < len {
            torn = 1;
            break;
        }
        let payload = &buf[body_start..body_start + len];
        let mut crc_input = Vec::with_capacity(8 + len);
        crc_input.put_u64_le(tick);
        crc_input.put_slice(payload);
        if crc32(&crc_input) != stored_crc {
            torn = 1;
            break;
        }
        records.push((tick, payload.to_vec()));
        pos = body_start + len;
    }
    Ok(SegmentRead { records, torn })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kalstream-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn roundtrip_preserves_records_in_order() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path).unwrap();
        for tick in 0..10u64 {
            w.append(tick, format!("tick-{tick}-payload").as_bytes())
                .unwrap();
        }
        assert_eq!(w.records(), 10);
        drop(w);
        let read = read_segment(&path).unwrap();
        assert_eq!(read.torn, 0);
        assert_eq!(read.records.len(), 10);
        for (i, (tick, payload)) in read.records.iter().enumerate() {
            assert_eq!(*tick, i as u64);
            assert_eq!(payload, format!("tick-{i}-payload").as_bytes());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payloads_roundtrip() {
        // Quiet ticks are empty batches; they still must be recorded (the
        // predict step advances state even with no messages).
        let dir = tmp_dir("empty");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path).unwrap();
        for tick in 0..3u64 {
            w.append(tick, &[]).unwrap();
        }
        drop(w);
        let read = read_segment(&path).unwrap();
        assert_eq!(read.torn, 0);
        assert_eq!(
            read.records,
            vec![(0, Vec::new()), (1, Vec::new()), (2, Vec::new())]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_at_every_truncation_point() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path).unwrap();
        for tick in 0..3u64 {
            w.append(tick, &[0xAB; 20]).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        let record_bytes = RECORD_HEADER_BYTES + 20;
        // Truncate anywhere inside the last record: the first two records
        // must survive, the tail must be counted torn.
        let second_end = 8 + 2 * record_bytes;
        for cut in second_end + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let read = read_segment(&path).unwrap();
            assert_eq!(read.torn, 1, "cut at {cut}");
            assert_eq!(read.records.len(), 2, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_ends_the_readable_prefix() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path).unwrap();
        for tick in 0..3u64 {
            w.append(tick, &[0xCD; 16]).unwrap();
        }
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the middle record.
        let record_bytes = RECORD_HEADER_BYTES + 16;
        bytes[8 + record_bytes + RECORD_HEADER_BYTES + 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_segment(&path).unwrap();
        assert_eq!(read.torn, 1);
        assert_eq!(
            read.records.len(),
            1,
            "only the record before the corruption survives"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_header_yields_empty_torn_read() {
        let dir = tmp_dir("header");
        let path = dir.join("wal-0.log");
        std::fs::write(&path, b"junk").unwrap();
        let read = read_segment(&path).unwrap();
        assert_eq!(read.torn, 1);
        assert!(read.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
