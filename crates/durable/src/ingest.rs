//! [`DurableIngest`]: the durability discipline wrapped around any
//! ingester — WAL-append before apply, periodic snapshot barriers.
//!
//! Generic over [`TickIngest`] + [`SnapshotSource`], so the same wrapper
//! drives the sequential reference, the sharded pipeline, and the batched
//! engines identically — which is exactly what the crash-recovery
//! proptests exploit: kill a durable *pipeline*, recover, and compare
//! against an uncrashed *sequential* run bit for bit.

use std::io;

use kalstream_core::{
    ResizableIngest, ResizeTransition, ShardAssignment, SnapshotSource, TickIngest,
};

use crate::store::DurableStore;

/// An ingester whose state survives process death. Every tick is appended
/// to the WAL before it is applied; every `snapshot_every` ticks the
/// fleet's state is captured at the barrier and written atomically.
pub struct DurableIngest<I: TickIngest + SnapshotSource> {
    inner: I,
    store: DurableStore,
    snapshot_every: u64,
    ticks_applied: u64,
}

impl<I: TickIngest + SnapshotSource> DurableIngest<I> {
    /// Wraps a fresh ingester: writes the genesis snapshot (tick 0) so
    /// recovery always has a barrier to start from, even before the first
    /// cadence snapshot.
    ///
    /// # Errors
    /// Propagates store I/O errors.
    pub fn new(inner: I, store: DurableStore, snapshot_every: u64) -> io::Result<Self> {
        DurableIngest::resume(inner, store, snapshot_every, 0)
    }

    /// Wraps an ingester that has already applied `ticks_applied` ticks
    /// (a recovered one, after WAL replay). Writes a compaction snapshot
    /// at the resume barrier — recovery work done once should not be paid
    /// again by the *next* crash.
    ///
    /// # Errors
    /// Propagates store I/O errors.
    pub fn resume(
        mut inner: I,
        mut store: DurableStore,
        snapshot_every: u64,
        ticks_applied: u64,
    ) -> io::Result<Self> {
        assert!(snapshot_every >= 1, "snapshot cadence must be at least 1");
        let states = inner.snapshot_states();
        store.write_snapshot(ticks_applied, &states)?;
        Ok(DurableIngest {
            inner,
            store,
            snapshot_every,
            ticks_applied,
        })
    }

    /// Appends the tick to the WAL, applies it, and snapshots when the
    /// cadence comes due.
    ///
    /// # Errors
    /// Propagates store I/O errors (the tick is **not** applied when the
    /// WAL append fails — durability before visibility).
    pub fn try_ingest_tick(&mut self, wire: &[u8]) -> io::Result<()> {
        self.store.append_tick(self.ticks_applied, wire)?;
        self.inner.ingest_tick(wire);
        self.ticks_applied += 1;
        if self.ticks_applied.is_multiple_of(self.snapshot_every) {
            let states = self.inner.snapshot_states();
            self.store.write_snapshot(self.ticks_applied, &states)?;
        }
        Ok(())
    }

    /// Writes a snapshot at the current barrier regardless of cadence — a
    /// clean shutdown checkpoints so the next start replays nothing.
    ///
    /// # Errors
    /// Propagates store I/O errors.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let states = self.inner.snapshot_states();
        self.store.write_snapshot(self.ticks_applied, &states)
    }

    /// Ticks applied through this wrapper (including any pre-resume count).
    pub fn ticks_applied(&self) -> u64 {
        self.ticks_applied
    }

    /// Checkpoints at the resize barrier, then moves the inner ingester to
    /// `to` — the *shape-change checkpoint reuse* that makes elastic
    /// resizing safe: snapshots are pipeline-shape-independent (sorted
    /// `(stream_id, state)` pairs), so the checkpoint written here recovers
    /// into **any** shard count. A crash at any point around the resize
    /// replays from this barrier (or an earlier one) into the post-resize
    /// shape with zero extra machinery.
    ///
    /// # Errors
    /// Propagates store I/O errors; on error the resize is not executed.
    pub fn try_reassign(&mut self, to: ShardAssignment) -> io::Result<ResizeTransition>
    where
        I: ResizableIngest,
    {
        self.checkpoint()?;
        Ok(self.inner.reassign(to))
    }

    /// The wrapped store (stats, directory).
    pub fn store(&self) -> &DurableStore {
        &self.store
    }

    /// Unwraps into the inner ingester and the store.
    pub fn into_parts(self) -> (I, DurableStore) {
        (self.inner, self.store)
    }

    /// The inner ingester.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Mutable access to the inner ingester (snapshot hooks, feedback).
    pub fn inner_mut(&mut self) -> &mut I {
        &mut self.inner
    }
}

impl<I: TickIngest + SnapshotSource> TickIngest for DurableIngest<I> {
    /// [`TickIngest`] is infallible by contract; a store I/O error here is
    /// an environment failure (disk gone), not a protocol condition, so it
    /// panics like the pipeline does when a shard worker dies.
    fn ingest_tick(&mut self, wire: &[u8]) {
        self.try_ingest_tick(wire)
            .expect("durable store append failed");
    }
}

impl<I: TickIngest + SnapshotSource> SnapshotSource for DurableIngest<I> {
    fn snapshot_states(&mut self) -> Vec<(u32, kalstream_core::EndpointState)> {
        self.inner.snapshot_states()
    }
}

impl<I: TickIngest + SnapshotSource + ResizableIngest> ResizableIngest for DurableIngest<I> {
    fn assignment(&self) -> ShardAssignment {
        self.inner.assignment()
    }

    /// Like [`TickIngest::ingest_tick`], infallible by contract: a store
    /// I/O error while writing the resize-barrier checkpoint is an
    /// environment failure and panics. Use
    /// [`DurableIngest::try_reassign`] to handle it instead.
    fn reassign(&mut self, to: ShardAssignment) -> ResizeTransition {
        self.try_reassign(to)
            .expect("durable checkpoint failed at resize barrier")
    }

    fn queue_depths(&self) -> Vec<usize> {
        self.inner.queue_depths()
    }
}
