//! The durable store: a directory of snapshot files and WAL segments, plus
//! the recovery procedure that rebuilds a fleet from them.
//!
//! ## Layout and invariants
//!
//! ```text
//! <dir>/snap-00000000000000000042.ks    snapshot after 42 ticks applied
//! <dir>/wal-00000000000000000042.log    records for ticks 42, 43, …
//! ```
//!
//! * **Append-before-apply**: every tick's wire batch is appended to the
//!   open WAL segment *before* it is handed to the ingester. A tick the
//!   crashed process applied is therefore always on disk; a torn tail is a
//!   tick that was never applied and is safely discarded.
//! * **Rotate-at-snapshot**: writing a snapshot after `T` ticks closes the
//!   open segment and starts the next one at `T`. Segments therefore map
//!   1:1 onto inter-snapshot intervals, which is what makes pruning and
//!   fallback reasoning simple.
//! * **Snapshots are atomic**: encoded to `*.tmp`, fsynced, then renamed.
//!   A crash mid-snapshot leaves the previous snapshot authoritative.
//! * **Retention**: the last two snapshots are kept, plus every segment
//!   needed to roll forward from the *older* of them — so recovery
//!   survives one corrupt snapshot file (falling back costs only a longer
//!   replay).

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use kalstream_core::{EndpointState, ServerEndpoint, TickIngest};
use kalstream_filter::FilterError;
use kalstream_obs::{Counter, Gauge, Instrument, Scope};

use crate::snapshot::{decode_snapshot, encode_snapshot};
use crate::wal::{read_segment, WalWriter};

/// Configuration for a durable server: where state lives and how often to
/// snapshot. Snapshot cadence trades recovery replay length against
/// steady-state snapshot cost (each snapshot is a shard barrier).
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory holding snapshots and WAL segments (created on open).
    pub dir: PathBuf,
    /// Write a snapshot every this many applied ticks. Must be ≥ 1.
    pub snapshot_every: u64,
}

/// Counters the durability layer exposes through the obs registry —
/// steady-state write amplification on one side, recovery cost on the
/// other. `recovery_wall_ms` is wall-clock and therefore reported in
/// snapshots but never folded into deterministic experiment tables.
#[derive(Debug, Clone, Default)]
pub struct DurableStats {
    /// Snapshot files written.
    pub snapshots_written: Counter,
    /// Bytes across all snapshot files written.
    pub snapshot_bytes: Counter,
    /// WAL records appended (one per tick).
    pub wal_records: Counter,
    /// WAL bytes appended (headers included).
    pub wal_bytes: Counter,
    /// Ticks replayed from the WAL during the last recovery.
    pub replay_ticks: Counter,
    /// Torn or corrupt WAL tails discarded during recovery.
    pub torn_records: Counter,
    /// Snapshot files that failed validation and were skipped.
    pub corrupt_snapshots: Counter,
    /// Wall-clock milliseconds spent in the last [`DurableStore::recover`]
    /// (read + decode + endpoint rebuild; replay is counted by the caller).
    pub recovery_wall_ms: Gauge,
}

impl Instrument for DurableStats {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("snapshots_written", self.snapshots_written);
        scope.counter("snapshot_bytes", self.snapshot_bytes);
        scope.counter("wal_records", self.wal_records);
        scope.counter("wal_bytes", self.wal_bytes);
        scope.counter("replay_ticks", self.replay_ticks);
        scope.counter("torn_records", self.torn_records);
        scope.counter("corrupt_snapshots", self.corrupt_snapshots);
        scope.gauge("recovery_wall_ms", self.recovery_wall_ms.get());
    }
}

/// What [`DurableStore::recover`] found: the newest valid snapshot plus the
/// intact WAL suffix after it.
pub struct Recovery {
    /// Ticks applied at the recovered snapshot barrier.
    pub snapshot_ticks: u64,
    /// The fleet as of the snapshot, sorted by stream id.
    pub states: Vec<(u32, EndpointState)>,
    /// Intact WAL records after the snapshot: `(tick, wire batch)`,
    /// contiguous from `snapshot_ticks` upward.
    pub wal: Vec<(u64, Vec<u8>)>,
}

impl Recovery {
    /// The tick the recovered process resumes at: snapshot plus replay.
    pub fn next_tick(&self) -> u64 {
        self.snapshot_ticks + self.wal.len() as u64
    }

    /// Rebuilds live endpoints from the snapshot states.
    ///
    /// # Errors
    /// Propagates [`FilterError`] for inconsistent shapes — impossible for
    /// a store this process wrote (the snapshot CRC has already passed),
    /// but surfaced rather than unwrapped.
    pub fn endpoints(&self) -> Result<Vec<(u32, ServerEndpoint)>, FilterError> {
        self.states
            .iter()
            .map(|(id, state)| Ok((*id, ServerEndpoint::from_state(state.clone())?)))
            .collect()
    }

    /// Replays the WAL suffix into an ingester, reproducing the exact
    /// `ingest_tick` call sequence the crashed process made after the
    /// snapshot barrier.
    pub fn replay_into<I: TickIngest>(&self, inner: &mut I) {
        for (_, wire) in &self.wal {
            inner.ingest_tick(wire);
        }
    }
}

fn snap_path(dir: &Path, ticks: u64) -> PathBuf {
    dir.join(format!("snap-{ticks:020}.ks"))
}

fn wal_path(dir: &Path, start_tick: u64) -> PathBuf {
    dir.join(format!("wal-{start_tick:020}.log"))
}

/// Lists `(tick, path)` for directory entries named `prefix-{tick:020}{suffix}`,
/// ascending by tick.
fn list_numbered(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(prefix) else {
            continue;
        };
        let Some(digits) = rest.strip_suffix(suffix) else {
            continue;
        };
        if let Ok(tick) = digits.parse::<u64>() {
            out.push((tick, entry.path()));
        }
    }
    out.sort_by_key(|(tick, _)| *tick);
    Ok(out)
}

/// A directory-backed durable store. One store owns one server's state;
/// opening the same directory after a crash and calling
/// [`DurableStore::recover`] yields everything needed to reconverge.
pub struct DurableStore {
    dir: PathBuf,
    wal: Option<WalWriter>,
    stats: DurableStats,
}

impl DurableStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DurableStore {
            dir,
            wal: None,
            stats: DurableStats::default(),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durability counters so far.
    pub fn stats(&self) -> &DurableStats {
        &self.stats
    }

    /// Appends one tick's wire batch, opening a fresh segment if none is
    /// open (the segment is named after its first tick). Must be called
    /// *before* the batch is applied — the append-before-apply discipline
    /// is what makes a torn tail harmless.
    pub fn append_tick(&mut self, tick: u64, wire: &[u8]) -> io::Result<()> {
        if self.wal.is_none() {
            self.wal = Some(WalWriter::create(&wal_path(&self.dir, tick))?);
        }
        let wal = self.wal.as_mut().expect("segment just opened");
        let before = wal.bytes();
        wal.append(tick, wire)?;
        self.stats.wal_records += 1;
        self.stats.wal_bytes += wal.bytes() - before;
        Ok(())
    }

    /// Writes a snapshot at the `ticks_applied` barrier: atomic
    /// (tmp + fsync + rename), then rotates the WAL and prunes files no
    /// retained snapshot needs.
    pub fn write_snapshot(
        &mut self,
        ticks_applied: u64,
        states: &[(u32, EndpointState)],
    ) -> io::Result<()> {
        let encoded = encode_snapshot(ticks_applied, states);
        let final_path = snap_path(&self.dir, ticks_applied);
        let tmp_path = final_path.with_extension("ks.tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(&encoded)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        self.stats.snapshots_written += 1;
        self.stats.snapshot_bytes += encoded.len() as u64;
        // Rotate: the next appended tick starts a new segment.
        self.wal = None;
        self.prune(ticks_applied)?;
        Ok(())
    }

    /// Retention: keep the snapshot just written and its predecessor, and
    /// every WAL segment starting at or after the predecessor's barrier.
    fn prune(&mut self, newest: u64) -> io::Result<()> {
        let snaps = list_numbered(&self.dir, "snap-", ".ks")?;
        // The immediate predecessor snapshot (if any) anchors retention:
        // everything older than it is unreachable by any fallback.
        let keep_from = snaps
            .iter()
            .map(|(tick, _)| *tick)
            .filter(|&tick| tick < newest)
            .max()
            .unwrap_or(newest);
        for (tick, path) in &snaps {
            if *tick < keep_from {
                std::fs::remove_file(path)?;
            }
        }
        for (start, path) in list_numbered(&self.dir, "wal-", ".log")? {
            if start < keep_from {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// Recovers the newest valid snapshot plus the intact, contiguous WAL
    /// suffix after it. Returns `None` when the directory holds no valid
    /// snapshot (a store that never reached its first barrier).
    ///
    /// Corrupt snapshot files are skipped (counted) and recovery falls
    /// back to the next older one; WAL records before the chosen barrier
    /// are ignored, and the first gap, CRC failure, or torn tail ends the
    /// replayable suffix (counted).
    pub fn recover(&mut self) -> io::Result<Option<Recovery>> {
        let started = Instant::now();
        let snaps = list_numbered(&self.dir, "snap-", ".ks")?;
        let mut chosen: Option<(u64, Vec<(u32, EndpointState)>)> = None;
        for (tick, path) in snaps.iter().rev() {
            let bytes = std::fs::read(path)?;
            match decode_snapshot(&bytes) {
                Ok((ticks_applied, states)) => {
                    debug_assert_eq!(ticks_applied, *tick, "file name matches header");
                    chosen = Some((ticks_applied, states));
                    break;
                }
                Err(_) => {
                    self.stats.corrupt_snapshots += 1;
                    // A snapshot that failed validation is worse than
                    // absent: left in place it would anchor retention and
                    // shadow valid fallbacks forever. Remove it.
                    std::fs::remove_file(path)?;
                }
            }
        }
        let Some((snapshot_ticks, states)) = chosen else {
            self.stats
                .recovery_wall_ms
                .set(started.elapsed().as_secs_f64() * 1e3);
            return Ok(None);
        };
        // Roll the WAL forward from the barrier: all segments in order,
        // skipping records below it, demanding contiguity above it.
        let mut wal: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut next = snapshot_ticks;
        let mut broken = false;
        for (start, path) in list_numbered(&self.dir, "wal-", ".log")? {
            if broken {
                break;
            }
            let read = read_segment(&path)?;
            for (tick, payload) in read.records {
                if tick < next {
                    continue; // before the barrier (an unpruned older segment)
                }
                if tick != next {
                    broken = true; // gap: nothing after it is trustworthy
                    self.stats.torn_records += 1;
                    break;
                }
                wal.push((tick, payload));
                next += 1;
            }
            if read.torn > 0 {
                self.stats.torn_records += read.torn;
                broken = true;
            }
            let _ = start;
        }
        self.stats.replay_ticks += wal.len() as u64;
        self.stats
            .recovery_wall_ms
            .set(started.elapsed().as_secs_f64() * 1e3);
        // Whatever happens next, appends must not extend a segment the
        // crashed process owned (its tail may be torn): start fresh.
        self.wal = None;
        Ok(Some(Recovery {
            snapshot_ticks,
            states,
            wal,
        }))
    }
}

impl Instrument for DurableStore {
    fn export(&self, scope: &mut Scope<'_>) {
        self.stats.export(scope);
    }
}
