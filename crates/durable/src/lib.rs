//! # kalstream-durable — state that survives the process
//!
//! The protocol's correctness currency is *bit-identity*: the source's
//! shadow filter and the server's cached filter run the same arithmetic in
//! the same order, so suppression decisions made at the edge hold exactly
//! at the server. PR 3 and PR 7 extended that identity across message
//! loss, duplication, reordering, and TCP reconnects — but a process crash
//! still erased every filter and silently voided the precision contract.
//! This crate closes that hole, the way a database would:
//!
//! * **Snapshots** ([`snapshot`]): a versioned, CRC-checked capture of
//!   every endpoint's complete protocol state ([`kalstream_core::EndpointState`])
//!   at a tick barrier — filter triplet, staleness, pending queue, seq/ack
//!   tracker, counters. Floats travel as raw bits; the filter triplet
//!   reuses the wire-v3 `Model` sync encoding, so no second matrix codec.
//! * **WAL** ([`wal`]): one record per tick holding the exact framed batch
//!   `ingest_tick` consumed, appended *before* apply. Tick barriers
//!   (already on the wire as `TICK_MARKER_STREAM`) are the segmentation
//!   and truncation points; a torn tail is a tick that was never applied.
//! * **Store + recovery** ([`store`]): atomic snapshot writes, WAL
//!   rotation at snapshot barriers, retention of one fallback snapshot,
//!   and [`store::DurableStore::recover`] — newest valid snapshot plus the
//!   contiguous intact WAL suffix.
//! * **The wrapper** ([`ingest::DurableIngest`]): the append-before-apply
//!   discipline around any [`kalstream_core::TickIngest`] +
//!   [`kalstream_core::SnapshotSource`].
//!
//! The contract, pinned by this crate's tests and the workspace
//! `crash_recovery` proptests: kill the process after *any* tick, recover,
//! replay, and the fleet's filter state is **bit-identical** to an
//! uncrashed reference run — and therefore makes exactly the same
//! suppression, ack, and bound decisions forever after. Recovery is not
//! "close enough to reconverge"; it is indistinguishable.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ingest;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use ingest::DurableIngest;
pub use snapshot::{
    crc32, decode_snapshot, encode_snapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use store::{DurableConfig, DurableStats, DurableStore, Recovery};
pub use wal::{read_segment, SegmentRead, WalWriter, WAL_MAGIC, WAL_VERSION};
