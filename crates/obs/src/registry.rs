//! The export side: [`Registry`], name-scoping, and the [`Instrument`]
//! trait components implement to publish their metrics.

use crate::{Counter, Gauge, Histogram, MetricValue, Snapshot};

/// Collects exported metrics into a [`Snapshot`].
///
/// The registry is pull-model and off the hot path: components own their
/// instruments ([`Counter`]s embedded in their structs) and export copies
/// when asked, so there is no shared mutable state and no synchronization
/// anywhere near the protocol loop.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    entries: Vec<(String, MetricValue)>,
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Opens a name scope: every metric recorded through the returned
    /// [`Scope`] is prefixed with `prefix` + `.`.
    pub fn scope(&mut self, prefix: &str) -> Scope<'_> {
        Scope {
            registry: self,
            prefix: prefix.to_string(),
        }
    }

    /// Exports `instrument`'s metrics under `prefix`.
    pub fn observe(&mut self, prefix: &str, instrument: &dyn Instrument) {
        instrument.export(&mut self.scope(prefix));
    }

    /// Records a raw counter value at an absolute name.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.entries
            .push((name.into(), MetricValue::Counter(value)));
    }

    /// Records a raw gauge value at an absolute name.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.entries.push((name.into(), MetricValue::Gauge(value)));
    }

    /// Records a histogram at an absolute name.
    pub fn histogram(&mut self, name: impl Into<String>, hist: &Histogram) {
        self.entries
            .push((name.into(), MetricValue::from_histogram(hist)));
    }

    /// Freezes the recorded metrics into a deterministic [`Snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_entries(self.entries.clone())
    }
}

/// A dot-separated name prefix over a [`Registry`].
#[derive(Debug)]
pub struct Scope<'a> {
    registry: &'a mut Registry,
    prefix: String,
}

impl Scope<'_> {
    fn full(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.prefix, name)
        }
    }

    /// Opens a nested scope (`parent.child`).
    pub fn scope(&mut self, name: &str) -> Scope<'_> {
        let prefix = self.full(name);
        Scope {
            registry: &mut *self.registry,
            prefix,
        }
    }

    /// Exports `instrument`'s metrics under a nested scope.
    pub fn observe(&mut self, name: &str, instrument: &dyn Instrument) {
        instrument.export(&mut self.scope(name));
    }

    /// Records a counter (accepts a [`Counter`] or a bare `u64`).
    pub fn counter(&mut self, name: &str, value: impl Into<Counter>) {
        let full = self.full(name);
        self.registry.counter(full, value.into().get());
    }

    /// Records a gauge (accepts a [`Gauge`] or a bare `f64`).
    pub fn gauge(&mut self, name: &str, value: impl Into<Gauge>) {
        let full = self.full(name);
        self.registry.gauge(full, value.into().get());
    }

    /// Records a histogram.
    pub fn histogram(&mut self, name: &str, hist: &Histogram) {
        let full = self.full(name);
        self.registry.histogram(full, hist);
    }
}

/// Implemented by any component that can publish its metrics.
///
/// The component writes each instrument into the provided [`Scope`]; the
/// caller decides the name prefix (which is how the same struct exports
/// cleanly as `stream.3.delivery.shed` in a fleet and `delivery.shed`
/// standalone).
pub trait Instrument {
    /// Exports this component's metrics into `scope`.
    ///
    /// Named `export` (not `observe`) deliberately: several instrumented
    /// components already have an `observe` in another vocabulary (a
    /// `SourceEndpoint`-style producer observing a measurement), and the
    /// two must never collide in method resolution.
    fn export(&self, scope: &mut Scope<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Widget {
        hits: Counter,
        load: Gauge,
        lat: Histogram,
    }

    impl Instrument for Widget {
        fn export(&self, scope: &mut Scope<'_>) {
            scope.counter("hits", self.hits);
            scope.gauge("load", self.load);
            scope.histogram("lat_ns", &self.lat);
        }
    }

    #[test]
    fn scopes_compose_dotted_names() {
        let mut w = Widget {
            hits: Counter::new(),
            load: Gauge::new(),
            lat: Histogram::new(),
        };
        w.hits += 3;
        w.load.set(0.5);
        w.lat.record(100);

        let mut reg = Registry::new();
        reg.observe("app.widget", &w);
        let mut s = reg.scope("app");
        s.counter("version", 1u64);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("app.widget.hits"), Some(3));
        assert_eq!(snap.gauge("app.widget.load"), Some(0.5));
        assert_eq!(snap.counter("app.version"), Some(1));
        assert!(matches!(
            snap.get("app.widget.lat_ns"),
            Some(MetricValue::Histogram { .. })
        ));
    }

    #[test]
    fn nested_scopes_nest() {
        let mut reg = Registry::new();
        {
            let mut a = reg.scope("a");
            let mut b = a.scope("b");
            b.counter("c", 9u64);
        }
        assert_eq!(reg.snapshot().counter("a.b.c"), Some(9));
    }

    #[test]
    fn empty_prefix_uses_bare_names() {
        let mut reg = Registry::new();
        reg.scope("").counter("bare", 1u64);
        assert_eq!(reg.snapshot().counter("bare"), Some(1));
    }
}
