//! Deterministic metric snapshots: ordered name → value maps with JSON and
//! text renderings.

use crate::Histogram;
use std::fmt::Write as _;

/// The exported value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone event count.
    Counter(u64),
    /// A last-value measurement.
    Gauge(f64),
    /// A log₂ histogram, stored sparsely as `(bucket_index, count)` pairs
    /// (only non-empty buckets) plus the summary scalars.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Largest sample.
        max: u64,
        /// Non-empty buckets as `(index, count)`, ascending by index.
        buckets: Vec<(u32, u64)>,
    },
}

impl MetricValue {
    /// Builds the sparse histogram value from a dense [`Histogram`].
    #[must_use]
    pub fn from_histogram(h: &Histogram) -> Self {
        let buckets = h
            .buckets()
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect();
        MetricValue::Histogram {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            buckets,
        }
    }
}

/// An ordered, deduplicated set of `(name, value)` metric entries.
///
/// Entries are sorted by name; a later export under an existing name
/// replaces the earlier value. Serialization is a pure function of the
/// entries, so two identical runs produce byte-identical artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Builds a snapshot from raw entries (sorting and deduplicating;
    /// last write wins on duplicate names).
    #[must_use]
    pub fn from_entries(mut raw: Vec<(String, MetricValue)>) -> Self {
        // Stable sort keeps insertion order within equal names, then dedup
        // keeps the *last* recorded value for each name.
        raw.sort_by(|a, b| a.0.cmp(&b.0));
        let mut entries: Vec<(String, MetricValue)> = Vec::with_capacity(raw.len());
        for (name, value) in raw {
            match entries.last_mut() {
                Some(last) if last.0 == name => last.1 = value,
                _ => entries.push((name, value)),
            }
        }
        Snapshot { entries }
    }

    /// The sorted `(name, value)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics were exported.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a metric by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Convenience: the value of a counter metric, if present and a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience: the value of a gauge metric, if present and a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Folds another snapshot in, name by name: counters add, gauges add,
    /// histograms merge bucket-wise; names unique to `other` are inserted.
    /// This is the fleet-aggregation primitive — merging per-stream
    /// snapshots yields the fleet snapshot.
    ///
    /// Mismatched kinds under the same name keep `self`'s value (a schema
    /// bug upstream; the snapshot stays well-formed).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, theirs) in &other.entries {
            match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => {
                    let ours = &mut self.entries[i].1;
                    match (ours, theirs) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                        (
                            MetricValue::Histogram {
                                count,
                                sum,
                                max,
                                buckets,
                            },
                            MetricValue::Histogram {
                                count: c2,
                                sum: s2,
                                max: m2,
                                buckets: b2,
                            },
                        ) => {
                            *count += c2;
                            *sum = sum.saturating_add(*s2);
                            *max = (*max).max(*m2);
                            *buckets = merge_sparse(buckets, b2);
                        }
                        _ => {}
                    }
                }
                Err(i) => self.entries.insert(i, (name.clone(), theirs.clone())),
            }
        }
    }

    /// A copy of this snapshot with every name nested under `prefix`
    /// (dot-joined). An empty prefix returns an unchanged copy. This is how
    /// an already-aggregated snapshot (say, a fleet report's) is re-exported
    /// under a wider namespace.
    #[must_use]
    pub fn prefixed(&self, prefix: &str) -> Snapshot {
        if prefix.is_empty() {
            return self.clone();
        }
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, value)| (format!("{prefix}.{name}"), value.clone()))
                .collect(),
        }
    }

    /// Renders the snapshot as deterministic JSON:
    ///
    /// ```json
    /// {
    ///   "schema": "kalstream-obs/v1",
    ///   "metrics": {
    ///     "fleet.traffic.messages": 73977,
    ///     "source.delta": 1.0,
    ///     "ingest.tick_ns": {"count": 3, "sum": 900, "max": 400, "buckets": [[9, 3]]}
    ///   }
    /// }
    /// ```
    ///
    /// Keys are sorted, floats use Rust's shortest-round-trip formatting,
    /// non-finite gauges render as `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"kalstream-obs/v1\",\n  \"metrics\": {");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_string(&mut out, name);
            out.push_str(": ");
            match value {
                MetricValue::Counter(n) => {
                    let _ = write!(out, "{n}");
                }
                MetricValue::Gauge(v) => json_f64(&mut out, *v),
                MetricValue::Histogram {
                    count,
                    sum,
                    max,
                    buckets,
                } => {
                    let _ = write!(
                        out,
                        "{{\"count\": {count}, \"sum\": {sum}, \"max\": {max}, \"buckets\": ["
                    );
                    for (j, (idx, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{idx}, {n}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the snapshot as an aligned `name value` text table, one
    /// metric per line, sorted by name. Histograms render their summary
    /// (`count/sum/max/p50/p99`).
    #[must_use]
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            let _ = write!(out, "{name:width$}  ");
            match value {
                MetricValue::Counter(n) => {
                    let _ = write!(out, "{n}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{v:?}");
                }
                MetricValue::Histogram {
                    count, sum, max, ..
                } => {
                    let _ = write!(out, "count={count} sum={sum} max={max}");
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Merges two sparse `(index, count)` bucket lists, both ascending.
fn merge_sparse(a: &[(u32, u64)], b: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(ia, na)), Some(&(ib, nb))) => {
                use std::cmp::Ordering;
                match ia.cmp(&ib) {
                    Ordering::Less => {
                        out.push((ia, na));
                        i += 1;
                    }
                    Ordering::Greater => {
                        out.push((ib, nb));
                        j += 1;
                    }
                    Ordering::Equal => {
                        out.push((ia, na + nb));
                        i += 1;
                        j += 1;
                    }
                }
            }
            (Some(&(ia, na)), None) => {
                out.push((ia, na));
                i += 1;
            }
            (None, Some(&(ib, nb))) => {
                out.push((ib, nb));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Appends a JSON string literal (metric names are ASCII identifiers, but
/// escape defensively).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an f64 as JSON: shortest round-trip formatting, `null` for
/// non-finite values (which JSON cannot represent).
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut h = Histogram::new();
        h.record(3);
        h.record(700);
        Snapshot::from_entries(vec![
            ("b.gauge".into(), MetricValue::Gauge(1.5)),
            ("a.count".into(), MetricValue::Counter(7)),
            ("c.hist".into(), MetricValue::from_histogram(&h)),
        ])
    }

    #[test]
    fn entries_are_sorted_and_deduplicated() {
        let s = Snapshot::from_entries(vec![
            ("z".into(), MetricValue::Counter(1)),
            ("a".into(), MetricValue::Counter(2)),
            ("z".into(), MetricValue::Counter(3)),
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.entries()[0].0, "a");
        assert_eq!(s.counter("z"), Some(3), "last write wins");
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        let pos_a = a.find("a.count").unwrap();
        let pos_b = a.find("b.gauge").unwrap();
        let pos_c = a.find("c.hist").unwrap();
        assert!(pos_a < pos_b && pos_b < pos_c);
        assert!(a.contains("\"a.count\": 7"));
        assert!(a.contains("\"b.gauge\": 1.5"));
        assert!(a.contains("\"buckets\": [[2, 1], [10, 1]]"));
    }

    #[test]
    fn non_finite_gauges_render_null() {
        let s = Snapshot::from_entries(vec![("x".into(), MetricValue::Gauge(f64::NAN))]);
        assert!(s.to_json().contains("\"x\": null"));
    }

    #[test]
    fn merge_adds_counters_gauges_and_buckets() {
        let mut a = sample();
        let mut other_h = Histogram::new();
        other_h.record(3);
        other_h.record(1 << 20);
        let other = Snapshot::from_entries(vec![
            ("a.count".into(), MetricValue::Counter(5)),
            ("b.gauge".into(), MetricValue::Gauge(0.5)),
            ("c.hist".into(), MetricValue::from_histogram(&other_h)),
            ("d.new".into(), MetricValue::Counter(1)),
        ]);
        a.merge(&other);
        assert_eq!(a.counter("a.count"), Some(12));
        assert_eq!(a.gauge("b.gauge"), Some(2.0));
        assert_eq!(a.counter("d.new"), Some(1));
        match a.get("c.hist").unwrap() {
            MetricValue::Histogram {
                count,
                max,
                buckets,
                ..
            } => {
                assert_eq!(*count, 4);
                assert_eq!(*max, 1 << 20);
                assert_eq!(buckets.as_slice(), &[(2, 2), (10, 1), (21, 1)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn text_table_lists_every_metric() {
        let txt = sample().to_text();
        assert_eq!(txt.lines().count(), 3);
        assert!(txt.contains("a.count"));
        assert!(txt.contains("count=2"));
    }
}
