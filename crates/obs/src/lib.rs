//! # kalstream-obs — the unified observability layer
//!
//! Every measured claim in this repository (suppression rates, byte
//! accounting, shed/stale/gap counters, per-shard busy time) used to live in
//! ad-hoc structs wired by hand through `sim`, `core`, and each `exp_*`
//! binary. This crate gives those numbers one vocabulary and one export
//! path:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — plain-old-data instruments.
//!   Incrementing any of them is a field update on a value the caller
//!   already owns: **no allocation, no locking, no indirection** on the hot
//!   path. A [`Counter`] is layout-compatible with the bare `u64` it
//!   replaces and supports `+= 1` via `AddAssign`, so migrating a counter
//!   changes its type, not its call sites.
//! * [`Registry`] / [`Scope`] / [`Instrument`] — the export side. Off the
//!   hot path, a component implements [`Instrument`] to publish its
//!   instruments under dot-separated names (`source.resyncs`,
//!   `ingest.shard.2.stale_drops`); a [`Registry`] collects them into a
//!   [`Snapshot`].
//! * [`Snapshot`] — an ordered, deduplicated name → value map that
//!   serializes **deterministically** to JSON ([`Snapshot::to_json`]) and a
//!   text table ([`Snapshot::to_text`]). Two identical runs produce
//!   byte-identical artifacts — the property the CI regression gate and the
//!   `--metrics-out` flag on the experiment harness rely on.
//! * [`SpanTimer`] — a start/stop stage timer that records elapsed
//!   nanoseconds into a log₂ [`Histogram`] (ingest decode, filter
//!   predict/update, wire encode, link transit).
//!
//! ## Naming conventions
//!
//! Metric names are lowercase dot-separated paths: `<component>.<metric>`,
//! with optional interior instance segments (`stream.7.traffic.messages`).
//! Counters are nouns in the plural (`syncs`, `stale_drops`), gauges are
//! singular quantities (`delta`, `rmse`), histograms carry their unit as a
//! suffix (`tick_ns`). Aggregated fleet metrics live under `fleet.`,
//! per-stream metrics under `stream.<index>.`.
//!
//! The collection model is *pull*: components own their instruments and are
//! asked to export them, rather than pushing through a global. That keeps
//! ownership, borrowing, and determinism trivial — there is no hidden
//! shared state, and a snapshot is a pure function of the structs it reads.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod hist;
mod metric;
mod registry;
mod snapshot;
mod span;

pub use hist::{Histogram, HISTOGRAM_BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::{Instrument, Registry, Scope};
pub use snapshot::{MetricValue, Snapshot};
pub use span::SpanTimer;
