//! Stage timing: a start/stop timer that feeds a [`Histogram`].

use crate::Histogram;
use std::time::Instant;

/// A lightweight span timer for stage timing (ingest decode, filter
/// predict/update, wire encode, link transit).
///
/// Starting and stopping a span is one `Instant::now()` each — no
/// allocation — so spans can wrap hot-path stages without disturbing the
/// allocation-freedom gate. Wall-clock durations are inherently
/// nondeterministic, so span histograms are *reported* (snapshots, metrics
/// artifacts) but never folded into the deterministic experiment tables.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    started: Instant,
}

impl SpanTimer {
    /// Starts the span now.
    #[must_use]
    pub fn start() -> Self {
        SpanTimer {
            started: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since start (saturated to `u64::MAX`).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stops the span, recording the elapsed nanoseconds into `hist`.
    /// Returns the recorded value.
    pub fn stop(self, hist: &mut Histogram) -> u64 {
        let ns = self.elapsed_ns();
        hist.record(ns);
        ns
    }

    /// Times a closure, recording its elapsed nanoseconds into `hist`.
    pub fn time<R>(hist: &mut Histogram, f: impl FnOnce() -> R) -> R {
        let span = SpanTimer::start();
        let out = f();
        span.stop(hist);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_records_into_histogram() {
        let mut h = Histogram::new();
        let span = SpanTimer::start();
        let ns = span.stop(&mut h);
        assert_eq!(h.count(), 1);
        assert!(h.sum() == ns);
    }

    #[test]
    fn time_passes_the_closure_result_through() {
        let mut h = Histogram::new();
        let out = SpanTimer::time(&mut h, || 40 + 2);
        assert_eq!(out, 42);
        assert_eq!(h.count(), 1);
    }
}
