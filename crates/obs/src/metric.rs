//! Scalar instruments: monotone [`Counter`] and last-value [`Gauge`].

use core::fmt;

/// A monotonically increasing event count.
///
/// Layout-compatible with the bare `u64` it replaces: incrementing is a
/// single field update with no allocation or synchronization, and
/// `AddAssign<u64>` keeps existing `counter += 1` call sites compiling
/// unchanged. Equality, ordering, and hashing all defer to the underlying
/// count so counters can sit inside `Eq`/`Copy` report structs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Current count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Folds another counter in (fleet aggregation).
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

impl From<u64> for Counter {
    fn from(n: u64) -> Self {
        Counter(n)
    }
}

impl From<Counter> for u64 {
    fn from(c: Counter) -> Self {
        c.0
    }
}

impl core::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, n: u64) {
        self.0 += n;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A last-value-wins measurement (a configured δ, an observed RMSE).
///
/// Unlike a [`Counter`], a gauge carries no accumulation semantics of its
/// own: [`Gauge::set`] overwrites. Fleet aggregation of gauges is the
/// *caller's* decision (sum, max, mean) — [`crate::Snapshot::merge`] sums,
/// which is right for the additive gauges this workspace exports.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Gauge(f64);

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Gauge(0.0)
    }

    /// Current value.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Overwrites the value.
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }
}

impl From<f64> for Gauge {
    fn from(v: f64) -> Self {
        Gauge(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_a_u64_in_disguise() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c += 1;
        c.add(3);
        assert_eq!(c.get(), 5);
        assert_eq!(u64::from(c), 5);
        assert_eq!(Counter::from(5), c);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn counter_merge_adds() {
        let mut a = Counter::from(7);
        a.merge(Counter::from(35));
        assert_eq!(a.get(), 42);
    }

    #[test]
    fn gauge_last_value_wins() {
        let mut g = Gauge::new();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }
}
