//! Fixed-bucket log₂ histogram.

use core::time::Duration;

/// Number of buckets in a [`Histogram`]. Fixed so recording never
/// allocates and two histograms always merge bucket-for-bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log₂ fixed-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Bucket layout:
///
/// * bucket `0` holds exactly the value `0`;
/// * bucket `i` for `1 ≤ i ≤ 62` holds values in `[2^(i-1), 2^i)`;
/// * bucket `63` holds everything from `2^62` up.
///
/// Recording is branch-light integer arithmetic on inline storage — no
/// allocation, ever — so the timer API can sit inside the ingest and
/// filter hot paths without perturbing the allocation-freedom gate
/// (`bench_smoke`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Index of the bucket that holds `value`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Exclusive upper bound of bucket `index` (inclusive for bucket 0,
    /// saturated to `u64::MAX` for the open-ended last bucket).
    ///
    /// # Panics
    /// Panics when `index ≥ HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_bound(index: usize) -> u64 {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        match index {
            0 => 0,
            i if i == HISTOGRAM_BUCKETS - 1 => u64::MAX,
            i => 1u64 << i,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Records a duration as whole nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples recorded.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0 ≤ q ≤ 1`),
    /// or 0 when empty. Coarse by construction — log₂ buckets bound the
    /// answer to within 2× — which is the right fidelity for a regression
    /// gate and costs nothing to maintain.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Folds another histogram in (fleet aggregation): counts, sums, and
    /// buckets add; max takes the max.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket 0 is exactly zero.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Bucket i covers [2^(i-1), 2^i): both edges of every bucket.
        for i in 1..=62usize {
            let lo = 1u64 << (i - 1);
            let hi_minus_one = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(
                Histogram::bucket_index(hi_minus_one),
                i,
                "upper edge of bucket {i}"
            );
        }
        // Everything from 2^62 lands in the open-ended final bucket.
        assert_eq!(Histogram::bucket_index(1u64 << 62), 63);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_match_indices() {
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(1), 2);
        assert_eq!(Histogram::bucket_bound(10), 1024);
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // bound(index(v)) > v for all nonzero v below the last bucket.
        for v in [1u64, 2, 3, 7, 1023, 1024, (1 << 61) + 1] {
            assert!(
                Histogram::bucket_bound(Histogram::bucket_index(v)) > v,
                "v = {v}"
            );
        }
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 251.5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[3], 1); // 5 ∈ [4, 8)
        assert_eq!(h.buckets()[10], 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn quantile_is_bucket_upper_bound() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(3); // bucket 2, bound 4
        }
        h.record(1 << 20); // bucket 21
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(0.99), 4);
        assert_eq!(h.quantile(1.0), 1 << 21);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(3);
        a.record(100);
        b.record(3);
        b.record(1 << 40);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 1 << 40);
        assert_eq!(a.buckets()[2], 2);
        let mut direct = Histogram::new();
        for v in [3u64, 100, 3, 1 << 40] {
            direct.record(v);
        }
        assert_eq!(a, direct, "merge must equal recording the union");
    }

    #[test]
    fn record_duration_uses_nanos() {
        let mut h = Histogram::new();
        h.record_duration(Duration::from_micros(1));
        assert_eq!(h.sum(), 1000);
    }
}
