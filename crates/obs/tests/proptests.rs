//! Property-based tests for the observability layer: histogram bucketing
//! invariants, snapshot determinism, and merge associativity with plain
//! arithmetic as the reference model.

use kalstream_obs::{Counter, Histogram, MetricValue, Registry, Snapshot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_bucketing_is_total_and_ordered(
        values in prop::collection::vec(0u64..u64::MAX, 1..200),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            let idx = Histogram::bucket_index(v);
            prop_assert!(idx < kalstream_obs::HISTOGRAM_BUCKETS);
            // The bucket's bound is an upper bound for its members.
            if idx < kalstream_obs::HISTOGRAM_BUCKETS - 1 {
                prop_assert!(v <= Histogram::bucket_bound(idx));
                if idx > 0 {
                    prop_assert!(v >= Histogram::bucket_bound(idx - 1));
                }
            }
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn histogram_merge_equals_union_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha, hu);
    }

    #[test]
    fn counter_tracks_u64_reference_model(
        increments in prop::collection::vec(0u64..1_000, 0..100),
    ) {
        let mut c = Counter::new();
        let mut reference = 0u64;
        for &n in &increments {
            c += n;
            reference += n;
        }
        prop_assert_eq!(c.get(), reference);
        prop_assert_eq!(c.to_string(), reference.to_string());
    }

    #[test]
    fn snapshot_serialization_is_deterministic(
        metrics in prop::collection::vec((0u32..50, 0u64..1_000_000), 1..60),
    ) {
        // Build the same registry twice (in the same order) and once in
        // reverse: all three must serialize byte-identically, because a
        // snapshot is a pure sorted function of its entries.
        let build = |pairs: &[(u32, u64)]| {
            let mut reg = Registry::new();
            for &(id, v) in pairs {
                let mut scope = reg.scope("stream");
                scope.scope(&id.to_string()).counter("events", v);
            }
            reg.snapshot().to_json()
        };
        let forward = build(&metrics);
        let again = build(&metrics);
        let reversed: Vec<_> = metrics.iter().rev().copied().collect();
        let backward = build(&reversed);
        prop_assert_eq!(&forward, &again);
        // Reversal changes which duplicate wins; restrict the claim to
        // duplicate-free inputs.
        let mut ids: Vec<u32> = metrics.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() == metrics.len() {
            prop_assert_eq!(&forward, &backward);
        }
    }

    #[test]
    fn snapshot_merge_matches_scalar_addition(
        a in prop::collection::vec((0u32..20, 0u64..1_000), 0..30),
        b in prop::collection::vec((0u32..20, 0u64..1_000), 0..30),
    ) {
        // Reference model: plain u64 sums per key.
        let mut expected = std::collections::BTreeMap::new();
        let to_snapshot = |pairs: &[(u32, u64)]| {
            let mut totals = std::collections::BTreeMap::new();
            for &(id, v) in pairs {
                *totals.entry(id).or_insert(0u64) += v;
            }
            Snapshot::from_entries(
                totals
                    .iter()
                    .map(|(id, &v)| (format!("k.{id}"), MetricValue::Counter(v)))
                    .collect(),
            )
        };
        for &(id, v) in a.iter().chain(b.iter()) {
            *expected.entry(id).or_insert(0u64) += v;
        }
        let mut merged = to_snapshot(&a);
        merged.merge(&to_snapshot(&b));
        for (id, &v) in &expected {
            prop_assert_eq!(merged.counter(&format!("k.{id}")), Some(v));
        }
        prop_assert_eq!(merged.len(), expected.len());
    }
}
