//! Property-based tests for the simulation substrate: link ordering, loss
//! accounting, and metric arithmetic for arbitrary schedules.

use bytes::Bytes;
use kalstream_sim::{ErrorMetrics, Link, TrafficMetrics};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn link_is_fifo_and_conserves_messages(
        latency in 0u64..10,
        sends in prop::collection::vec(0u64..100, 1..50),
    ) {
        let mut sorted = sends.clone();
        sorted.sort_unstable();
        let mut link = Link::new(latency, 0);
        for (i, &t) in sorted.iter().enumerate() {
            link.send(t, Bytes::from(vec![i as u8]));
        }
        // Deliver everything far in the future: all messages, send order.
        let got: Vec<u8> = link.deliver(1_000).map(|m| m.payload[0]).collect();
        prop_assert_eq!(got.len(), sorted.len());
        for (i, &b) in got.iter().enumerate() {
            prop_assert_eq!(b as usize, i);
        }
        prop_assert_eq!(link.traffic().messages(), sorted.len() as u64);
    }

    #[test]
    fn link_never_delivers_early(
        latency in 1u64..20,
        t_send in 0u64..100,
        probe_offset in 0u64..40,
    ) {
        let mut link = Link::new(latency, 0);
        link.send(t_send, Bytes::from_static(b"x"));
        let probe = t_send + probe_offset;
        let delivered = link.deliver(probe).count();
        if probe_offset < latency {
            prop_assert_eq!(delivered, 0);
        } else {
            prop_assert_eq!(delivered, 1);
        }
    }

    #[test]
    fn lossy_link_conserves_and_is_deterministic(
        loss in 0.0..0.99f64,
        seed in 0u64..1000,
        n in 1usize..300,
    ) {
        let run = || {
            let mut link = Link::lossy(0, 0, loss, seed);
            for t in 0..n as u64 {
                link.send(t, Bytes::from_static(b"p"));
            }
            let delivered = link.deliver(n as u64).count() as u64;
            (delivered, link.dropped(), link.traffic().messages())
        };
        let (delivered, dropped, charged) = run();
        prop_assert_eq!(delivered + dropped, n as u64);
        prop_assert_eq!(charged, n as u64, "sender is charged for drops too");
        prop_assert_eq!(run(), (delivered, dropped, charged));
    }

    #[test]
    fn error_metrics_aggregate_correctly(
        delta in 0.1..5.0f64,
        errors in prop::collection::vec(0.0..10.0f64, 1..100),
    ) {
        let mut m = ErrorMetrics::new(delta);
        for &e in &errors {
            m.record(e);
        }
        let n = errors.len() as f64;
        let max = errors.iter().fold(0.0f64, |a, &b| a.max(b));
        let mean = errors.iter().sum::<f64>() / n;
        let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / n).sqrt();
        let violations = errors
            .iter()
            .filter(|&&e| e > delta * (1.0 + 1e-9) + 1e-12)
            .count() as u64;
        prop_assert_eq!(m.ticks(), errors.len() as u64);
        prop_assert!((m.max_abs() - max).abs() < 1e-12);
        prop_assert!((m.mean_abs() - mean).abs() < 1e-9);
        prop_assert!((m.rmse() - rmse).abs() < 1e-9);
        prop_assert_eq!(m.violations(), violations);
    }

    #[test]
    fn traffic_merge_is_associative_and_commutative(
        a in prop::collection::vec(1usize..1000, 0..20),
        b in prop::collection::vec(1usize..1000, 0..20),
    ) {
        let fill = |sizes: &[usize]| {
            let mut t = TrafficMetrics::default();
            for &s in sizes {
                t.record(s);
            }
            t
        };
        let mut ab = fill(&a);
        ab.merge(&fill(&b));
        let mut ba = fill(&b);
        ba.merge(&fill(&a));
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.messages(), (a.len() + b.len()) as u64);
        prop_assert_eq!(
            ab.bytes(),
            a.iter().chain(b.iter()).map(|&s| s as u64).sum::<u64>()
        );
    }
}
