//! The simulated network link with latency, fault injection, and traffic
//! accounting.

use std::collections::VecDeque;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::{
    metrics::{FaultCounters, TrafficMetrics},
    Tick,
};

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Tick at which the producer transmitted.
    pub sent_at: Tick,
    /// Tick at which the consumer receives.
    pub deliver_at: Tick,
    /// Which stream this message belongs to — the multiplexing key the
    /// ingest path shards on. Single-stream sessions leave it 0.
    pub stream_id: u32,
    /// Opaque payload (the wire encoding is the protocol's business).
    pub payload: Bytes,
}

/// Fault-injection profile of a [`Link`]: independent per-message loss,
/// duplication, reordering, and uniform delay jitter, all driven by one
/// seeded RNG so every schedule is reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Independent per-message drop probability, in `[0, 1)`.
    pub loss: f64,
    /// Independent per-message duplication probability, in `[0, 1)`. The
    /// duplicate takes its own jitter draw, so copies may arrive at
    /// different ticks; the sender is charged for one message (it sent one
    /// — the network copied it).
    pub dup: f64,
    /// Independent probability, in `[0, 1)`, of pushing a message 1–2 extra
    /// ticks late so it lands behind later traffic.
    pub reorder: f64,
    /// Maximum extra delivery delay in ticks; each message draws uniformly
    /// from `0..=jitter`. Zero disables jitter.
    pub jitter: Tick,
    /// RNG seed driving every fault draw.
    pub seed: u64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            jitter: 0,
            seed: 0,
        }
    }
}

impl LinkFaults {
    /// Loss-only faults — the profile [`Link::lossy`] has always modelled.
    pub fn lossy(loss: f64, seed: u64) -> Self {
        LinkFaults {
            loss,
            seed,
            ..LinkFaults::default()
        }
    }

    /// `true` when no fault can ever fire (the link behaves reliably and
    /// skips the RNG entirely).
    pub fn is_noop(&self) -> bool {
        self.loss == 0.0 && self.dup == 0.0 && self.reorder == 0.0 && self.jitter == 0
    }

    fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.loss),
            "loss_prob must be in [0, 1)"
        );
        assert!((0.0..1.0).contains(&self.dup), "dup_prob must be in [0, 1)");
        assert!(
            (0.0..1.0).contains(&self.reorder),
            "reorder_prob must be in [0, 1)"
        );
    }
}

/// A unidirectional link with fixed base latency, optional fault injection,
/// and FIFO-by-delivery-time ordering.
///
/// A reliable link keeps delivery order equal to send order, so the
/// `VecDeque` stays sorted by construction and delivery is O(1) amortised;
/// jitter and reordering insert at a sorted position instead. Per-message
/// overhead bytes model framing/headers so that "many small corrections" and
/// "few large syncs" are priced honestly in experiment T3.
#[derive(Debug, Clone)]
pub struct Link {
    latency: Tick,
    overhead_bytes: usize,
    /// Always sorted by `deliver_at`, ascending (ties keep insertion order).
    in_flight: VecDeque<Message>,
    traffic: TrafficMetrics,
    /// Fault profile with its RNG; `None` for a reliable link.
    faults: Option<(LinkFaults, SmallRng)>,
    counters: FaultCounters,
}

impl Link {
    /// Creates a reliable link with `latency` ticks delivery delay and
    /// `overhead_bytes` of framing charged per message.
    pub fn new(latency: Tick, overhead_bytes: usize) -> Self {
        Link {
            latency,
            overhead_bytes,
            in_flight: VecDeque::new(),
            traffic: TrafficMetrics::default(),
            faults: None,
            counters: FaultCounters::default(),
        }
    }

    /// Creates a link with the given fault-injection profile. A no-op
    /// profile yields a reliable link (no RNG is ever consulted).
    ///
    /// # Panics
    /// Panics when any probability is outside `[0, 1)`.
    pub fn with_faults(latency: Tick, overhead_bytes: usize, faults: LinkFaults) -> Self {
        faults.validate();
        let mut link = Link::new(latency, overhead_bytes);
        if !faults.is_noop() {
            link.faults = Some((faults, SmallRng::seed_from_u64(faults.seed)));
        }
        link
    }

    /// Creates a link that independently drops each message with
    /// probability `loss_prob` (deterministically, from `seed`). The sender
    /// is still charged for dropped messages — it transmitted them; the
    /// network lost them.
    ///
    /// The suppression protocol's guarantee assumes delivery; the
    /// `exp_loss_recovery` experiment measures what loss costs and how the
    /// ack-based recovery repairs it.
    ///
    /// # Panics
    /// Panics when `loss_prob ∉ [0, 1)`.
    pub fn lossy(latency: Tick, overhead_bytes: usize, loss_prob: f64, seed: u64) -> Self {
        Link::with_faults(latency, overhead_bytes, LinkFaults::lossy(loss_prob, seed))
    }

    /// Messages dropped by the link so far.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped
    }

    /// All fault counters (drops, duplicates, reorders).
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    /// A zero-latency link with a typical 28-byte (IP+UDP) header charge.
    pub fn instant() -> Self {
        Link::new(0, 28)
    }

    /// Link latency in ticks.
    pub fn latency(&self) -> Tick {
        self.latency
    }

    /// Accumulated traffic counters.
    pub fn traffic(&self) -> &TrafficMetrics {
        &self.traffic
    }

    /// Transmits `payload` at tick `now`; it will deliver at `now + latency`
    /// (plus any injected jitter/reorder delay) unless the link drops it.
    pub fn send(&mut self, now: Tick, payload: Bytes) {
        self.send_tagged(now, 0, payload);
    }

    /// Like [`Link::send`], tagging the message with the stream it belongs
    /// to — the multiplexed form the ingest path consumes, where one link
    /// carries frames from many sessions.
    pub fn send_tagged(&mut self, now: Tick, stream_id: u32, payload: Bytes) {
        self.traffic.record(payload.len() + self.overhead_bytes);
        let Some((f, rng)) = &mut self.faults else {
            self.in_flight.push_back(Message {
                sent_at: now,
                deliver_at: now + self.latency,
                stream_id,
                payload,
            });
            return;
        };
        // Every draw is guarded by its probability so that configurations
        // not using a fault consume no RNG values for it — a loss-only link
        // replays the exact historical draw sequence, keeping recorded
        // experiments (exp_e11_loss) bit-identical.
        if f.loss > 0.0 && rng.random::<f64>() < f.loss {
            self.counters.dropped += 1;
            return;
        }
        let mut deliver_at = now + self.latency;
        if f.jitter > 0 {
            deliver_at += rng.random::<u64>() % (f.jitter + 1);
        }
        if f.reorder > 0.0 && rng.random::<f64>() < f.reorder {
            deliver_at += 1 + rng.random::<u64>() % 2;
            self.counters.reordered += 1;
        }
        let dup_at = if f.dup > 0.0 && rng.random::<f64>() < f.dup {
            let mut at = now + self.latency;
            if f.jitter > 0 {
                at += rng.random::<u64>() % (f.jitter + 1);
            }
            Some(at)
        } else {
            None
        };
        let msg = Message {
            sent_at: now,
            deliver_at,
            stream_id,
            payload,
        };
        if let Some(at) = dup_at {
            self.counters.duplicated += 1;
            let mut dup = msg.clone();
            dup.deliver_at = at;
            // Insert the original first so that at equal delivery ticks the
            // original precedes its duplicate.
            self.insert_sorted(msg);
            self.insert_sorted(dup);
        } else {
            self.insert_sorted(msg);
        }
    }

    /// Inserts keeping `in_flight` sorted by `deliver_at`, preserving
    /// insertion order among equal ticks.
    fn insert_sorted(&mut self, msg: Message) {
        if self
            .in_flight
            .back()
            .is_none_or(|m| m.deliver_at <= msg.deliver_at)
        {
            self.in_flight.push_back(msg); // common case: already in order
            return;
        }
        let pos = self
            .in_flight
            .partition_point(|m| m.deliver_at <= msg.deliver_at);
        self.in_flight.insert(pos, msg);
    }

    /// Pops every message due at or before `now`, in delivery order.
    pub fn deliver(&mut self, now: Tick) -> impl Iterator<Item = Message> + '_ {
        std::iter::from_fn(move || {
            if self.in_flight.front().is_some_and(|m| m.deliver_at <= now) {
                self.in_flight.pop_front()
            } else {
                None
            }
        })
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn zero_latency_delivers_same_tick() {
        let mut link = Link::new(0, 0);
        link.send(5, payload(8));
        let got: Vec<_> = link.deliver(5).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].sent_at, 5);
        assert_eq!(got[0].deliver_at, 5);
    }

    #[test]
    fn latency_defers_delivery() {
        let mut link = Link::new(3, 0);
        link.send(10, payload(8));
        assert_eq!(link.deliver(10).count(), 0);
        assert_eq!(link.deliver(12).count(), 0);
        assert_eq!(link.in_flight(), 1);
        assert_eq!(link.deliver(13).count(), 1);
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut link = Link::new(1, 0);
        link.send(0, Bytes::from_static(b"a"));
        link.send(0, Bytes::from_static(b"b"));
        link.send(1, Bytes::from_static(b"c"));
        let got: Vec<_> = link.deliver(2).map(|m| m.payload).collect();
        assert_eq!(
            got,
            vec![
                Bytes::from_static(b"a"),
                Bytes::from_static(b"b"),
                Bytes::from_static(b"c")
            ]
        );
    }

    #[test]
    fn tagged_sends_carry_their_stream_id() {
        let mut link = Link::new(0, 0);
        link.send_tagged(0, 42, payload(4));
        link.send(0, payload(4)); // untagged defaults to stream 0
        let ids: Vec<u32> = link.deliver(0).map(|m| m.stream_id).collect();
        assert_eq!(ids, vec![42, 0]);
    }

    #[test]
    fn traffic_counts_messages_and_bytes_with_overhead() {
        let mut link = Link::new(0, 28);
        link.send(0, payload(10));
        link.send(1, payload(20));
        assert_eq!(link.traffic().messages(), 2);
        assert_eq!(link.traffic().bytes(), 10 + 20 + 2 * 28);
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let run = || {
            let mut link = Link::lossy(0, 0, 0.5, 99);
            for t in 0..1000 {
                link.send(t, payload(1));
            }
            let delivered = link.deliver(1000).count();
            (delivered, link.dropped())
        };
        let (delivered, dropped) = run();
        assert_eq!(delivered as u64 + dropped, 1000);
        // ~50% drop rate, and the sender is charged for all 1000.
        assert!(dropped > 350 && dropped < 650, "dropped {dropped}");
        assert_eq!(
            run(),
            (delivered, dropped),
            "loss must be deterministic per seed"
        );
    }

    #[test]
    fn zero_loss_prob_is_reliable() {
        let mut link = Link::lossy(0, 0, 0.0, 1);
        for t in 0..100 {
            link.send(t, payload(1));
        }
        assert_eq!(link.deliver(100).count(), 100);
        assert_eq!(link.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "loss_prob")]
    fn invalid_loss_prob_rejected() {
        let _ = Link::lossy(0, 0, 1.5, 1);
    }

    #[test]
    #[should_panic(expected = "dup_prob")]
    fn invalid_dup_prob_rejected() {
        let _ = Link::with_faults(
            0,
            0,
            LinkFaults {
                dup: 1.0,
                ..LinkFaults::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "reorder_prob")]
    fn invalid_reorder_prob_rejected() {
        let _ = Link::with_faults(
            0,
            0,
            LinkFaults {
                reorder: -0.1,
                ..LinkFaults::default()
            },
        );
    }

    #[test]
    fn duplication_delivers_copies_and_counts() {
        let mut link = Link::with_faults(
            0,
            0,
            LinkFaults {
                dup: 0.5,
                seed: 7,
                ..LinkFaults::default()
            },
        );
        for t in 0..200 {
            link.send(t, payload(1));
        }
        let delivered = link.deliver(200).count() as u64;
        assert_eq!(delivered, 200 + link.fault_counters().duplicated);
        assert!(
            link.fault_counters().duplicated > 50,
            "dups {}",
            link.fault_counters().duplicated
        );
        // Duplication charges the sender once per send.
        assert_eq!(link.traffic().messages(), 200);
    }

    #[test]
    fn jitter_delays_within_bound_and_keeps_sorted_delivery() {
        let mut link = Link::with_faults(
            2,
            0,
            LinkFaults {
                jitter: 3,
                seed: 11,
                ..LinkFaults::default()
            },
        );
        for t in 0..100 {
            link.send(t, payload(1));
        }
        let msgs: Vec<_> = link.deliver(1000).collect();
        assert_eq!(msgs.len(), 100);
        let mut prev = 0;
        for m in &msgs {
            assert!(m.deliver_at >= m.sent_at + 2 && m.deliver_at <= m.sent_at + 5);
            assert!(m.deliver_at >= prev, "delivery must be tick-sorted");
            prev = m.deliver_at;
        }
    }

    #[test]
    fn reordering_swaps_messages_and_counts() {
        let mut link = Link::with_faults(
            0,
            0,
            LinkFaults {
                reorder: 0.3,
                seed: 5,
                ..LinkFaults::default()
            },
        );
        for t in 0..200 {
            link.send_tagged(t, t as u32, payload(1));
        }
        let order: Vec<u32> = link.deliver(1000).map(|m| m.stream_id).collect();
        assert_eq!(order.len(), 200);
        assert!(link.fault_counters().reordered > 20);
        let inversions = order.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(
            inversions > 0,
            "reordering must produce out-of-order delivery"
        );
    }

    #[test]
    fn loss_only_faults_match_legacy_lossy_draw_sequence() {
        // Recorded experiments depend on the exact draw sequence of a
        // loss-only link: a fault-capable link configured for loss only must
        // drop the identical messages.
        let mut legacy = Link::lossy(0, 0, 0.1, 4242);
        let mut faulty = Link::with_faults(
            0,
            0,
            LinkFaults {
                loss: 0.1,
                seed: 4242,
                ..LinkFaults::default()
            },
        );
        for t in 0..2000 {
            legacy.send_tagged(t, t as u32, payload(1));
            faulty.send_tagged(t, t as u32, payload(1));
        }
        let a: Vec<u32> = legacy.deliver(2000).map(|m| m.stream_id).collect();
        let b: Vec<u32> = faulty.deliver(2000).map(|m| m.stream_id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn noop_faults_behave_reliably() {
        let mut link = Link::with_faults(1, 0, LinkFaults::default());
        for t in 0..50 {
            link.send(t, payload(1));
        }
        assert_eq!(link.deliver(51).count(), 50);
        assert_eq!(link.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn deliver_is_lazily_bounded() {
        let mut link = Link::new(5, 0);
        for t in 0..10 {
            link.send(t, payload(1));
        }
        // At tick 7, messages sent at 0..=2 are due.
        assert_eq!(link.deliver(7).count(), 3);
        assert_eq!(link.in_flight(), 7);
    }
}
