//! The simulated network link with latency and traffic accounting.

use std::collections::VecDeque;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::{metrics::TrafficMetrics, Tick};

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Tick at which the producer transmitted.
    pub sent_at: Tick,
    /// Tick at which the consumer receives.
    pub deliver_at: Tick,
    /// Which stream this message belongs to — the multiplexing key the
    /// ingest path shards on. Single-stream sessions leave it 0.
    pub stream_id: u32,
    /// Opaque payload (the wire encoding is the protocol's business).
    pub payload: Bytes,
}

/// A unidirectional source→server link with fixed latency and FIFO delivery.
///
/// Fixed latency keeps delivery order equal to send order, so a simple
/// `VecDeque` suffices and delivery is O(1) amortised. Per-message overhead
/// bytes model framing/headers so that "many small corrections" and "few
/// large syncs" are priced honestly in experiment T3.
#[derive(Debug, Clone)]
pub struct Link {
    latency: Tick,
    overhead_bytes: usize,
    in_flight: VecDeque<Message>,
    traffic: TrafficMetrics,
    /// Independent per-message drop probability with its RNG; `None` for a
    /// reliable link.
    loss: Option<(f64, SmallRng)>,
    dropped: u64,
}

impl Link {
    /// Creates a link with `latency` ticks delivery delay and
    /// `overhead_bytes` of framing charged per message.
    pub fn new(latency: Tick, overhead_bytes: usize) -> Self {
        Link {
            latency,
            overhead_bytes,
            in_flight: VecDeque::new(),
            traffic: TrafficMetrics::default(),
            loss: None,
            dropped: 0,
        }
    }

    /// Creates a link that independently drops each message with
    /// probability `loss_prob` (deterministically, from `seed`). The sender
    /// is still charged for dropped messages — it transmitted them; the
    /// network lost them.
    ///
    /// The suppression protocol's guarantee assumes delivery; the
    /// `exp_loss_recovery` experiment measures what loss costs and how the
    /// heartbeat bounds the damage.
    ///
    /// # Panics
    /// Panics when `loss_prob ∉ [0, 1)`.
    pub fn lossy(latency: Tick, overhead_bytes: usize, loss_prob: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&loss_prob), "loss_prob must be in [0, 1)");
        let mut link = Link::new(latency, overhead_bytes);
        if loss_prob > 0.0 {
            link.loss = Some((loss_prob, SmallRng::seed_from_u64(seed)));
        }
        link
    }

    /// Messages dropped by the link so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// A zero-latency link with a typical 28-byte (IP+UDP) header charge.
    pub fn instant() -> Self {
        Link::new(0, 28)
    }

    /// Link latency in ticks.
    pub fn latency(&self) -> Tick {
        self.latency
    }

    /// Accumulated traffic counters.
    pub fn traffic(&self) -> &TrafficMetrics {
        &self.traffic
    }

    /// Transmits `payload` at tick `now`; it will deliver at `now + latency`
    /// unless the (lossy) link drops it.
    pub fn send(&mut self, now: Tick, payload: Bytes) {
        self.send_tagged(now, 0, payload);
    }

    /// Like [`Link::send`], tagging the message with the stream it belongs
    /// to — the multiplexed form the ingest path consumes, where one link
    /// carries frames from many sessions.
    pub fn send_tagged(&mut self, now: Tick, stream_id: u32, payload: Bytes) {
        self.traffic.record(payload.len() + self.overhead_bytes);
        if let Some((prob, rng)) = &mut self.loss {
            if rng.random::<f64>() < *prob {
                self.dropped += 1;
                return;
            }
        }
        self.in_flight.push_back(Message {
            sent_at: now,
            deliver_at: now + self.latency,
            stream_id,
            payload,
        });
    }

    /// Pops every message due at or before `now`, in send order.
    pub fn deliver(&mut self, now: Tick) -> impl Iterator<Item = Message> + '_ {
        std::iter::from_fn(move || {
            if self.in_flight.front().is_some_and(|m| m.deliver_at <= now) {
                self.in_flight.pop_front()
            } else {
                None
            }
        })
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn zero_latency_delivers_same_tick() {
        let mut link = Link::new(0, 0);
        link.send(5, payload(8));
        let got: Vec<_> = link.deliver(5).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].sent_at, 5);
        assert_eq!(got[0].deliver_at, 5);
    }

    #[test]
    fn latency_defers_delivery() {
        let mut link = Link::new(3, 0);
        link.send(10, payload(8));
        assert_eq!(link.deliver(10).count(), 0);
        assert_eq!(link.deliver(12).count(), 0);
        assert_eq!(link.in_flight(), 1);
        assert_eq!(link.deliver(13).count(), 1);
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut link = Link::new(1, 0);
        link.send(0, Bytes::from_static(b"a"));
        link.send(0, Bytes::from_static(b"b"));
        link.send(1, Bytes::from_static(b"c"));
        let got: Vec<_> = link.deliver(2).map(|m| m.payload).collect();
        assert_eq!(got, vec![Bytes::from_static(b"a"), Bytes::from_static(b"b"), Bytes::from_static(b"c")]);
    }

    #[test]
    fn tagged_sends_carry_their_stream_id() {
        let mut link = Link::new(0, 0);
        link.send_tagged(0, 42, payload(4));
        link.send(0, payload(4)); // untagged defaults to stream 0
        let ids: Vec<u32> = link.deliver(0).map(|m| m.stream_id).collect();
        assert_eq!(ids, vec![42, 0]);
    }

    #[test]
    fn traffic_counts_messages_and_bytes_with_overhead() {
        let mut link = Link::new(0, 28);
        link.send(0, payload(10));
        link.send(1, payload(20));
        assert_eq!(link.traffic().messages(), 2);
        assert_eq!(link.traffic().bytes(), 10 + 20 + 2 * 28);
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let run = || {
            let mut link = Link::lossy(0, 0, 0.5, 99);
            for t in 0..1000 {
                link.send(t, payload(1));
            }
            let delivered = link.deliver(1000).count();
            (delivered, link.dropped())
        };
        let (delivered, dropped) = run();
        assert_eq!(delivered as u64 + dropped, 1000);
        // ~50% drop rate, and the sender is charged for all 1000.
        assert!(dropped > 350 && dropped < 650, "dropped {dropped}");
        assert_eq!(run(), (delivered, dropped), "loss must be deterministic per seed");
    }

    #[test]
    fn zero_loss_prob_is_reliable() {
        let mut link = Link::lossy(0, 0, 0.0, 1);
        for t in 0..100 {
            link.send(t, payload(1));
        }
        assert_eq!(link.deliver(100).count(), 100);
        assert_eq!(link.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "loss_prob")]
    fn invalid_loss_prob_rejected() {
        let _ = Link::lossy(0, 0, 1.5, 1);
    }

    #[test]
    fn deliver_is_lazily_bounded() {
        let mut link = Link::new(5, 0);
        for t in 0..10 {
            link.send(t, payload(1));
        }
        // At tick 7, messages sent at 0..=2 are due.
        assert_eq!(link.deliver(7).count(), 3);
        assert_eq!(link.in_flight(), 7);
    }
}
