//! The producer↔consumer transport seam.
//!
//! Everything a session needs from "the network" is four data movements —
//! forward payloads out, forward payloads in, feedback out, feedback in —
//! plus tick/lifecycle hooks and traffic accounting. [`Transport`] names
//! exactly that seam, so the same protocol endpoints can run over:
//!
//! * [`SimTransport`] — the deterministic in-process pair of [`Link`]s this
//!   crate has always modelled (latency, seeded fault injection, exact
//!   byte accounting). Every recorded experiment runs here.
//! * `kalstream-net`'s TCP transport — real sockets, real backpressure,
//!   the same wire-v3 frames. Bit-identity tests drive both from one
//!   schedule and assert identical consumer state.
//!
//! The trait is deliberately tick-oriented rather than future-oriented:
//! the protocol's precision guarantee is stated per tick, so even a real
//! socket implementation surfaces deliveries at tick granularity
//! ([`Transport::recv`] drains whatever the wire has produced for tick
//! `now`). Implementations own their clocking — the sim decides delivery
//! from `deliver_at`, a socket from what has actually arrived.

use bytes::Bytes;

use crate::{
    metrics::{FaultCounters, TrafficMetrics},
    Link, LinkFaults, Tick,
};

/// Seed offset deriving the reverse (feedback) link's RNG from the forward
/// seed, so the two directions draw independent fault schedules. Public so
/// that out-of-crate transports replicating the sim's fault schedule (the
/// net crate's bit-identity harness) derive identical reverse-link draws.
pub const ACK_SEED_OFFSET: u64 = 0x9E37_79B9_7F4A_7C15;

/// Traffic snapshot of one transport: both directions plus forward-path
/// fault injections (the direction the precision contract cares about).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransportStats {
    /// Source→server traffic (what [`crate::SessionReport::traffic`] records).
    pub forward: TrafficMetrics,
    /// Server→source traffic (acks and bound directives).
    pub feedback: TrafficMetrics,
    /// Fault injections on the forward path (drops, dups, reorders).
    pub faults: FaultCounters,
}

/// A bidirectional producer↔consumer message channel at tick granularity.
///
/// Ordering contract, load-bearing for bit-identity across implementations:
/// within one direction, payloads surface in delivery order (send order for
/// a reliable transport); [`Transport::recv`] at tick `now` yields *every*
/// payload due at or before `now`, exactly once.
pub trait Transport {
    /// Queues one forward payload from `stream_id` at tick `now`.
    fn send(&mut self, now: Tick, stream_id: u32, payload: Bytes);

    /// Surfaces every forward payload due at `now` into `sink`, in
    /// delivery order.
    fn recv(&mut self, now: Tick, sink: &mut dyn FnMut(u32, Bytes));

    /// Queues one feedback payload (ack / bound directive) for `stream_id`
    /// at tick `now`.
    fn send_feedback(&mut self, now: Tick, stream_id: u32, payload: Bytes);

    /// Surfaces every feedback payload due at `now` into `sink`, in
    /// delivery order.
    fn recv_feedback(&mut self, now: Tick, sink: &mut dyn FnMut(u32, Bytes));

    /// Tick boundary: implementations that batch (a socket transport
    /// assembling frames) flush here. The sim delivers eagerly, so the
    /// default is a no-op.
    fn end_tick(&mut self, _now: Tick) {}

    /// Graceful teardown: drain queued traffic and release the channel.
    /// In-process transports have nothing to release.
    fn shutdown(&mut self) {}

    /// Accumulated traffic/fault accounting.
    fn stats(&self) -> TransportStats;
}

/// The deterministic in-process transport: a forward [`Link`] and a reverse
/// [`Link`] whose fault RNG seeds from the forward seed via
/// [`ACK_SEED_OFFSET`] — exactly the pair [`crate::Session::run`] has
/// always constructed, now behind the trait.
#[derive(Debug, Clone)]
pub struct SimTransport {
    forward: Link,
    feedback: Link,
}

impl SimTransport {
    /// A reliable transport with `latency` ticks of delay and
    /// `overhead_bytes` of per-message framing in both directions.
    pub fn new(latency: Tick, overhead_bytes: usize) -> Self {
        SimTransport::with_faults(latency, overhead_bytes, LinkFaults::default())
    }

    /// A transport with the given forward fault profile; the reverse link
    /// carries the same profile with its seed xor'd by [`ACK_SEED_OFFSET`].
    ///
    /// # Panics
    /// Panics when any fault probability is outside `[0, 1)`.
    pub fn with_faults(latency: Tick, overhead_bytes: usize, faults: LinkFaults) -> Self {
        SimTransport {
            forward: Link::with_faults(latency, overhead_bytes, faults),
            feedback: Link::with_faults(
                latency,
                overhead_bytes,
                LinkFaults {
                    seed: faults.seed ^ ACK_SEED_OFFSET,
                    ..faults
                },
            ),
        }
    }

    /// Wraps an explicit link pair (fleet drivers seed per-stream links
    /// themselves).
    pub fn from_links(forward: Link, feedback: Link) -> Self {
        SimTransport { forward, feedback }
    }

    /// The forward link (read access for in-flight/latency introspection).
    pub fn forward_link(&self) -> &Link {
        &self.forward
    }

    /// The feedback link.
    pub fn feedback_link(&self) -> &Link {
        &self.feedback
    }
}

impl Transport for SimTransport {
    fn send(&mut self, now: Tick, stream_id: u32, payload: Bytes) {
        self.forward.send_tagged(now, stream_id, payload);
    }

    fn recv(&mut self, now: Tick, sink: &mut dyn FnMut(u32, Bytes)) {
        // Collect first: the deliver iterator borrows the link, and sinks
        // routinely re-enter protocol state (tiny: usually 0 or 1 due).
        let due: Vec<_> = self.forward.deliver(now).collect();
        for msg in due {
            sink(msg.stream_id, msg.payload);
        }
    }

    fn send_feedback(&mut self, now: Tick, stream_id: u32, payload: Bytes) {
        self.feedback.send_tagged(now, stream_id, payload);
    }

    fn recv_feedback(&mut self, now: Tick, sink: &mut dyn FnMut(u32, Bytes)) {
        let due: Vec<_> = self.feedback.deliver(now).collect();
        for msg in due {
            sink(msg.stream_id, msg.payload);
        }
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            forward: self.forward.traffic().clone(),
            feedback: self.feedback.traffic().clone(),
            faults: self.forward.fault_counters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(b: &'static [u8]) -> Bytes {
        Bytes::from_static(b)
    }

    #[test]
    fn forward_and_feedback_are_independent_directions() {
        let mut t = SimTransport::new(0, 0);
        t.send(0, 1, payload(b"fwd"));
        t.send_feedback(0, 1, payload(b"ack"));

        let mut fwd = Vec::new();
        t.recv(0, &mut |id, p| fwd.push((id, p)));
        assert_eq!(fwd, vec![(1, payload(b"fwd"))]);

        let mut fb = Vec::new();
        t.recv_feedback(0, &mut |id, p| fb.push((id, p)));
        assert_eq!(fb, vec![(1, payload(b"ack"))]);

        let stats = t.stats();
        assert_eq!(stats.forward.messages(), 1);
        assert_eq!(stats.feedback.messages(), 1);
    }

    #[test]
    fn latency_defers_through_the_trait() {
        let mut t = SimTransport::new(2, 0);
        t.send(0, 5, payload(b"x"));
        let mut got = 0;
        t.recv(1, &mut |_, _| got += 1);
        assert_eq!(got, 0);
        t.recv(2, &mut |id, _| {
            assert_eq!(id, 5);
            got += 1;
        });
        assert_eq!(got, 1);
    }

    #[test]
    fn faulty_transport_matches_manual_link_pair() {
        // The trait wrapper must draw the exact schedules Session::run's
        // hand-built links drew — that is what keeps recorded experiments
        // bit-identical across the refactor.
        let faults = LinkFaults::lossy(0.3, 1234);
        let mut t = SimTransport::with_faults(0, 0, faults);
        let mut fwd = Link::with_faults(0, 0, faults);
        let mut fb = Link::with_faults(
            0,
            0,
            LinkFaults {
                seed: faults.seed ^ ACK_SEED_OFFSET,
                ..faults
            },
        );
        for now in 0..500u64 {
            t.send(now, now as u32, payload(b"p"));
            t.send_feedback(now, now as u32, payload(b"q"));
            fwd.send_tagged(now, now as u32, payload(b"p"));
            fb.send_tagged(now, now as u32, payload(b"q"));
        }
        let mut via_trait = Vec::new();
        t.recv(500, &mut |id, _| via_trait.push(id));
        let manual: Vec<u32> = fwd.deliver(500).map(|m| m.stream_id).collect();
        assert_eq!(via_trait, manual);

        let mut via_trait_fb = Vec::new();
        t.recv_feedback(500, &mut |id, _| via_trait_fb.push(id));
        let manual_fb: Vec<u32> = fb.deliver(500).map(|m| m.stream_id).collect();
        assert_eq!(via_trait_fb, manual_fb);
        assert_eq!(t.stats().faults, fwd.fault_counters());
    }
}
