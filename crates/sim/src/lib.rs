//! # kalstream-sim
//!
//! The discrete-time client/server network substrate the experiments run on.
//!
//! Substitution note (DESIGN.md §2): the paper measured communication
//! overhead on real sensor/stream deployments. The reported metric is
//! *messages (and bytes) on the wire*, which a simulator measures exactly —
//! so this crate provides a deterministic tick-driven simulation of a
//! source→server link with configurable latency, plus the accounting
//! (messages, bytes, server-side error, precision violations) every
//! experiment reports.
//!
//! The simulator knows nothing about Kalman filters: it drives anything that
//! implements the [`Producer`]/[`Consumer`] endpoint traits, which both the
//! suppression protocol (`kalstream-core`) and every baseline
//! (`kalstream-baselines`) implement. That symmetry is what makes the
//! benchmark comparisons fair — every method pays for messages through the
//! same [`Link`] and is scored by the same [`ErrorMetrics`]/[`TrafficMetrics`].
//!
//! The per-tick order of operations is fixed and documented in
//! [`Session::run`]: observe → transmit → deliver → estimate → score. With
//! zero link latency this gives the suppression protocol its precision
//! guarantee (a correction sent at tick *t* is visible to queries at tick
//! *t*); with positive latency, transient violations become measurable —
//! experiment T2 reports both.
//!
//! Beyond per-session runs, [`run_fleet_ingest`] drives many streams
//! against one multiplexed [`IngestSink`] — the server-side **ingest mode**
//! where a whole fleet's traffic converges on a batched, sharded pipeline
//! (implemented in `kalstream-core`, measured by `bench_ingest`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The observability layer every report in this crate exports through.
pub use kalstream_obs as obs;

mod clock;
mod fleet;
mod link;
mod metrics;
mod node;
mod runner;
mod transport;

pub use clock::Tick;
pub use fleet::{
    run_fleet, run_fleet_ingest, run_fleet_ingest_faulty, run_lockstep, run_lockstep_with_crashes,
    BoxedSampler, FleetReport, IngestFleetReport, IngestStream, LoadPhase, LoadSwing,
    LockstepStream, LockstepTick,
};
pub use link::{Link, LinkFaults, Message};
pub use metrics::{
    BytesAccounting, DeliveryStats, ErrorMetrics, FaultCounters, IngestRunReport, SessionReport,
    ShardThroughput, TrafficMetrics,
};
pub use node::{Consumer, Producer};
pub use runner::{ErrorSeries, IngestSink, Session, SessionConfig, TickObserver};
pub use transport::{SimTransport, Transport, TransportStats, ACK_SEED_OFFSET};
