//! Simulation time.

/// Simulation time in ticks. One tick = one stream sample at every source.
///
/// A plain `u64` alias rather than a newtype: ticks participate in
/// arithmetic everywhere (latency addition, window math) and the simulator
/// is the only producer of them, so the newtype's protection would cost more
/// ergonomics than it buys safety here.
pub type Tick = u64;
