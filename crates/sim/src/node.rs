//! Endpoint traits implemented by suppression protocols and baselines.

use bytes::Bytes;

use crate::metrics::DeliveryStats;
use crate::Tick;

/// The source-side endpoint: sees every raw observation, decides what (if
/// anything) to put on the wire.
///
/// A ship-everything baseline returns `Some(sample)` every tick; the
/// dual-Kalman protocol returns `Some(correction)` only when its shadow of
/// the server's prediction drifts past the precision bound.
pub trait Producer {
    /// Stream dimensionality this producer expects.
    fn dim(&self) -> usize;

    /// Called exactly once per tick with the new observation. Returning
    /// `Some(payload)` transmits one message (the simulator charges its
    /// bytes); `None` suppresses.
    fn observe(&mut self, now: Tick, observed: &[f64]) -> Option<Bytes>;

    /// Called for every message delivered on the reverse (server→source)
    /// channel — acknowledgements in the loss-tolerant protocol. The default
    /// ignores feedback, so fire-and-forget producers need no changes.
    fn feedback(&mut self, now: Tick, payload: &Bytes) {
        let _ = (now, payload);
    }
}

/// The server-side endpoint: consumes wire messages, answers value queries.
pub trait Consumer {
    /// Stream dimensionality this consumer serves.
    fn dim(&self) -> usize;

    /// Called for every delivered message, in delivery order.
    fn receive(&mut self, now: Tick, payload: &Bytes);

    /// Called once per tick *after* deliveries: writes the server's current
    /// best estimate of the stream value into `out` (length [`Consumer::dim`]).
    ///
    /// Taking `&mut self` lets prediction-based consumers advance their
    /// internal clock (one filter predict per tick) as a side effect.
    fn estimate(&mut self, now: Tick, out: &mut [f64]);

    /// Called after [`Consumer::estimate`] each tick, repeatedly until it
    /// returns `None`: each `Some(payload)` is sent on the reverse
    /// (server→source) channel. The default produces no feedback, so
    /// fire-and-forget consumers need no changes.
    fn poll_feedback(&mut self, now: Tick) -> Option<Bytes> {
        let _ = now;
        None
    }

    /// Receiver-side delivery accounting for the sequenced protocol. The
    /// default (all zeros) suits consumers without sequence tracking.
    fn delivery_stats(&self) -> DeliveryStats {
        DeliveryStats::default()
    }

    /// Predictive variance of the estimate written by the most recent
    /// [`Consumer::estimate`] call (first measurement component), when the
    /// consumer maintains one — model-based consumers expose their Kalman
    /// innovation covariance here so query layers can serve distributional
    /// answers. The default (`None`) suits value-cache consumers that track
    /// no uncertainty.
    fn served_variance(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial pair: producer ships every sample, consumer echoes the last.
    struct ShipAll;
    struct Echo {
        last: f64,
    }

    impl Producer for ShipAll {
        fn dim(&self) -> usize {
            1
        }
        fn observe(&mut self, _now: Tick, observed: &[f64]) -> Option<Bytes> {
            Some(Bytes::copy_from_slice(&observed[0].to_le_bytes()))
        }
    }

    impl Consumer for Echo {
        fn dim(&self) -> usize {
            1
        }
        fn receive(&mut self, _now: Tick, payload: &Bytes) {
            let mut b = [0u8; 8];
            b.copy_from_slice(payload);
            self.last = f64::from_le_bytes(b);
        }
        fn estimate(&mut self, _now: Tick, out: &mut [f64]) {
            out[0] = self.last;
        }
    }

    #[test]
    fn endpoints_roundtrip_a_value() {
        let mut p = ShipAll;
        let mut c = Echo { last: 0.0 };
        let payload = p.observe(0, &[42.5]).unwrap();
        c.receive(0, &payload);
        let mut out = [0.0];
        c.estimate(0, &mut out);
        assert_eq!(out[0], 42.5);
    }
}
