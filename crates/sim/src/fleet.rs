//! Parallel execution of many independent sessions (experiment F7's
//! 100-stream fleet and every parameter sweep), plus the multiplexed
//! ingest-mode fleet driver.

use crossbeam::channel;
use kalstream_obs::{Registry, Snapshot};

use crate::{
    metrics::{DeliveryStats, ErrorMetrics, FaultCounters},
    runner::max_norm_diff,
    transport::ACK_SEED_OFFSET,
    Consumer, IngestSink, Link, LinkFaults, Producer, SessionConfig, SessionReport, Tick,
    TrafficMetrics,
};

/// Aggregated result of a fleet run: per-session reports in submission
/// order, plus fleet-wide traffic totals.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-session reports, index-aligned with the submitted jobs.
    pub sessions: Vec<SessionReport>,
    /// Fleet-wide traffic (sum over sessions).
    pub total_traffic: TrafficMetrics,
    /// Fleet-wide link-fault injections (sum over sessions' forward links).
    pub total_faults: FaultCounters,
    /// Fleet-wide server-side delivery accounting (sum over sessions).
    pub total_delivery: DeliveryStats,
}

impl FleetReport {
    /// Total messages across the fleet.
    pub fn total_messages(&self) -> u64 {
        self.total_traffic.messages()
    }

    /// Mean per-session message rate.
    pub fn mean_message_rate(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions
            .iter()
            .map(SessionReport::message_rate)
            .sum::<f64>()
            / self.sessions.len() as f64
    }

    /// Total precision violations (vs. observed signal) across the fleet.
    pub fn total_violations(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.error_vs_observed.violations())
            .sum()
    }

    /// The fleet-aggregated snapshot (`fleet.*` metrics): traffic, fault,
    /// and delivery totals plus violation and session counts.
    pub fn snapshot(&self) -> Snapshot {
        let mut reg = Registry::new();
        let mut fleet = reg.scope("fleet");
        fleet.counter("sessions", self.sessions.len() as u64);
        fleet.counter("violations", self.total_violations());
        fleet.gauge("mean_message_rate", self.mean_message_rate());
        fleet.observe("traffic", &self.total_traffic);
        fleet.observe("faults", &self.total_faults);
        fleet.observe("delivery", &self.total_delivery);
        reg.snapshot()
    }

    /// The per-stream snapshot (`stream.<index>.*` metrics): every
    /// session's full report, index-aligned with the submitted jobs.
    /// Merging this with [`FleetReport::snapshot`] gives one artifact with
    /// both granularities.
    pub fn stream_snapshots(&self) -> Snapshot {
        let mut reg = Registry::new();
        let mut streams = reg.scope("stream");
        for (i, session) in self.sessions.iter().enumerate() {
            streams.observe(&i.to_string(), session);
        }
        reg.snapshot()
    }
}

/// Runs `jobs` across `threads` worker threads and collects their reports.
///
/// Each job is an independent closed-over session (stream + endpoints);
/// sessions themselves never synchronise — matching the real system, where
/// sources are independent devices. Work is distributed over a crossbeam
/// channel so long sessions don't convoy behind a static partition, and
/// workers send `(index, report)` pairs back over a second channel — no
/// shared lock anywhere, so a slow session never blocks another's result
/// hand-off.
///
/// # Panics
/// Panics if a worker thread panics (propagated by `std::thread::scope`).
pub fn run_fleet<F>(jobs: Vec<F>, threads: usize) -> FleetReport
where
    F: FnOnce() -> SessionReport + Send,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    let (tx, rx) = channel::unbounded::<(usize, F)>();
    for job in jobs.into_iter().enumerate() {
        tx.send(job).expect("channel open");
    }
    drop(tx);
    let (report_tx, report_rx) = channel::unbounded::<(usize, SessionReport)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let report_tx = report_tx.clone();
            scope.spawn(move || {
                while let Ok((idx, job)) = rx.recv() {
                    let report = job();
                    report_tx.send((idx, report)).expect("collector alive");
                }
            });
        }
    });
    drop(report_tx);

    // Workers finish in arbitrary order; restore submission order by index.
    let mut slots: Vec<Option<SessionReport>> = (0..n).map(|_| None).collect();
    while let Ok((idx, report)) = report_rx.recv() {
        slots[idx] = Some(report);
    }
    let sessions: Vec<SessionReport> = slots
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect();
    let mut total_traffic = TrafficMetrics::default();
    let mut total_faults = FaultCounters::default();
    let mut total_delivery = DeliveryStats::default();
    for s in &sessions {
        total_traffic.merge(&s.traffic);
        total_faults.merge(&s.faults);
        total_delivery.merge(&s.delivery);
    }
    FleetReport {
        sessions,
        total_traffic,
        total_faults,
        total_delivery,
    }
}

/// A boxed `(observed, truth)` sampler, as carried by [`IngestStream`].
pub type BoxedSampler<'a> = Box<dyn FnMut(&mut [f64], &mut [f64]) + 'a>;

/// One phase of a [`LoadSwing`]: hold `amplitude` for `ticks` ticks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPhase {
    /// How long the phase lasts.
    pub ticks: u64,
    /// Signal amplitude during the phase. Under a deadband/suppression
    /// producer with threshold δ, amplitudes well above δ make nearly every
    /// tick ship while amplitudes well below δ suppress nearly everything —
    /// so the phase schedule *is* the offered-load schedule.
    pub amplitude: f64,
}

/// A deterministic piecewise-constant load schedule for swing scenarios:
/// the elastic-scaling experiments drive grow/shrink decisions by swinging
/// signal volatility (and therefore suppression failures, and therefore
/// message rate) through these phases.
///
/// The final phase extends indefinitely, so a swing can be shorter than the
/// run that consumes it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSwing {
    phases: Vec<LoadPhase>,
}

impl LoadSwing {
    /// Builds a swing from its phases.
    ///
    /// # Panics
    /// Panics on an empty schedule or a zero-length phase — both would make
    /// [`LoadSwing::amplitude_at`] ill-defined.
    pub fn new(phases: Vec<LoadPhase>) -> LoadSwing {
        assert!(!phases.is_empty(), "a load swing needs at least one phase");
        assert!(
            phases.iter().all(|p| p.ticks > 0),
            "every phase must last at least one tick"
        );
        LoadSwing { phases }
    }

    /// Sum of the phase lengths (the swing's natural duration; runs may be
    /// longer, in which case the last phase extends).
    pub fn total_ticks(&self) -> u64 {
        self.phases.iter().map(|p| p.ticks).sum()
    }

    /// The amplitude in force at `tick`. Past the end of the schedule the
    /// final phase's amplitude holds.
    pub fn amplitude_at(&self, tick: u64) -> f64 {
        let mut start = 0u64;
        for phase in &self.phases {
            if tick < start + phase.ticks {
                return phase.amplitude;
            }
            start += phase.ticks;
        }
        self.phases
            .last()
            .expect("non-empty by construction")
            .amplitude
    }

    /// The phase schedule.
    pub fn phases(&self) -> &[LoadPhase] {
        &self.phases
    }

    /// A self-clocking sampler for `stream_id`: an amplitude-modulated
    /// sinusoid `A(t) · sin(0.9·t + id)`, with `A(t)` from the schedule and
    /// truth equal to the clean signal. Deterministic — two samplers built
    /// from the same swing and id produce bit-identical sequences — and
    /// self-clocking, so a run may be split across several fleet-driver
    /// calls (e.g. one per phase, to measure per-phase traffic) without
    /// losing its place in the schedule.
    pub fn sampler(&self, stream_id: u32) -> BoxedSampler<'static> {
        let swing = self.clone();
        let mut tick = 0u64;
        Box::new(move |obs: &mut [f64], tru: &mut [f64]| {
            let amplitude = swing.amplitude_at(tick);
            let v = amplitude * (0.9 * tick as f64 + stream_id as f64).sin();
            tick += 1;
            obs[0] = v;
            tru[0] = v;
        })
    }
}

/// One stream in an ingest-mode fleet: its id, source-side producer, and
/// the sampler generating its observations.
pub struct IngestStream<'a> {
    /// The stream's multiplexing key (what the ingest layer shards on).
    pub stream_id: u32,
    /// Source-side policy deciding what goes on the wire.
    pub producer: Box<dyn Producer + 'a>,
    /// Fills `(observed, truth)` each tick.
    pub sampler: BoxedSampler<'a>,
}

/// Traffic outcome of an ingest-mode fleet run (source side; the server
/// side's per-shard story comes from the sink's own reporting).
#[derive(Debug)]
pub struct IngestFleetReport {
    /// Ticks simulated.
    pub ticks: u64,
    /// Fleet-wide traffic (sum over streams).
    pub total_traffic: TrafficMetrics,
    /// Per-stream traffic, index-aligned with the submitted streams.
    pub per_stream: Vec<TrafficMetrics>,
    /// Fault injections summed over every stream's link (all zero for the
    /// reliable [`run_fleet_ingest`] path).
    pub faults: FaultCounters,
}

impl IngestFleetReport {
    /// The fleet-aggregated snapshot (`fleet.*` metrics) of the source
    /// side of an ingest run.
    pub fn snapshot(&self) -> Snapshot {
        let mut reg = Registry::new();
        let mut fleet = reg.scope("fleet");
        fleet.counter("streams", self.per_stream.len() as u64);
        fleet.counter("ticks", self.ticks);
        fleet.observe("traffic", &self.total_traffic);
        fleet.observe("faults", &self.faults);
        reg.snapshot()
    }

    /// The per-stream traffic snapshot (`stream.<index>.traffic.*`).
    pub fn stream_snapshots(&self) -> Snapshot {
        let mut reg = Registry::new();
        let mut streams = reg.scope("stream");
        for (i, traffic) in self.per_stream.iter().enumerate() {
            let mut stream = streams.scope(&i.to_string());
            stream.observe("traffic", traffic);
        }
        reg.snapshot()
    }
}

/// Drives many streams against one multiplexed [`IngestSink`] — the
/// server-side ingest mode, where the fleet's traffic converges on a single
/// batched channel instead of one consumer per session.
///
/// Per tick: every stream samples and may transmit (through its own
/// zero-latency [`Link`], which prices each message with `overhead_bytes`
/// of framing); every delivered message is pushed into the sink tagged with
/// its stream id; then [`IngestSink::end_tick`] closes the tick, advancing
/// all server-side endpoints at once. Zero latency preserves the protocol's
/// correction-visible-same-tick semantics, so an ingest-mode server is
/// bit-identical to the same endpoints run through [`crate::Session::run`].
pub fn run_fleet_ingest<S: IngestSink + ?Sized>(
    streams: &mut [IngestStream<'_>],
    ticks: u64,
    overhead_bytes: usize,
    sink: &mut S,
) -> IngestFleetReport {
    run_fleet_ingest_faulty(streams, ticks, overhead_bytes, LinkFaults::default(), sink)
}

/// [`run_fleet_ingest`] with fault injection on every stream's link.
///
/// Each stream gets its own fault RNG, seeded from `faults.seed` xor'd with
/// the stream's index, so per-stream fault schedules are independent but the
/// whole fleet run stays deterministic for a given profile. A no-op profile
/// (`faults.is_noop()`) degenerates to the reliable path bit-for-bit.
pub fn run_fleet_ingest_faulty<S: IngestSink + ?Sized>(
    streams: &mut [IngestStream<'_>],
    ticks: u64,
    overhead_bytes: usize,
    faults: LinkFaults,
    sink: &mut S,
) -> IngestFleetReport {
    let mut links: Vec<Link> = streams
        .iter()
        .enumerate()
        .map(|(i, _)| {
            Link::with_faults(
                0,
                overhead_bytes,
                LinkFaults {
                    seed: faults.seed ^ i as u64,
                    ..faults
                },
            )
        })
        .collect();
    let mut observed: Vec<Vec<f64>> = streams
        .iter()
        .map(|s| vec![0.0; s.producer.dim()])
        .collect();
    let mut truth: Vec<Vec<f64>> = streams
        .iter()
        .map(|s| vec![0.0; s.producer.dim()])
        .collect();
    for now in 0..ticks {
        for (i, stream) in streams.iter_mut().enumerate() {
            (stream.sampler)(&mut observed[i], &mut truth[i]);
            if let Some(payload) = stream.producer.observe(now, &observed[i]) {
                links[i].send_tagged(now, stream.stream_id, payload);
            }
            for msg in links[i].deliver(now) {
                sink.push(msg.stream_id, &msg.payload);
            }
        }
        sink.end_tick();
    }
    let per_stream: Vec<TrafficMetrics> = links.iter().map(|l| l.traffic().clone()).collect();
    let mut total_traffic = TrafficMetrics::default();
    for t in &per_stream {
        total_traffic.merge(t);
    }
    let mut fault_totals = FaultCounters::default();
    for l in &links {
        fault_totals.merge(&l.fault_counters());
    }
    IngestFleetReport {
        ticks,
        total_traffic,
        per_stream,
        faults: fault_totals,
    }
}

/// One stream in a lockstep fleet: its endpoints plus the sampler
/// generating its observations.
pub struct LockstepStream<'a, P, C> {
    /// Source-side policy deciding what goes on the wire.
    pub producer: P,
    /// Server-side estimator consuming the wire.
    pub consumer: C,
    /// Fills `(observed, truth)` each tick.
    pub sampler: BoxedSampler<'a>,
}

/// Read-only view of one lockstep tick, handed to the per-tick hook:
/// everything sampled and estimated this tick, index-aligned with the
/// streams.
pub struct LockstepTick<'t> {
    /// Per-stream observations of this tick.
    pub observed: &'t [Vec<f64>],
    /// Per-stream ground truth of this tick.
    pub truth: &'t [Vec<f64>],
    /// Per-stream server estimates of this tick.
    pub estimates: &'t [Vec<f64>],
    /// Per-stream predictive variance of the estimate
    /// ([`Consumer::served_variance`]), `None` for consumers that track no
    /// uncertainty. Query layers use this to serve distributional answers.
    pub variances: &'t [Option<f64>],
}

/// Drives many sessions in lockstep — all streams advance through the same
/// tick together — and fires a fleet-level hook after each tick.
///
/// Per stream, each tick follows [`crate::Session::run`]'s order exactly
/// (sample → observe → deliver → estimate → feedback poll → feedback
/// deliver → score), so with a no-op hook a lockstep stream is
/// bit-identical to the same endpoints run through `Session::run` alone.
/// The hook then sees the whole fleet at once — this is where a consumer-side
/// controller (e.g. a query runtime allocating message budget) reads every
/// server's state and pushes per-stream control back into the endpoints;
/// feedback queued by the hook at tick `t` rides the reverse link when it is
/// next polled, at tick `t + 1`.
///
/// Fault determinism matches the other fleet drivers: stream `i`'s forward
/// link seeds from `faults.seed ^ i` and its reverse link from
/// `(faults.seed ^ ACK_SEED_OFFSET) ^ i`, so per-stream schedules are
/// independent but the run is reproducible.
///
/// # Panics
/// Panics when a producer/consumer pair disagrees on dimensionality.
pub fn run_lockstep<'a, P, C, H>(
    config: &SessionConfig,
    streams: &mut [LockstepStream<'a, P, C>],
    hook: H,
) -> FleetReport
where
    P: Producer,
    C: Consumer,
    H: FnMut(Tick, &LockstepTick<'_>, &mut [LockstepStream<'a, P, C>]),
{
    run_lockstep_with_crashes(config, streams, &[], |_, _, _| {}, hook)
}

/// [`run_lockstep`] with consumer-crash injection: at the end of every tick
/// listed in `crash_ticks`, `rebuild(now, i, &mut consumer)` fires for each
/// stream and may replace the consumer's state wholesale — modelling a
/// server process that died and came back (from a durability layer, from
/// scratch, from anything the closure encodes).
///
/// The schedule models **state** loss with the transport intact: producers,
/// links, and in-flight messages carry across the crash untouched. That is
/// the deliberate complement of `TcpTransport::kill_at`, which models
/// *connection* loss with state intact — together the two span the failure
/// plane, and the durability proptests drive this axis: a rebuild closure
/// that restores from snapshot+WAL must keep the fleet bit-identical to an
/// uncrashed run, while one that resets state visibly diverges.
///
/// With an empty schedule (or a no-op closure) this is exactly
/// [`run_lockstep`] — bit for bit, the tick loop is shared.
///
/// # Panics
/// Panics when a producer/consumer pair disagrees on dimensionality.
pub fn run_lockstep_with_crashes<'a, P, C, H, R>(
    config: &SessionConfig,
    streams: &mut [LockstepStream<'a, P, C>],
    crash_ticks: &[Tick],
    mut rebuild: R,
    mut hook: H,
) -> FleetReport
where
    P: Producer,
    C: Consumer,
    H: FnMut(Tick, &LockstepTick<'_>, &mut [LockstepStream<'a, P, C>]),
    R: FnMut(Tick, usize, &mut C),
{
    let n = streams.len();
    let faults = config.faults();
    let mut links = Vec::with_capacity(n);
    let mut ack_links = Vec::with_capacity(n);
    for i in 0..n {
        links.push(Link::with_faults(
            config.latency,
            config.overhead_bytes,
            LinkFaults {
                seed: faults.seed ^ i as u64,
                ..faults
            },
        ));
        ack_links.push(Link::with_faults(
            config.latency,
            config.overhead_bytes,
            LinkFaults {
                seed: (faults.seed ^ ACK_SEED_OFFSET) ^ i as u64,
                ..faults
            },
        ));
    }
    let dims: Vec<usize> = streams
        .iter()
        .map(|s| {
            let dim = s.producer.dim();
            assert_eq!(
                dim,
                s.consumer.dim(),
                "producer/consumer dimension mismatch"
            );
            dim
        })
        .collect();
    let mut observed: Vec<Vec<f64>> = dims.iter().map(|&d| vec![0.0; d]).collect();
    let mut truth: Vec<Vec<f64>> = dims.iter().map(|&d| vec![0.0; d]).collect();
    let mut estimates: Vec<Vec<f64>> = dims.iter().map(|&d| vec![0.0; d]).collect();
    let mut err_obs: Vec<ErrorMetrics> = (0..n).map(|_| ErrorMetrics::new(config.delta)).collect();
    let mut err_truth: Vec<ErrorMetrics> =
        (0..n).map(|_| ErrorMetrics::new(config.delta)).collect();
    let mut variances: Vec<Option<f64>> = vec![None; n];

    for now in 0..config.ticks {
        for (i, stream) in streams.iter_mut().enumerate() {
            (stream.sampler)(&mut observed[i], &mut truth[i]);
            if let Some(payload) = stream.producer.observe(now, &observed[i]) {
                links[i].send(now, payload);
            }
            let due: Vec<_> = links[i].deliver(now).collect();
            for msg in due {
                stream.consumer.receive(now, &msg.payload);
            }
            stream.consumer.estimate(now, &mut estimates[i]);
            variances[i] = stream.consumer.served_variance();
            while let Some(fb) = stream.consumer.poll_feedback(now) {
                ack_links[i].send(now, fb);
            }
            let due: Vec<_> = ack_links[i].deliver(now).collect();
            for msg in due {
                stream.producer.feedback(now, &msg.payload);
            }
            err_obs[i].record(max_norm_diff(&estimates[i], &observed[i]));
            err_truth[i].record(max_norm_diff(&estimates[i], &truth[i]));
        }
        hook(
            now,
            &LockstepTick {
                observed: &observed,
                truth: &truth,
                estimates: &estimates,
                variances: &variances,
            },
            streams,
        );
        if crash_ticks.contains(&now) {
            for (i, stream) in streams.iter_mut().enumerate() {
                rebuild(now, i, &mut stream.consumer);
            }
        }
    }

    let sessions: Vec<SessionReport> = streams
        .iter()
        .enumerate()
        .map(|(i, s)| SessionReport {
            ticks: config.ticks,
            traffic: links[i].traffic().clone(),
            error_vs_observed: err_obs[i].clone(),
            error_vs_truth: err_truth[i].clone(),
            faults: links[i].fault_counters(),
            delivery: s.consumer.delivery_stats(),
            ack_traffic: ack_links[i].traffic().clone(),
        })
        .collect();
    let mut total_traffic = TrafficMetrics::default();
    let mut total_faults = FaultCounters::default();
    let mut total_delivery = DeliveryStats::default();
    for s in &sessions {
        total_traffic.merge(&s.traffic);
        total_faults.merge(&s.faults);
        total_delivery.merge(&s.delivery);
    }
    FleetReport {
        sessions,
        total_traffic,
        total_faults,
        total_delivery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Consumer, Producer, Session, SessionConfig, Tick};
    use bytes::Bytes;

    struct ShipAll;
    struct Hold(f64);

    impl Producer for ShipAll {
        fn dim(&self) -> usize {
            1
        }
        fn observe(&mut self, _: Tick, observed: &[f64]) -> Option<Bytes> {
            Some(Bytes::copy_from_slice(&observed[0].to_le_bytes()))
        }
    }
    impl Consumer for Hold {
        fn dim(&self) -> usize {
            1
        }
        fn receive(&mut self, _: Tick, payload: &Bytes) {
            let mut b = [0u8; 8];
            b.copy_from_slice(payload);
            self.0 = f64::from_le_bytes(b);
        }
        fn estimate(&mut self, _: Tick, out: &mut [f64]) {
            out[0] = self.0;
        }
    }

    fn job(ticks: u64) -> impl FnOnce() -> SessionReport + Send {
        move || {
            let config = SessionConfig::instant(ticks, 1.0);
            let mut p = ShipAll;
            let mut c = Hold(0.0);
            let mut v = 0.0;
            Session::run(
                &config,
                move |obs, tru| {
                    v += 1.0;
                    obs[0] = v;
                    tru[0] = v;
                },
                &mut p,
                &mut c,
                &mut (),
            )
        }
    }

    #[test]
    fn fleet_preserves_job_order() {
        let jobs: Vec<_> = (1..=8u64).map(|i| job(i * 10)).collect();
        let report = run_fleet(jobs, 4);
        assert_eq!(report.sessions.len(), 8);
        for (i, s) in report.sessions.iter().enumerate() {
            assert_eq!(s.ticks, (i as u64 + 1) * 10);
        }
    }

    #[test]
    fn fleet_totals_add_up() {
        let jobs: Vec<_> = (0..5).map(|_| job(100)).collect();
        let report = run_fleet(jobs, 2);
        assert_eq!(report.total_messages(), 500);
        assert!((report.mean_message_rate() - 1.0).abs() < 1e-12);
        assert_eq!(report.total_violations(), 0);
        // A reliable fleet reports no injected faults and no delivery drops.
        assert_eq!(report.total_faults, FaultCounters::default());
        assert_eq!(report.total_delivery, DeliveryStats::default());
    }

    #[test]
    fn single_thread_and_many_threads_agree() {
        let a = run_fleet((0..6).map(|_| job(50)).collect::<Vec<_>>(), 1);
        let b = run_fleet((0..6).map(|_| job(50)).collect::<Vec<_>>(), 8);
        assert_eq!(a.total_messages(), b.total_messages());
    }

    #[test]
    fn empty_fleet() {
        let report = run_fleet(Vec::<fn() -> SessionReport>::new(), 4);
        assert_eq!(report.sessions.len(), 0);
        assert_eq!(report.mean_message_rate(), 0.0);
    }

    /// Sink that records (stream_id, decoded value) pushes and tick closes.
    #[derive(Default)]
    struct Recorder {
        pushes: Vec<(u32, f64)>,
        ticks_closed: u64,
    }

    impl crate::IngestSink for Recorder {
        fn push(&mut self, stream_id: u32, payload: &Bytes) {
            let mut b = [0u8; 8];
            b.copy_from_slice(payload);
            self.pushes.push((stream_id, f64::from_le_bytes(b)));
        }
        fn end_tick(&mut self) {
            self.ticks_closed += 1;
        }
    }

    #[test]
    fn ingest_fleet_multiplexes_all_streams_into_one_sink() {
        let mut streams: Vec<IngestStream<'_>> = (0..3u32)
            .map(|id| IngestStream {
                stream_id: id * 10,
                producer: Box::new(ShipAll),
                sampler: Box::new(move |obs: &mut [f64], tru: &mut [f64]| {
                    obs[0] = id as f64;
                    tru[0] = id as f64;
                }),
            })
            .collect();
        let mut sink = Recorder::default();
        let report = run_fleet_ingest(&mut streams, 5, 8, &mut sink);
        assert_eq!(report.ticks, 5);
        assert_eq!(sink.ticks_closed, 5);
        // Ship-all: 3 streams × 5 ticks, tagged with their ids, in order.
        assert_eq!(sink.pushes.len(), 15);
        assert_eq!(sink.pushes[0..3], [(0, 0.0), (10, 1.0), (20, 2.0)]);
        assert_eq!(report.total_traffic.messages(), 15);
        // Each payload is 8 bytes (one f64) + 8 bytes declared overhead.
        assert_eq!(report.total_traffic.bytes(), 15 * 16);
        assert_eq!(report.per_stream.len(), 3);
        assert!(report.per_stream.iter().all(|t| t.messages() == 5));
        assert_eq!(report.faults, FaultCounters::default());
    }

    #[test]
    fn faulty_ingest_fleet_drops_and_counts() {
        let make_streams = || -> Vec<IngestStream<'_>> {
            (0..4u32)
                .map(|id| IngestStream {
                    stream_id: id,
                    producer: Box::new(ShipAll),
                    sampler: Box::new(move |obs: &mut [f64], tru: &mut [f64]| {
                        obs[0] = id as f64;
                        tru[0] = id as f64;
                    }),
                })
                .collect()
        };

        let mut sink = Recorder::default();
        let faults = LinkFaults {
            loss: 0.5,
            seed: 7,
            ..LinkFaults::default()
        };
        let report = run_fleet_ingest_faulty(&mut make_streams(), 100, 0, faults, &mut sink);
        assert!(
            report.faults.dropped > 0,
            "50% loss over 400 sends must drop"
        );
        assert_eq!(
            sink.pushes.len() as u64 + report.faults.dropped,
            400,
            "every send is either delivered or counted dropped"
        );
        // The sender is charged for every send, dropped or not.
        assert_eq!(report.total_traffic.messages(), 400);

        // A no-op profile is bit-identical to the reliable entry point.
        let mut sink_a = Recorder::default();
        let mut sink_b = Recorder::default();
        let a = run_fleet_ingest(&mut make_streams(), 50, 8, &mut sink_a);
        let b = run_fleet_ingest_faulty(
            &mut make_streams(),
            50,
            8,
            LinkFaults::default(),
            &mut sink_b,
        );
        assert_eq!(sink_a.pushes, sink_b.pushes);
        assert_eq!(a.total_traffic.bytes(), b.total_traffic.bytes());
        assert_eq!(b.faults, FaultCounters::default());
    }

    /// Ships every k-th sample; `k` is adjustable mid-run (what a lockstep
    /// hook retunes).
    struct EveryKth {
        k: u64,
    }
    impl Producer for EveryKth {
        fn dim(&self) -> usize {
            1
        }
        fn observe(&mut self, now: Tick, observed: &[f64]) -> Option<Bytes> {
            now.is_multiple_of(self.k)
                .then(|| Bytes::copy_from_slice(&observed[0].to_le_bytes()))
        }
    }

    fn counting_sampler(step: f64) -> crate::BoxedSampler<'static> {
        let mut v = 0.0;
        Box::new(move |obs: &mut [f64], tru: &mut [f64]| {
            v += step;
            obs[0] = v;
            tru[0] = v;
        })
    }

    #[test]
    fn lockstep_with_noop_hook_matches_session_run() {
        let config = SessionConfig::instant(80, 5.0);
        let mut streams: Vec<LockstepStream<'_, EveryKth, Hold>> = (1..=3u64)
            .map(|k| LockstepStream {
                producer: EveryKth { k },
                consumer: Hold(0.0),
                sampler: counting_sampler(k as f64),
            })
            .collect();
        let fleet = run_lockstep(&config, &mut streams, |_, _, _| {});
        for (i, k) in (1..=3u64).enumerate() {
            let mut p = EveryKth { k };
            let mut c = Hold(0.0);
            let solo = Session::run(&config, counting_sampler(k as f64), &mut p, &mut c, &mut ());
            assert_eq!(fleet.sessions[i].traffic, solo.traffic, "stream {i}");
            assert_eq!(
                fleet.sessions[i].error_vs_observed.max_abs(),
                solo.error_vs_observed.max_abs(),
                "stream {i}"
            );
        }
    }

    #[test]
    fn lockstep_hook_sees_the_tick_and_can_retune_producers() {
        let config = SessionConfig::instant(100, 100.0);
        let mut streams: Vec<LockstepStream<'_, EveryKth, Hold>> = (0..2)
            .map(|_| LockstepStream {
                producer: EveryKth { k: 1 },
                consumer: Hold(0.0),
                sampler: counting_sampler(1.0),
            })
            .collect();
        let mut observed_ticks = 0u64;
        let fleet = run_lockstep(&config, &mut streams, |now, tick, streams| {
            observed_ticks += 1;
            assert_eq!(tick.observed.len(), 2);
            assert_eq!(tick.observed[0][0], (now + 1) as f64);
            // Halfway through, drop stream 0 to every-10th shipping.
            if now == 49 {
                streams[0].producer.k = 10;
            }
        });
        assert_eq!(observed_ticks, 100);
        // Stream 0: 50 ship-all ticks + 5 every-10th ticks (50, 60, ..., 90).
        assert_eq!(fleet.sessions[0].traffic.messages(), 55);
        assert_eq!(fleet.sessions[1].traffic.messages(), 100);
    }

    fn crash_streams() -> Vec<LockstepStream<'static, EveryKth, Hold>> {
        (0..2)
            .map(|_| LockstepStream {
                producer: EveryKth { k: 10 },
                consumer: Hold(0.0),
                sampler: counting_sampler(1.0),
            })
            .collect()
    }

    #[test]
    fn lockstep_crash_with_noop_rebuild_is_bit_identical_to_plain_run() {
        let config = SessionConfig::instant(100, 1000.0);
        let mut plain = crash_streams();
        let reference = run_lockstep(&config, &mut plain, |_, _, _| {});
        let mut crashed = crash_streams();
        let mut fired = Vec::new();
        let report = run_lockstep_with_crashes(
            &config,
            &mut crashed,
            &[13, 55, 99],
            |now, i, _consumer: &mut Hold| fired.push((now, i)),
            |_, _, _| {},
        );
        assert_eq!(
            fired,
            vec![(13, 0), (13, 1), (55, 0), (55, 1), (99, 0), (99, 1)]
        );
        for (r, p) in report.sessions.iter().zip(&reference.sessions) {
            assert_eq!(r.traffic, p.traffic);
            assert_eq!(
                r.error_vs_observed.max_abs().to_bits(),
                p.error_vs_observed.max_abs().to_bits()
            );
        }
    }

    #[test]
    fn lockstep_crash_that_loses_state_visibly_diverges() {
        // EveryKth{k:10} consumers coast on a held value between ships;
        // zeroing that value mid-coast is unrecovered state loss and must
        // show up in the error metric.
        let config = SessionConfig::instant(100, 1000.0);
        let mut plain = crash_streams();
        let reference = run_lockstep(&config, &mut plain, |_, _, _| {});
        let mut crashed = crash_streams();
        let report = run_lockstep_with_crashes(
            &config,
            &mut crashed,
            &[55],
            |_, _, consumer: &mut Hold| consumer.0 = 0.0,
            |_, _, _| {},
        );
        // Transport untouched: the producers shipped exactly the same bytes.
        assert_eq!(report.sessions[0].traffic, reference.sessions[0].traffic);
        // But the fleet coasted on zero from tick 56 until the tick-60 ship.
        assert!(
            report.sessions[0].error_vs_observed.max_abs()
                > reference.sessions[0].error_vs_observed.max_abs()
        );
    }

    /// Ships only when the observation moved more than δ since the last
    /// ship — the suppression discipline the load swing is built to defeat
    /// (high amplitude) or satisfy (low amplitude).
    struct Deadband {
        delta: f64,
        last: f64,
    }
    impl Producer for Deadband {
        fn dim(&self) -> usize {
            1
        }
        fn observe(&mut self, _: Tick, observed: &[f64]) -> Option<Bytes> {
            if (observed[0] - self.last).abs() > self.delta {
                self.last = observed[0];
                Some(Bytes::copy_from_slice(&observed[0].to_le_bytes()))
            } else {
                None
            }
        }
    }

    #[test]
    fn load_swing_schedule_is_piecewise_with_extending_tail() {
        let swing = LoadSwing::new(vec![
            LoadPhase {
                ticks: 10,
                amplitude: 4.0,
            },
            LoadPhase {
                ticks: 5,
                amplitude: 0.01,
            },
        ]);
        assert_eq!(swing.total_ticks(), 15);
        assert_eq!(swing.phases().len(), 2);
        assert_eq!(swing.amplitude_at(0), 4.0);
        assert_eq!(swing.amplitude_at(9), 4.0);
        assert_eq!(swing.amplitude_at(10), 0.01);
        assert_eq!(swing.amplitude_at(14), 0.01);
        // The final phase extends indefinitely.
        assert_eq!(swing.amplitude_at(10_000), 0.01);
    }

    #[test]
    fn load_swing_samplers_are_deterministic() {
        let swing = LoadSwing::new(vec![
            LoadPhase {
                ticks: 7,
                amplitude: 2.0,
            },
            LoadPhase {
                ticks: 7,
                amplitude: 0.1,
            },
        ]);
        let mut a = swing.sampler(3);
        let mut b = swing.sampler(3);
        let (mut oa, mut ta) = ([0.0], [0.0]);
        let (mut ob, mut tb) = ([0.0], [0.0]);
        for _ in 0..20 {
            a(&mut oa, &mut ta);
            b(&mut ob, &mut tb);
            assert_eq!(oa[0].to_bits(), ob[0].to_bits());
            assert_eq!(oa[0].to_bits(), ta[0].to_bits());
        }
    }

    #[test]
    fn load_swing_drives_a_big_message_rate_swing_through_suppression() {
        let swing = LoadSwing::new(vec![
            LoadPhase {
                ticks: 50,
                amplitude: 4.0,
            },
            LoadPhase {
                ticks: 50,
                amplitude: 0.01,
            },
        ]);
        let mut streams: Vec<IngestStream<'_>> = (0..4u32)
            .map(|id| IngestStream {
                stream_id: id,
                producer: Box::new(Deadband {
                    delta: 0.2,
                    last: 0.0,
                }),
                sampler: swing.sampler(id),
            })
            .collect();
        // Samplers self-clock, so running one fleet call per phase measures
        // per-phase traffic without losing schedule position.
        let mut sink = Recorder::default();
        let high = run_fleet_ingest(&mut streams, 50, 0, &mut sink)
            .total_traffic
            .messages();
        let low = run_fleet_ingest(&mut streams, 50, 0, &mut sink)
            .total_traffic
            .messages();
        assert!(
            high >= 4 * low.max(1),
            "high-amplitude phase must offer ≥4× the load: high={high} low={low}"
        );
    }

    #[test]
    fn fleet_snapshots_expose_totals_and_streams() {
        let jobs: Vec<_> = (0..3).map(|_| job(100)).collect();
        let report = run_fleet(jobs, 2);
        let fleet = report.snapshot();
        assert_eq!(fleet.counter("fleet.sessions"), Some(3));
        assert_eq!(fleet.counter("fleet.traffic.messages"), Some(300));
        assert_eq!(fleet.counter("fleet.violations"), Some(0));

        let streams = report.stream_snapshots();
        assert_eq!(streams.counter("stream.0.traffic.messages"), Some(100));
        assert_eq!(streams.counter("stream.2.ticks"), Some(100));

        // Merging granularities yields one artifact with both.
        let mut merged = fleet.clone();
        merged.merge(&streams);
        assert_eq!(merged.counter("fleet.traffic.messages"), Some(300));
        assert_eq!(merged.counter("stream.1.traffic.messages"), Some(100));

        // Determinism: an identical run snapshots byte-identically.
        let again = run_fleet((0..3).map(|_| job(100)).collect::<Vec<_>>(), 2);
        assert_eq!(again.snapshot().to_json(), fleet.to_json());
        assert_eq!(again.stream_snapshots().to_json(), streams.to_json());
    }

    #[test]
    fn ingest_fleet_snapshots_expose_totals_and_streams() {
        let mut streams: Vec<IngestStream<'_>> = (0..2u32)
            .map(|id| IngestStream {
                stream_id: id,
                producer: Box::new(ShipAll),
                sampler: Box::new(move |obs: &mut [f64], tru: &mut [f64]| {
                    obs[0] = id as f64;
                    tru[0] = id as f64;
                }),
            })
            .collect();
        let mut sink = Recorder::default();
        let report = run_fleet_ingest(&mut streams, 5, 8, &mut sink);
        let fleet = report.snapshot();
        assert_eq!(fleet.counter("fleet.streams"), Some(2));
        assert_eq!(fleet.counter("fleet.ticks"), Some(5));
        assert_eq!(fleet.counter("fleet.traffic.messages"), Some(10));
        let per_stream = report.stream_snapshots();
        assert_eq!(per_stream.counter("stream.0.traffic.messages"), Some(5));
        assert_eq!(per_stream.counter("stream.1.traffic.bytes"), Some(5 * 16));
    }
}
