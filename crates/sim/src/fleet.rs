//! Parallel execution of many independent sessions (experiment F7's
//! 100-stream fleet and every parameter sweep).

use crossbeam::channel;

use crate::{SessionReport, TrafficMetrics};

/// Aggregated result of a fleet run: per-session reports in submission
/// order, plus fleet-wide traffic totals.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-session reports, index-aligned with the submitted jobs.
    pub sessions: Vec<SessionReport>,
    /// Fleet-wide traffic (sum over sessions).
    pub total_traffic: TrafficMetrics,
}

impl FleetReport {
    /// Total messages across the fleet.
    pub fn total_messages(&self) -> u64 {
        self.total_traffic.messages()
    }

    /// Mean per-session message rate.
    pub fn mean_message_rate(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions.iter().map(SessionReport::message_rate).sum::<f64>()
            / self.sessions.len() as f64
    }

    /// Total precision violations (vs. observed signal) across the fleet.
    pub fn total_violations(&self) -> u64 {
        self.sessions.iter().map(|s| s.error_vs_observed.violations()).sum()
    }
}

/// Runs `jobs` across `threads` worker threads and collects their reports.
///
/// Each job is an independent closed-over session (stream + endpoints);
/// sessions themselves never synchronise — matching the real system, where
/// sources are independent devices. Work is distributed over a crossbeam
/// channel so long sessions don't convoy behind a static partition, and
/// workers send `(index, report)` pairs back over a second channel — no
/// shared lock anywhere, so a slow session never blocks another's result
/// hand-off.
///
/// # Panics
/// Panics if a worker thread panics (propagated by `std::thread::scope`).
pub fn run_fleet<F>(jobs: Vec<F>, threads: usize) -> FleetReport
where
    F: FnOnce() -> SessionReport + Send,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    let (tx, rx) = channel::unbounded::<(usize, F)>();
    for job in jobs.into_iter().enumerate() {
        tx.send(job).expect("channel open");
    }
    drop(tx);
    let (report_tx, report_rx) = channel::unbounded::<(usize, SessionReport)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let report_tx = report_tx.clone();
            scope.spawn(move || {
                while let Ok((idx, job)) = rx.recv() {
                    let report = job();
                    report_tx.send((idx, report)).expect("collector alive");
                }
            });
        }
    });
    drop(report_tx);

    // Workers finish in arbitrary order; restore submission order by index.
    let mut slots: Vec<Option<SessionReport>> = (0..n).map(|_| None).collect();
    while let Ok((idx, report)) = report_rx.recv() {
        slots[idx] = Some(report);
    }
    let sessions: Vec<SessionReport> =
        slots.into_iter().map(|r| r.expect("every job ran")).collect();
    let mut total_traffic = TrafficMetrics::default();
    for s in &sessions {
        total_traffic.merge(&s.traffic);
    }
    FleetReport { sessions, total_traffic }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Consumer, Producer, Session, SessionConfig, Tick};
    use bytes::Bytes;

    struct ShipAll;
    struct Hold(f64);

    impl Producer for ShipAll {
        fn dim(&self) -> usize {
            1
        }
        fn observe(&mut self, _: Tick, observed: &[f64]) -> Option<Bytes> {
            Some(Bytes::copy_from_slice(&observed[0].to_le_bytes()))
        }
    }
    impl Consumer for Hold {
        fn dim(&self) -> usize {
            1
        }
        fn receive(&mut self, _: Tick, payload: &Bytes) {
            let mut b = [0u8; 8];
            b.copy_from_slice(payload);
            self.0 = f64::from_le_bytes(b);
        }
        fn estimate(&mut self, _: Tick, out: &mut [f64]) {
            out[0] = self.0;
        }
    }

    fn job(ticks: u64) -> impl FnOnce() -> SessionReport + Send {
        move || {
            let config = SessionConfig::instant(ticks, 1.0);
            let mut p = ShipAll;
            let mut c = Hold(0.0);
            let mut v = 0.0;
            Session::run(
                &config,
                move |obs, tru| {
                    v += 1.0;
                    obs[0] = v;
                    tru[0] = v;
                },
                &mut p,
                &mut c,
                &mut (),
            )
        }
    }

    #[test]
    fn fleet_preserves_job_order() {
        let jobs: Vec<_> = (1..=8u64).map(|i| job(i * 10)).collect();
        let report = run_fleet(jobs, 4);
        assert_eq!(report.sessions.len(), 8);
        for (i, s) in report.sessions.iter().enumerate() {
            assert_eq!(s.ticks, (i as u64 + 1) * 10);
        }
    }

    #[test]
    fn fleet_totals_add_up() {
        let jobs: Vec<_> = (0..5).map(|_| job(100)).collect();
        let report = run_fleet(jobs, 2);
        assert_eq!(report.total_messages(), 500);
        assert!((report.mean_message_rate() - 1.0).abs() < 1e-12);
        assert_eq!(report.total_violations(), 0);
    }

    #[test]
    fn single_thread_and_many_threads_agree() {
        let a = run_fleet((0..6).map(|_| job(50)).collect::<Vec<_>>(), 1);
        let b = run_fleet((0..6).map(|_| job(50)).collect::<Vec<_>>(), 8);
        assert_eq!(a.total_messages(), b.total_messages());
    }

    #[test]
    fn empty_fleet() {
        let report = run_fleet(Vec::<fn() -> SessionReport>::new(), 4);
        assert_eq!(report.sessions.len(), 0);
        assert_eq!(report.mean_message_rate(), 0.0);
    }
}
