//! Accounting: traffic on the wire and error at the server.
//!
//! Every counter in this module is an [`kalstream_obs`] instrument (or a
//! struct of them) and implements [`Instrument`], so any report can be
//! exported into a [`kalstream_obs::Registry`] and serialized as a
//! deterministic snapshot. The migration is type-level only: accumulation
//! semantics, accessors, and the recorded experiment tables are unchanged.

use kalstream_obs::{Counter, Instrument, Scope};

/// Wire-traffic counters maintained by [`crate::Link`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficMetrics {
    messages: Counter,
    bytes: Counter,
}

impl TrafficMetrics {
    /// Records one message of `total_bytes` (payload + framing).
    pub fn record(&mut self, total_bytes: usize) {
        self.messages.inc();
        self.bytes += total_bytes as u64;
    }

    /// Messages sent.
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Bytes sent, including per-message framing overhead.
    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Folds another counter into this one (fleet aggregation).
    pub fn merge(&mut self, other: &TrafficMetrics) {
        self.messages.merge(other.messages);
        self.bytes.merge(other.bytes);
    }
}

impl Instrument for TrafficMetrics {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("messages", self.messages);
        scope.counter("bytes", self.bytes);
    }
}

/// Fault-injection counters maintained by [`crate::Link`]: what the link
/// actually did to the traffic it carried.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages dropped by injected loss.
    pub dropped: u64,
    /// Messages duplicated in flight.
    pub duplicated: u64,
    /// Messages deliberately delivered out of order.
    pub reordered: u64,
}

impl FaultCounters {
    /// Folds another counter into this one (fleet / multi-link aggregation).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
    }
}

impl Instrument for FaultCounters {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("dropped", self.dropped);
        scope.counter("duplicated", self.duplicated);
        scope.counter("reordered", self.reordered);
    }
}

/// Receiver-side delivery accounting for the sequenced (v3) protocol: what
/// the server detected and did about imperfect delivery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Sequenced syncs dropped as stale or duplicate (sequence number at or
    /// below the highest already applied).
    pub stale_drops: u64,
    /// Sequence numbers skipped on arrival (gap between consecutive applied
    /// syncs); counts messages that were lost *or* merely delayed past a
    /// newer one.
    pub seq_gaps: u64,
    /// Queued syncs shed by the server's bounded pending queue.
    pub shed: u64,
}

impl DeliveryStats {
    /// Folds another stats block into this one (fleet aggregation).
    pub fn merge(&mut self, other: &DeliveryStats) {
        self.stale_drops += other.stale_drops;
        self.seq_gaps += other.seq_gaps;
        self.shed += other.shed;
    }
}

impl Instrument for DeliveryStats {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("stale_drops", self.stale_drops);
        scope.counter("seq_gaps", self.seq_gaps);
        scope.counter("shed", self.shed);
    }
}

/// Packed-vs-naive wire-size accounting for the triangle-packed encoding.
///
/// Fed a `(packed, unpacked)` byte pair per message — the actual encoded
/// size next to what the same message would cost in the naive format (full
/// `n²` matrices, per-matrix headers) — so experiment T3 and `bench_ingest`
/// can report measured savings rather than a formula.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BytesAccounting {
    messages: Counter,
    packed_bytes: Counter,
    unpacked_bytes: Counter,
}

impl BytesAccounting {
    /// Records one message's packed and would-be-unpacked sizes.
    pub fn record(&mut self, packed: usize, unpacked: usize) {
        self.messages.inc();
        self.packed_bytes += packed as u64;
        self.unpacked_bytes += unpacked as u64;
    }

    /// Messages recorded.
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Total bytes in the packed (actual) encoding.
    pub fn packed_bytes(&self) -> u64 {
        self.packed_bytes.get()
    }

    /// Total bytes the naive encoding would have cost.
    pub fn unpacked_bytes(&self) -> u64 {
        self.unpacked_bytes.get()
    }

    /// Fraction of bytes saved by packing: `1 − packed/unpacked`.
    pub fn savings_fraction(&self) -> f64 {
        if self.unpacked_bytes.get() == 0 {
            0.0
        } else {
            1.0 - self.packed_bytes.get() as f64 / self.unpacked_bytes.get() as f64
        }
    }

    /// Folds another accounting into this one.
    pub fn merge(&mut self, other: &BytesAccounting) {
        self.messages.merge(other.messages);
        self.packed_bytes.merge(other.packed_bytes);
        self.unpacked_bytes.merge(other.unpacked_bytes);
    }
}

impl Instrument for BytesAccounting {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("messages", self.messages);
        scope.counter("packed_bytes", self.packed_bytes);
        scope.counter("unpacked_bytes", self.unpacked_bytes);
        scope.gauge("savings_fraction", self.savings_fraction());
    }
}

/// What one ingest shard drained over a timed run.
#[derive(Debug, Clone)]
pub struct ShardThroughput {
    /// Shard index.
    pub shard: usize,
    /// Endpoints owned by the shard.
    pub streams: usize,
    /// Messages applied.
    pub messages: u64,
    /// Wire bytes drained (frame headers + bodies).
    pub bytes: u64,
}

/// Aggregate report of one ingest-mode run — per-shard throughput plus the
/// packing savings, the record `bench_ingest` serialises.
#[derive(Debug, Clone)]
pub struct IngestRunReport {
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardThroughput>,
    /// Ticks ingested.
    pub ticks: u64,
    /// Wall-clock seconds for the timed span.
    pub elapsed_secs: f64,
    /// Packed-vs-naive byte accounting over the ingested messages.
    pub bytes: BytesAccounting,
}

impl IngestRunReport {
    /// Messages applied across all shards.
    pub fn total_messages(&self) -> u64 {
        self.shards.iter().map(|s| s.messages).sum()
    }

    /// Wire bytes drained across all shards.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// Headline throughput: messages applied per wall-clock second.
    pub fn msgs_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.total_messages() as f64 / self.elapsed_secs
        }
    }
}

impl Instrument for ShardThroughput {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("streams", self.streams as u64);
        scope.counter("messages", self.messages);
        scope.counter("bytes", self.bytes);
    }
}

impl Instrument for IngestRunReport {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("ticks", self.ticks);
        scope.counter("messages", self.total_messages());
        scope.counter("bytes", self.total_bytes());
        scope.gauge("elapsed_secs", self.elapsed_secs);
        scope.gauge("msgs_per_sec", self.msgs_per_sec());
        scope.observe("wire", &self.bytes);
        for shard in &self.shards {
            scope.observe(&format!("shard.{}", shard.shard), shard);
        }
    }
}

/// Server-side error accounting against ground truth.
///
/// `violations` counts ticks where the error exceeded the precision bound
/// `delta` (beyond a small numerical tolerance). Under zero link latency the
/// suppression protocol must keep this at exactly zero *against the observed
/// signal*; experiments score against ground truth as well, where sensor
/// noise adds an irreducible floor.
#[derive(Debug, Clone)]
pub struct ErrorMetrics {
    delta: f64,
    ticks: u64,
    sum_sq: f64,
    sum_abs: f64,
    max_abs: f64,
    violations: u64,
}

impl ErrorMetrics {
    /// Creates an accumulator scoring against precision bound `delta`.
    pub fn new(delta: f64) -> Self {
        ErrorMetrics {
            delta,
            ticks: 0,
            sum_sq: 0.0,
            sum_abs: 0.0,
            max_abs: 0.0,
            violations: 0,
        }
    }

    /// Records the error of one tick. For multi-dimensional streams, pass
    /// the norm the precision contract is defined over (the protocol layer
    /// uses the max-norm across dimensions).
    pub fn record(&mut self, abs_err: f64) {
        self.ticks += 1;
        self.sum_sq += abs_err * abs_err;
        self.sum_abs += abs_err;
        if abs_err > self.max_abs {
            self.max_abs = abs_err;
        }
        // 1e-9 relative slack: the source's suppression test and this check
        // must never disagree due to rounding alone.
        if abs_err > self.delta * (1.0 + 1e-9) + 1e-12 {
            self.violations += 1;
        }
    }

    /// Precision bound being scored against.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Ticks recorded.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Root-mean-square error.
    pub fn rmse(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            (self.sum_sq / self.ticks as f64).sqrt()
        }
    }

    /// Mean absolute error.
    pub fn mean_abs(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.sum_abs / self.ticks as f64
        }
    }

    /// Maximum absolute error observed.
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Ticks on which the bound was violated.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

impl Instrument for ErrorMetrics {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("ticks", self.ticks);
        scope.counter("violations", self.violations);
        scope.gauge("delta", self.delta);
        scope.gauge("rmse", self.rmse());
        scope.gauge("mean_abs", self.mean_abs());
        scope.gauge("max_abs", self.max_abs);
    }
}

/// Complete result of one simulated session, as reported by
/// [`crate::Session::run`].
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Ticks simulated.
    pub ticks: u64,
    /// Wire traffic on the forward (source→server) link.
    pub traffic: TrafficMetrics,
    /// Error of the server estimate vs. the *observed* signal (what the
    /// precision contract is defined over).
    pub error_vs_observed: ErrorMetrics,
    /// Error of the server estimate vs. ground truth (what a user of the
    /// system ultimately experiences; includes the sensor-noise floor).
    pub error_vs_truth: ErrorMetrics,
    /// Faults the forward link injected (loss/duplication/reordering).
    pub faults: FaultCounters,
    /// Receiver-side delivery accounting (stale drops, gaps, queue shed).
    pub delivery: DeliveryStats,
    /// Traffic on the reverse (server→source) ack link; zero when the
    /// consumer generates no feedback.
    pub ack_traffic: TrafficMetrics,
}

impl SessionReport {
    /// Messages per tick — the headline resource metric.
    pub fn message_rate(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.traffic.messages() as f64 / self.ticks as f64
        }
    }

    /// Fraction of samples suppressed (1 − message rate), clamped at 0 for
    /// protocols that send more than one message per tick.
    pub fn suppression_ratio(&self) -> f64 {
        (1.0 - self.message_rate()).max(0.0)
    }
}

impl Instrument for SessionReport {
    fn export(&self, scope: &mut Scope<'_>) {
        scope.counter("ticks", self.ticks);
        scope.observe("traffic", &self.traffic);
        scope.observe("error_observed", &self.error_vs_observed);
        scope.observe("error_truth", &self.error_vs_truth);
        scope.observe("faults", &self.faults);
        scope.observe("delivery", &self.delivery);
        scope.observe("ack_traffic", &self.ack_traffic);
        scope.gauge("message_rate", self.message_rate());
        scope.gauge("suppression_ratio", self.suppression_ratio());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_merge() {
        let mut a = TrafficMetrics::default();
        a.record(10);
        let mut b = TrafficMetrics::default();
        b.record(5);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.messages(), 3);
        assert_eq!(a.bytes(), 20);
    }

    #[test]
    fn fault_and_delivery_merge() {
        let mut f = FaultCounters {
            dropped: 1,
            duplicated: 2,
            reordered: 3,
        };
        f.merge(&FaultCounters {
            dropped: 10,
            duplicated: 20,
            reordered: 30,
        });
        assert_eq!(
            f,
            FaultCounters {
                dropped: 11,
                duplicated: 22,
                reordered: 33
            }
        );

        let mut d = DeliveryStats {
            stale_drops: 1,
            seq_gaps: 2,
            shed: 3,
        };
        d.merge(&DeliveryStats {
            stale_drops: 4,
            seq_gaps: 5,
            shed: 6,
        });
        assert_eq!(
            d,
            DeliveryStats {
                stale_drops: 5,
                seq_gaps: 7,
                shed: 9
            }
        );
    }

    #[test]
    fn error_metrics_known_values() {
        let mut e = ErrorMetrics::new(1.0);
        for err in [0.5, 1.5, 0.0, 2.0] {
            e.record(err);
        }
        assert_eq!(e.ticks(), 4);
        assert_eq!(e.violations(), 2);
        assert_eq!(e.max_abs(), 2.0);
        assert!((e.mean_abs() - 1.0).abs() < 1e-12);
        assert!((e.rmse() - (6.5_f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn exact_bound_is_not_a_violation() {
        let mut e = ErrorMetrics::new(1.0);
        e.record(1.0);
        assert_eq!(e.violations(), 0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let e = ErrorMetrics::new(0.5);
        assert_eq!(e.rmse(), 0.0);
        assert_eq!(e.mean_abs(), 0.0);
        assert_eq!(e.max_abs(), 0.0);
    }

    #[test]
    fn session_report_rates() {
        let mut traffic = TrafficMetrics::default();
        traffic.record(1);
        traffic.record(1);
        let report = SessionReport {
            ticks: 10,
            traffic,
            error_vs_observed: ErrorMetrics::new(1.0),
            error_vs_truth: ErrorMetrics::new(1.0),
            faults: FaultCounters::default(),
            delivery: DeliveryStats::default(),
            ack_traffic: TrafficMetrics::default(),
        };
        assert!((report.message_rate() - 0.2).abs() < 1e-12);
        assert!((report.suppression_ratio() - 0.8).abs() < 1e-12);
    }
}
