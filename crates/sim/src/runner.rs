//! The single-session simulation loop.

use crate::{
    Consumer, ErrorMetrics, LinkFaults, Producer, SessionReport, SimTransport, Tick, Transport,
};

/// Configuration for one simulated source→server session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of ticks to simulate.
    pub ticks: u64,
    /// Precision bound the error accounting scores against.
    pub delta: f64,
    /// Link latency in ticks (0 = corrections visible the tick they are sent).
    pub latency: Tick,
    /// Per-message framing overhead charged by the link, in bytes.
    pub overhead_bytes: usize,
    /// Independent per-message drop probability (0.0 = reliable link).
    pub loss_prob: f64,
    /// Seed of the link's fault RNG (ignored when no fault is configured).
    pub loss_seed: u64,
    /// Independent per-message duplication probability (0.0 = never).
    pub dup_prob: f64,
    /// Independent per-message reordering probability (0.0 = never).
    pub reorder_prob: f64,
    /// Maximum extra delivery delay in ticks, drawn uniformly per message
    /// (0 = no jitter).
    pub jitter: Tick,
}

impl SessionConfig {
    /// A zero-latency session with IP+UDP-sized framing — the setting under
    /// which the suppression protocol's precision guarantee is exact.
    pub fn instant(ticks: u64, delta: f64) -> Self {
        SessionConfig {
            ticks,
            delta,
            latency: 0,
            overhead_bytes: 28,
            loss_prob: 0.0,
            loss_seed: 0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            jitter: 0,
        }
    }

    /// Same as [`SessionConfig::instant`] with a lossy link.
    pub fn instant_lossy(ticks: u64, delta: f64, loss_prob: f64, loss_seed: u64) -> Self {
        SessionConfig {
            loss_prob,
            loss_seed,
            ..SessionConfig::instant(ticks, delta)
        }
    }

    /// Adds duplication, reordering, and delay jitter to the link faults.
    #[must_use]
    pub fn with_link_faults(mut self, dup_prob: f64, reorder_prob: f64, jitter: Tick) -> Self {
        self.dup_prob = dup_prob;
        self.reorder_prob = reorder_prob;
        self.jitter = jitter;
        self
    }

    /// The fault profile both session links are built from.
    pub fn faults(&self) -> LinkFaults {
        LinkFaults {
            loss: self.loss_prob,
            dup: self.dup_prob,
            reorder: self.reorder_prob,
            jitter: self.jitter,
            seed: self.loss_seed,
        }
    }
}

/// Server-side ingest mode: the multiplexed alternative to a per-session
/// [`crate::Consumer`].
///
/// In ingest mode the fleet loop does not hand each message to its own
/// consumer; it pushes every delivered message — from *all* streams — into
/// one sink, then closes the tick. The sink owns framing, shard routing,
/// and endpoint advancement (in `kalstream-core`, the frame batcher wrapped
/// around the sharded ingest pipeline). The simulator stays wire-format
/// agnostic, exactly as it is Kalman-agnostic via [`crate::Producer`] /
/// [`crate::Consumer`].
///
/// Contract per tick: any number of [`IngestSink::push`] calls (delivery
/// order within a stream is send order), then exactly one
/// [`IngestSink::end_tick`], which must advance **every** stream's
/// server-side state by one tick — matching [`crate::Consumer::estimate`]'s
/// predict-then-apply semantics so ingest-mode servers stay bit-identical
/// to session-mode servers.
pub trait IngestSink {
    /// Delivers one message for `stream_id` into the current tick's batch.
    fn push(&mut self, stream_id: u32, payload: &bytes::Bytes);

    /// Closes the tick: drain the batch and advance every endpoint.
    fn end_tick(&mut self);
}

/// Per-tick hook for experiments that need time series rather than final
/// aggregates (cumulative-message plots, staleness profiles).
pub trait TickObserver {
    /// Called once per tick after scoring, with the server estimate and the
    /// cumulative message count.
    fn on_tick(
        &mut self,
        now: Tick,
        observed: &[f64],
        truth: &[f64],
        estimate: &[f64],
        messages: u64,
    );
}

/// No-op observer used when a session needs no per-tick output.
impl TickObserver for () {
    fn on_tick(&mut self, _: Tick, _: &[f64], _: &[f64], _: &[f64], _: u64) {}
}

/// Collects the max-norm error time series — the workhorse observer.
#[derive(Debug, Default)]
pub struct ErrorSeries {
    /// `|estimate − observed|` (max-norm) per tick.
    pub errors: Vec<f64>,
    /// Cumulative message count per tick.
    pub messages: Vec<u64>,
}

impl TickObserver for ErrorSeries {
    fn on_tick(
        &mut self,
        _now: Tick,
        observed: &[f64],
        _t: &[f64],
        estimate: &[f64],
        messages: u64,
    ) {
        let err = max_norm_diff(estimate, observed);
        self.errors.push(err);
        self.messages.push(messages);
    }
}

/// One simulated session: a sampler (the stream), a producer (source-side
/// policy), a consumer (server-side estimator), and a link between them.
pub struct Session;

impl Session {
    /// Runs the session and reports traffic + error metrics.
    ///
    /// Per-tick order of operations (load-bearing for the precision
    /// guarantee):
    ///
    /// 1. `sampler` produces `(observed, truth)` for this tick;
    /// 2. the producer sees `observed` and may transmit;
    /// 3. the forward link delivers every message due this tick to the
    ///    consumer (with zero latency this includes the message from step 2);
    /// 4. the consumer produces its estimate for this tick;
    /// 5. the consumer's feedback (acks) is sent on the reverse link and
    ///    everything due is delivered to the producer — with zero latency an
    ///    ack completes its round trip the same tick;
    /// 6. the estimate is scored against `observed` and `truth` with the
    ///    max-norm, and the observer hook fires.
    ///
    /// Both links carry the same fault profile; the reverse link derives its
    /// RNG seed from the forward seed so the two draw independent schedules.
    /// Endpoints that produce no feedback pay nothing for the reverse link.
    ///
    /// # Panics
    /// Panics when producer/consumer dimensions disagree with each other.
    pub fn run<P, C, F, O>(
        config: &SessionConfig,
        sampler: F,
        producer: &mut P,
        consumer: &mut C,
        observer: &mut O,
    ) -> SessionReport
    where
        P: Producer + ?Sized,
        C: Consumer + ?Sized,
        F: FnMut(&mut [f64], &mut [f64]),
        O: TickObserver + ?Sized,
    {
        let mut transport =
            SimTransport::with_faults(config.latency, config.overhead_bytes, config.faults());
        Session::run_with_transport(
            config,
            &mut transport,
            sampler,
            producer,
            consumer,
            observer,
        )
    }

    /// [`Session::run`] over an explicit [`Transport`] — the seam that lets
    /// the same endpoints, sampler, and scoring run over the deterministic
    /// sim pair or a real socket transport. [`Session::run`] is exactly this
    /// with a [`SimTransport`] built from the config's latency/fault fields
    /// (which only the sim consults; a socket transport has physical latency
    /// and real loss instead).
    ///
    /// Untagged single-session traffic travels as stream 0, matching the
    /// untagged [`crate::Link::send`] the loop used before the trait
    /// extraction — the refactor is bit-identical.
    ///
    /// # Panics
    /// Panics when producer/consumer dimensions disagree with each other.
    pub fn run_with_transport<T, P, C, F, O>(
        config: &SessionConfig,
        transport: &mut T,
        mut sampler: F,
        producer: &mut P,
        consumer: &mut C,
        observer: &mut O,
    ) -> SessionReport
    where
        T: Transport + ?Sized,
        P: Producer + ?Sized,
        C: Consumer + ?Sized,
        F: FnMut(&mut [f64], &mut [f64]),
        O: TickObserver + ?Sized,
    {
        let dim = producer.dim();
        assert_eq!(dim, consumer.dim(), "producer/consumer dimension mismatch");
        let mut observed = vec![0.0; dim];
        let mut truth = vec![0.0; dim];
        let mut estimate = vec![0.0; dim];
        let mut err_obs = ErrorMetrics::new(config.delta);
        let mut err_truth = ErrorMetrics::new(config.delta);

        for now in 0..config.ticks {
            sampler(&mut observed, &mut truth);
            if let Some(payload) = producer.observe(now, &observed) {
                transport.send(now, 0, payload);
            }
            // Flush before receiving: a batching transport puts this tick's
            // sends on the wire here (no-op for the eager sim links).
            transport.end_tick(now);
            transport.recv(now, &mut |_, payload| consumer.receive(now, &payload));
            consumer.estimate(now, &mut estimate);
            while let Some(fb) = consumer.poll_feedback(now) {
                transport.send_feedback(now, 0, fb);
            }
            transport.recv_feedback(now, &mut |_, payload| producer.feedback(now, &payload));
            err_obs.record(max_norm_diff(&estimate, &observed));
            err_truth.record(max_norm_diff(&estimate, &truth));
            observer.on_tick(
                now,
                &observed,
                &truth,
                &estimate,
                transport.stats().forward.messages(),
            );
        }

        let stats = transport.stats();
        SessionReport {
            ticks: config.ticks,
            traffic: stats.forward,
            error_vs_observed: err_obs,
            error_vs_truth: err_truth,
            faults: stats.faults,
            delivery: consumer.delivery_stats(),
            ack_traffic: stats.feedback,
        }
    }
}

/// Max-norm (ℓ∞) difference between two equal-length slices — the norm the
/// precision contract uses for multi-dimensional streams.
pub(crate) fn max_norm_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    /// Producer that ships every k-th sample; consumer holds the last value.
    struct EveryKth {
        k: u64,
    }
    struct Hold {
        last: f64,
    }

    impl Producer for EveryKth {
        fn dim(&self) -> usize {
            1
        }
        fn observe(&mut self, now: Tick, observed: &[f64]) -> Option<Bytes> {
            (now.is_multiple_of(self.k)).then(|| Bytes::copy_from_slice(&observed[0].to_le_bytes()))
        }
    }

    impl Consumer for Hold {
        fn dim(&self) -> usize {
            1
        }
        fn receive(&mut self, _now: Tick, payload: &Bytes) {
            let mut b = [0u8; 8];
            b.copy_from_slice(payload);
            self.last = f64::from_le_bytes(b);
        }
        fn estimate(&mut self, _now: Tick, out: &mut [f64]) {
            out[0] = self.last;
        }
    }

    fn ramp_sampler() -> impl FnMut(&mut [f64], &mut [f64]) {
        let mut t = 0.0;
        move |obs, tru| {
            obs[0] = t;
            tru[0] = t;
            t += 1.0;
        }
    }

    #[test]
    fn message_counting_matches_policy() {
        let config = SessionConfig::instant(100, 10.0);
        let mut p = EveryKth { k: 4 };
        let mut c = Hold { last: 0.0 };
        let report = Session::run(&config, ramp_sampler(), &mut p, &mut c, &mut ());
        assert_eq!(report.traffic.messages(), 25);
        assert!((report.message_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_latency_error_bounded_by_gap() {
        // Ship every 4th sample of a unit ramp: worst error is 3.
        let config = SessionConfig::instant(100, 3.0);
        let mut p = EveryKth { k: 4 };
        let mut c = Hold { last: 0.0 };
        let report = Session::run(&config, ramp_sampler(), &mut p, &mut c, &mut ());
        assert_eq!(report.error_vs_observed.max_abs(), 3.0);
        assert_eq!(report.error_vs_observed.violations(), 0);
    }

    #[test]
    fn latency_creates_violations() {
        // Same policy over a ramp, but 2-tick latency: right after each send
        // the server still shows stale data, errors reach 3 + ... > bound.
        let config = SessionConfig {
            latency: 2,
            overhead_bytes: 0,
            ..SessionConfig::instant(100, 3.0)
        };
        let mut p = EveryKth { k: 4 };
        let mut c = Hold { last: 0.0 };
        let report = Session::run(&config, ramp_sampler(), &mut p, &mut c, &mut ());
        assert!(report.error_vs_observed.violations() > 0);
        assert!(report.error_vs_observed.max_abs() > 3.0);
    }

    #[test]
    fn observer_sees_every_tick() {
        let config = SessionConfig::instant(50, 1.0);
        let mut p = EveryKth { k: 1 };
        let mut c = Hold { last: 0.0 };
        let mut series = ErrorSeries::default();
        let report = Session::run(&config, ramp_sampler(), &mut p, &mut c, &mut series);
        assert_eq!(series.errors.len(), 50);
        assert_eq!(*series.messages.last().unwrap(), report.traffic.messages());
        // Ship-all at zero latency: error always 0.
        assert!(series.errors.iter().all(|&e| e == 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        struct TwoDim;
        impl Consumer for TwoDim {
            fn dim(&self) -> usize {
                2
            }
            fn receive(&mut self, _: Tick, _: &Bytes) {}
            fn estimate(&mut self, _: Tick, _: &mut [f64]) {}
        }
        let config = SessionConfig::instant(1, 1.0);
        let mut p = EveryKth { k: 1 };
        let mut c = TwoDim;
        let _ = Session::run(&config, ramp_sampler(), &mut p, &mut c, &mut ());
    }
}
